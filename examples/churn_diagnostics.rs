//! Incremental provenance maintenance under churn, plus query-result caching.
//!
//! Scenario: a 100-node network experiences link churn (the workload of
//! §7.2).  The operator keeps issuing provenance queries for routes while the
//! network changes underneath.  Reference-based provenance keeps maintenance
//! traffic close to the no-provenance baseline; the deployment invalidates
//! the query-result cache (§6.1) transitively and automatically whenever a
//! churned link contributed to a cached result; and — because maintenance,
//! churn and queries share one simulated clock — the monitoring queries
//! travel the network *while* the churn cascades are still being processed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_diagnostics
//! ```

use exspan::core::Repr;
use exspan::netsim::{ChurnModel, Topology};

fn main() {
    let topology = Topology::transit_stub(1, 21);
    let churn = ChurnModel {
        interval: 0.5,
        changes_per_batch: 4,
        seed: 99,
    };
    let schedule = churn.schedule(&topology, 2.0);
    println!(
        "{} nodes, {} links, {} churn events over 2.0 s",
        topology.num_nodes(),
        topology.num_links(),
        schedule.len()
    );

    let mut deployment = exspan::setup::mincost_reference(topology, 1);
    println!(
        "initial fixpoint: t={:.2}s, {:.2} MB average per-node traffic",
        deployment.now(),
        deployment.avg_comm_mb()
    );

    // Pick a route at node 0 to keep monitoring with cached
    // derivation-count queries.
    let monitored = deployment
        .tuples_shared(0, "bestPathCost")
        .first()
        .expect("node 0 has routes")
        .clone();
    println!("monitoring provenance of {monitored}");

    let first = deployment
        .query(&monitored)
        .issuer(0)
        .repr(Repr::DerivationCount)
        .cached(true)
        .execute();
    println!(
        "  initial query: {:?} derivations, latency {:.1} ms",
        first
            .annotation
            .as_ref()
            .and_then(exspan::core::Annotation::as_count),
        first.latency().unwrap_or_default() * 1e3
    );

    // Apply churn in 0.5 s slices.  Each batch's cache invalidation happens
    // automatically inside apply_churn_event; the re-query is *scheduled*
    // shortly after the batch and progresses on the same clock as the
    // maintenance cascades the batch triggers.
    let mut applied = 0usize;
    for batch_end in [0.5f64, 1.0, 1.5, 2.0] {
        for event in schedule
            .iter()
            .filter(|e| e.time <= batch_end && e.time > batch_end - 0.5)
        {
            deployment.apply_churn_event(event);
            applied += 1;
        }

        let dest = monitored.values[0].clone();
        let current = deployment
            .tuples_shared(0, "bestPathCost")
            .into_iter()
            .find(|t| t.values[0] == dest);
        let handle = current.as_ref().map(|t| {
            let issue_at = deployment.now() + 0.2;
            deployment
                .query(t)
                .issuer(0)
                .repr(Repr::DerivationCount)
                .cached(true)
                .at(issue_at)
                .submit()
        });

        deployment.run_until(deployment.now() + 0.45);

        match (current, handle) {
            (Some(t), Some(h)) => {
                let outcome = deployment.outcome(h).expect("submitted");
                let stats = deployment.session(h).stats().clone();
                println!(
                    "  t={batch_end:.1}s ({applied} churn events applied): {t} has {:?} derivations \
                     [cache: {} hits / {} misses / {} invalidations]",
                    outcome.annotation.as_ref().and_then(exspan::core::Annotation::as_count),
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.invalidations,
                );
            }
            _ => println!("  t={batch_end:.1}s: route to {dest:?} currently withdrawn"),
        }
    }

    let bw = deployment.avg_bandwidth_mbps();
    let peak = bw.iter().fold(0.0f64, |m, &(_, v)| m.max(v));
    println!(
        "\nmaintenance traffic stayed at a peak of {peak:.3} MBps per node under churn \
         (reference-based provenance adds only 24-byte pointers per derivation)"
    );
    let stats = deployment.query_traffic_stats();
    println!(
        "query traffic total: {} KB over {} messages",
        stats.bytes / 1024,
        stats.messages
    );
}
