//! Incremental provenance maintenance under churn, plus query-result caching.
//!
//! Scenario: a 100-node network experiences link churn (the workload of
//! §7.2).  The operator keeps issuing provenance queries for routes while the
//! network changes underneath; reference-based provenance keeps maintenance
//! traffic close to the no-provenance baseline, and the query-result cache
//! (§6.1) is invalidated transitively whenever a link that contributed to a
//! cached result changes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example churn_diagnostics
//! ```

use exspan::core::{
    DerivationCountRepr, ProvenanceMode, ProvenanceSystem, QueryEngine, SystemConfig,
    TraversalOrder,
};
use exspan::ndlog::programs;
use exspan::netsim::{ChurnModel, Topology};

fn main() {
    let topology = Topology::transit_stub(1, 21);
    let churn = ChurnModel {
        interval: 0.5,
        changes_per_batch: 4,
        seed: 99,
    };
    let schedule = churn.schedule(&topology, 2.0);
    println!(
        "{} nodes, {} links, {} churn events over 2.0 s",
        topology.num_nodes(),
        topology.num_links(),
        schedule.len()
    );

    let mut system = ProvenanceSystem::new(
        &programs::mincost(),
        topology,
        SystemConfig {
            mode: ProvenanceMode::Reference,
            ..Default::default()
        },
    );
    system.seed_links();
    let stats = system.run_to_fixpoint();
    println!(
        "initial fixpoint: t={:.2}s, {:.2} MB average per-node traffic",
        stats.fixpoint_time,
        system.avg_comm_mb()
    );

    // A query engine with caching enabled, counting derivations of routes.
    let mut queries = QueryEngine::new(Box::new(DerivationCountRepr), TraversalOrder::Bfs);
    queries.set_caching(true);

    // Pick a route at node 0 to keep monitoring.
    let monitored = system
        .engine()
        .tuples(0, "bestPathCost")
        .first()
        .expect("node 0 has routes")
        .clone();
    println!("monitoring provenance of {monitored}");

    let idx = queries.query_now(system.engine_mut(), 0, &monitored);
    queries.run(system.engine_mut());
    println!(
        "  initial query: {:?} derivations, latency {:.1} ms",
        queries.outcomes()[idx]
            .annotation
            .as_ref()
            .and_then(|a| a.as_count()),
        queries.outcomes()[idx].latency().unwrap_or_default() * 1e3
    );

    // Apply churn in 0.5 s slices, re-querying after each batch.
    let mut applied = 0usize;
    for batch_end in [0.5f64, 1.0, 1.5, 2.0] {
        for event in schedule
            .iter()
            .filter(|e| e.time <= batch_end && e.time > batch_end - 0.5)
        {
            // Invalidate cached results that depended on the changed link.
            for vid in ProvenanceSystem::churn_event_vids(event) {
                queries.invalidate(vid);
            }
            system.apply_churn_event(event);
            applied += 1;
        }
        system.run_until(batch_end + 0.45);

        let dest = monitored.values[0].clone();
        let current = system
            .engine()
            .tuples(0, "bestPathCost")
            .into_iter()
            .find(|t| t.values[0] == dest);
        match current {
            Some(t) => {
                let i = queries.query_now(system.engine_mut(), 0, &t);
                queries.run(system.engine_mut());
                println!(
                    "  t={batch_end:.1}s ({applied} churn events applied): {t} has {:?} derivations \
                     [cache: {} hits / {} misses / {} invalidations]",
                    queries.outcomes()[i].annotation.as_ref().and_then(|a| a.as_count()),
                    queries.stats().cache_hits,
                    queries.stats().cache_misses,
                    queries.stats().invalidations,
                );
            }
            None => println!("  t={batch_end:.1}s: route to {dest:?} currently withdrawn"),
        }
    }

    let bw = system.avg_bandwidth_mbps();
    let peak = bw.iter().fold(0.0f64, |m, &(_, v)| m.max(v));
    println!(
        "\nmaintenance traffic stayed at a peak of {:.3} MBps per node under churn \
         (reference-based provenance adds only 24-byte pointers per derivation)",
        peak
    );
    println!(
        "query traffic total: {} KB over {} messages",
        queries.stats().bytes / 1024,
        queries.stats().messages
    );
}
