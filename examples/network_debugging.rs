//! Network debugging with tuple-level provenance.
//!
//! Scenario: an operator of a 100-node transit-stub network notices that a
//! route has an unexpectedly high cost and wants to know *why* — which links
//! and which nodes produced it, and how many alternative ways it can be
//! derived.  This mirrors the paper's motivating use case of debugging
//! distributed protocols with fine-grained provenance (§3, "Representation").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_debugging
//! ```

use exspan::core::storage::{all_prov_entries, all_rule_exec_entries};
use exspan::core::Repr;
use exspan::netsim::Topology;
use exspan::types::Value;

fn main() {
    // A single transit-stub domain: 100 nodes, the same generator parameters
    // as the paper's simulations.
    let topology = Topology::transit_stub(1, 7);
    println!(
        "transit-stub topology: {} nodes, {} links",
        topology.num_nodes(),
        topology.num_links()
    );

    let mut deployment = exspan::setup::mincost_reference(topology, 1);
    println!(
        "MINCOST fixpoint at t={:.2}s; provenance graph has {} prov entries and {} ruleExec entries",
        deployment.now(),
        all_prov_entries(deployment.engine()).len(),
        all_rule_exec_entries(deployment.engine()).len()
    );

    // Pick the route with the largest hop count at node 0 — the one an
    // operator would be most suspicious of.
    let routes = deployment.tuples_shared(0, "bestPathCost");
    let suspicious = routes
        .iter()
        .max_by_key(|t| t.values[1].as_int().unwrap_or(0))
        .expect("node 0 has routes")
        .clone();
    println!("\nsuspicious route at node 0: {suspicious}");

    // Which nodes were involved in deriving it?
    let outcome = deployment.query(&suspicious).repr(Repr::NodeSet).execute();
    let latency_ms = outcome.latency().unwrap_or_default() * 1e3;
    let nodes = outcome.annotation.expect("query completes");
    println!(
        "nodes involved in its derivation ({latency_ms} ms query latency): {:?}",
        nodes.as_nodes().unwrap()
    );

    // Full explanation as a provenance polynomial.
    let outcome = deployment
        .query(&suspicious)
        .repr(Repr::Polynomial)
        .execute();
    let poly = outcome.annotation.expect("query completes");
    let expr = poly.as_expr().unwrap();
    println!(
        "\nfull derivation ({} alternatives, {} base links involved):",
        expr.num_derivations(),
        expr.base_tuples().len()
    );
    let printed = expr.to_string();
    if printed.len() > 400 {
        println!("  {}…", &printed[..400]);
    } else {
        println!("  {printed}");
    }

    // Simulate a link failure on the suspicious path and show that the
    // provenance (and the route) updates incrementally.
    let dest = suspicious.values[0].as_node().unwrap();
    let neighbor = deployment.topology().neighbors(0)[0];
    println!("\nfailing link 0 <-> {neighbor} and re-running to fixpoint…");
    deployment.remove_link(0, neighbor);
    deployment.run_to_fixpoint();
    let new_routes = deployment.tuples_shared(0, "bestPathCost");
    match new_routes.iter().find(|t| t.values[0] == Value::Node(dest)) {
        Some(t) => println!("new route after failure: {t}"),
        None => println!("destination n{dest} is no longer reachable from node 0"),
    }
}
