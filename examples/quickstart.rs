//! Quickstart: run MINCOST on the paper's 4-node example network (Figure 3)
//! with reference-based provenance, then query the provenance of
//! `bestPathCost(@a, c, 5)` in several representations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exspan::core::{Repr, Traversal};
use exspan::netsim::Topology;
use exspan::types::{Tuple, Value};

fn main() {
    // Node ids follow Figure 3: a=0, b=1, c=2, d=3.
    let topology = Topology::paper_example();
    println!(
        "topology: {} nodes, {} links (Figure 3)",
        topology.num_nodes(),
        topology.num_links()
    );

    let mut deployment = exspan::setup::mincost_reference(topology, 1);
    println!(
        "MINCOST reached fixpoint at t={:.3}s; {} bytes exchanged",
        deployment.now(),
        deployment.total_bytes()
    );

    // Every node now knows its best path cost to every destination.
    for t in deployment.tuples_shared(0, "bestPathCost") {
        println!("  node a derived {t}");
    }

    // The tuple the paper traces throughout: bestPathCost(@a, c, 5).
    let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);

    // 1. Full provenance polynomial (queried from node d).
    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::Polynomial)
        .execute();
    let latency_ms = outcome.latency().unwrap_or_default() * 1e3;
    let polynomial = outcome.annotation.expect("query completes");
    println!(
        "\nprovenance polynomial of {target} (latency {latency_ms:.1} ms):\n  {}",
        polynomial.as_expr().unwrap()
    );
    println!(
        "  -> {} alternative derivations",
        polynomial.as_expr().unwrap().num_derivations()
    );

    // 2. Node-level provenance: which nodes participated?
    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::NodeSet)
        .execute();
    let nodes = outcome.annotation.unwrap();
    println!("node-level provenance: {:?}", nodes.as_nodes().unwrap());

    // 3. Number of derivations via a DFS-with-threshold traversal that stops
    //    as soon as more than one derivation is found.
    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::DerivationCount)
        .traversal(Traversal::DfsThreshold(1))
        .execute();
    println!(
        "derivation-count query (DFS, threshold 1): {:?}",
        outcome.annotation.unwrap().as_count().unwrap()
    );
}
