//! Quickstart: run MINCOST on the paper's 4-node example network (Figure 3)
//! with reference-based provenance, then query the provenance of
//! `bestPathCost(@a, c, 5)` in several representations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exspan::core::{
    DerivationCountRepr, NodeSetRepr, PolynomialRepr, ProvenanceMode, ProvenanceSystem,
    SystemConfig, TraversalOrder,
};
use exspan::ndlog::programs;
use exspan::netsim::Topology;
use exspan::types::{Tuple, Value};

fn main() {
    // Node ids follow Figure 3: a=0, b=1, c=2, d=3.
    let topology = Topology::paper_example();
    println!(
        "topology: {} nodes, {} links (Figure 3)",
        topology.num_nodes(),
        topology.num_links()
    );

    let mut system = ProvenanceSystem::new(
        &programs::mincost(),
        topology,
        SystemConfig {
            mode: ProvenanceMode::Reference,
            ..Default::default()
        },
    );
    system.seed_links();
    let stats = system.run_to_fixpoint();
    println!(
        "MINCOST reached fixpoint at t={:.3}s after {} events; {} bytes exchanged",
        stats.fixpoint_time,
        stats.steps,
        system.total_bytes()
    );

    // Every node now knows its best path cost to every destination.
    for t in system.engine().tuples(0, "bestPathCost") {
        println!("  node a derived {t}");
    }

    // The tuple the paper traces throughout: bestPathCost(@a, c, 5).
    let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);

    // 1. Full provenance polynomial (queried from node d).
    let (_qe, outcome) =
        system.query_provenance(3, &target, Box::new(PolynomialRepr), TraversalOrder::Bfs);
    let latency_ms = outcome.latency().unwrap_or_default() * 1e3;
    let polynomial = outcome.annotation.expect("query completes");
    println!(
        "\nprovenance polynomial of {target} (latency {latency_ms:.1} ms):\n  {}",
        polynomial.as_expr().unwrap()
    );
    println!(
        "  -> {} alternative derivations",
        polynomial.as_expr().unwrap().num_derivations()
    );

    // 2. Node-level provenance: which nodes participated?
    let (_qe, outcome) =
        system.query_provenance(3, &target, Box::new(NodeSetRepr), TraversalOrder::Bfs);
    let nodes = outcome.annotation.unwrap();
    println!("node-level provenance: {:?}", nodes.as_nodes().unwrap());

    // 3. Number of derivations via a DFS-with-threshold traversal that stops
    //    as soon as more than one derivation is found.
    let (_qe, outcome) = system.query_provenance(
        3,
        &target,
        Box::new(DerivationCountRepr),
        TraversalOrder::DfsThreshold(1),
    );
    println!(
        "derivation-count query (DFS, threshold 1): {:?}",
        outcome.annotation.unwrap().as_count().unwrap()
    );
}
