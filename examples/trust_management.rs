//! Distributed trust management with condensed (BDD) provenance.
//!
//! Scenario: a federation of administrative domains runs a routing protocol,
//! and a node only wants to accept a route if it can be derived *entirely*
//! from links owned by domains it trusts — the paper's BGP-style use case for
//! absorption provenance (§3 "Representation", §6.3) and trust-domain
//! granularity.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trust_management
//! ```

use exspan::core::Repr;
use exspan::netsim::Topology;
use exspan::types::{Tuple, Value};
use std::collections::BTreeMap;

fn main() {
    // Figure 3 topology; pretend nodes {a, b} belong to domain 0 and
    // nodes {c, d} to domain 1.
    let mut deployment = exspan::setup::mincost_reference(Topology::paper_example(), 1);

    // The route node d holds towards node a.
    let routes = deployment.tuples_shared(3, "bestPathCost");
    let route_to_a = routes
        .iter()
        .find(|t| t.values[0] == Value::Node(0))
        .expect("d has a route to a")
        .clone();
    println!("node d's route to a: {route_to_a}");

    // 1. Trust-domain granularity: which domains participated?
    let domains: BTreeMap<u32, u32> = (0..4).map(|n| (n, if n <= 1 { 0 } else { 1 })).collect();
    let outcome = deployment
        .query(&route_to_a)
        .issuer(3)
        .repr(Repr::TrustDomain(domains))
        .execute();
    println!(
        "domains involved in the derivation: {:?}",
        outcome.annotation.unwrap()
    );

    // 2. Absorption (BDD) provenance: decide acceptance under different trust
    //    policies without re-querying — the BDD is evaluated directly.
    let handle = deployment
        .query(&route_to_a)
        .issuer(3)
        .repr(Repr::Bdd)
        .submit();
    deployment.run_to_fixpoint();
    assert!(deployment.outcome(handle).unwrap().is_complete());

    // Policy A: trust every link.
    let accept_all = deployment
        .derivable_under(handle, |_| true)
        .expect("BDD query completed");
    // Policy B: trust only links whose *both* endpoints are in domain 0
    // (nodes a and b).  Node d's route to a needs a link touching c or d, so
    // it must be rejected.
    let trusted_links: Vec<_> = [(0u32, 1u32, 3i64), (1, 0, 3)]
        .iter()
        .map(|&(s, d, c)| Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)]).vid())
        .collect();
    let accept_domain0 = deployment
        .derivable_under(handle, |vid| trusted_links.contains(&vid))
        .expect("BDD query completed");

    println!("accept route when trusting all links:        {accept_all}");
    println!("accept route when trusting only domain-0 links: {accept_domain0}");
    assert!(accept_all);
    assert!(!accept_domain0);
    println!("\ntrust policy enforced from condensed provenance — no re-query needed.");
}
