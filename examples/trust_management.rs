//! Distributed trust management with condensed (BDD) provenance.
//!
//! Scenario: a federation of administrative domains runs a routing protocol,
//! and a node only wants to accept a route if it can be derived *entirely*
//! from links owned by domains it trusts — the paper's BGP-style use case for
//! absorption provenance (§3 "Representation", §6.3) and trust-domain
//! granularity.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trust_management
//! ```

use exspan::core::{
    BddRepr, ProvenanceMode, ProvenanceSystem, SystemConfig, TraversalOrder, TrustDomainRepr,
};
use exspan::ndlog::programs;
use exspan::netsim::Topology;
use exspan::types::{Tuple, Value};

fn main() {
    // Figure 3 topology; pretend nodes {a, b} belong to domain 0 and
    // nodes {c, d} to domain 1.
    let topology = Topology::paper_example();
    let mut system = ProvenanceSystem::new(
        &programs::mincost(),
        topology,
        SystemConfig {
            mode: ProvenanceMode::Reference,
            ..Default::default()
        },
    );
    system.seed_links();
    system.run_to_fixpoint();

    // The route node d holds towards node a.
    let routes = system.engine().tuples(3, "bestPathCost");
    let route_to_a = routes
        .iter()
        .find(|t| t.values[0] == Value::Node(0))
        .expect("d has a route to a")
        .clone();
    println!("node d's route to a: {route_to_a}");

    // 1. Trust-domain granularity: which domains participated?
    let domain_of = |n: u32| if n <= 1 { 0 } else { 1 };
    let repr = TrustDomainRepr::new((0..4).map(|n| (n, domain_of(n))).collect());
    let (_qe, outcome) =
        system.query_provenance(3, &route_to_a, Box::new(repr), TraversalOrder::Bfs);
    println!(
        "domains involved in the derivation: {:?}",
        outcome.annotation.unwrap()
    );

    // 2. Absorption (BDD) provenance: decide acceptance under different trust
    //    policies without re-querying — the BDD is evaluated directly.
    let (qe, outcome) = system.query_provenance(
        3,
        &route_to_a,
        Box::new(BddRepr::new()),
        TraversalOrder::Bfs,
    );
    let annotation = outcome.annotation.expect("query completes");
    let bdd_repr = qe
        .repr()
        .as_any()
        .downcast_ref::<BddRepr>()
        .expect("representation is BddRepr");

    // Policy A: trust every link.
    let accept_all = bdd_repr.derivable_under(&annotation, |_| true);
    // Policy B: trust only links whose *both* endpoints are in domain 0
    // (nodes a and b).  Node d's route to a needs a link touching c or d, so
    // it must be rejected.
    let trusted_links: Vec<_> = [(0u32, 1u32, 3i64), (1, 0, 3)]
        .iter()
        .map(|&(s, d, c)| Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)]).vid())
        .collect();
    let accept_domain0 = bdd_repr.derivable_under(&annotation, |vid| trusted_links.contains(&vid));

    println!("accept route when trusting all links:        {accept_all}");
    println!("accept route when trusting only domain-0 links: {accept_domain0}");
    assert!(accept_all);
    assert!(!accept_domain0);
    println!("\ntrust policy enforced from condensed provenance — no re-query needed.");
}
