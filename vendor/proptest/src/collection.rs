//! Collection strategies (subset of `proptest::collection`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec`s with a random length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            size: self.size.clone(),
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            self.size.start + rng.below(self.size.end - self.size.start)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
