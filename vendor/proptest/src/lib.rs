//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a small randomized property-testing harness with proptest's macro/API
//! surface: the [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`),
//! [`prop_oneof!`], [`any`], range and tuple strategies,
//! [`collection::vec`], and the [`proptest!`] test-generating macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for offline use:
//!
//! * no shrinking — a failing case panics with the generated inputs'
//!   `Debug` form via the ordinary assert macros;
//! * deterministic seeding per test name and case index, so failures are
//!   reproducible run-to-run;
//! * `prop_assert!` / `prop_assert_eq!` panic instead of returning `Err`.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

/// The generator handed to strategies; deterministic per (test, case).
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Samples uniformly from `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `self` generates leaves, and `branch` turns
    /// a strategy for subtrees into a strategy for one level up. `depth`
    /// bounds the recursion; the size-tuning parameters of real proptest are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level: half leaves, half one-deeper branches.
            strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (subset of proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Everything the generated tests and strategy expressions need in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Chooses uniformly between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares randomized tests. Each `fn name(x in strategy, y: Type) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __pt_case in 0..config.cases {
                let mut __pt_rng = $crate::TestRng::for_case(stringify!($name), __pt_case as u64);
                $crate::__proptest_bindings!{ __pt_rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident; ) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::for_case("strategies_respect_bounds", 0);
        for _ in 0..200 {
            let v = (1u32..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let (a, b) = ((0i64..=3), any::<bool>()).generate(&mut rng);
            assert!((0..=3).contains(&a));
            let _: bool = b;
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn max_leaf(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => *n,
                Tree::Node(a, b) => max_leaf(a).max(max_leaf(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_case("recursive_strategy_terminates", 1);
        for _ in 0..100 {
            let tree = strat.generate(&mut rng);
            assert!(depth(&tree) <= 4);
            assert!(max_leaf(&tree) < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, flag: bool) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
