//! Offline shim for the subset of `criterion` used by this workspace's
//! benchmarks: `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It measures plain wall-clock means (warmup + fixed sample count) and
//! prints one line per benchmark — no statistics, HTML reports or
//! command-line filtering. Good enough to keep `cargo bench` runnable and
//! produce comparable reference numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped. Accepted and ignored: the shim
/// always regenerates the input for every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one case within a benchmark group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver passed to every benchmark closure.
pub struct Bencher {
    samples: u32,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, reporting the mean over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup iteration, then the measured samples.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.samples);
    }
}

fn run_case(label: &str, samples: u32, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<50} {mean:>12.3?}/iter ({samples} samples)"),
        None => println!("{label:<50} (no measurement recorded)"),
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_case(name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each case in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Runs one case of the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        run_case(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one case of the group with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_case(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &2, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
