//! Offline shim for the subset of `serde_json` used by this workspace:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], implemented over
//! the serde shim's direct-to-JSON traits.

pub use serde::JsonError as Error;
use serde::{Deserialize, JsonValue, Serialize};

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_into(&mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(pretty_print(&parse(&compact)?))
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_json_value(&parse(s)?)
}

/// Parses JSON text into the shim's document model.
pub fn parse(s: &str) -> Result<JsonValue, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    /// Reads four hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow; combine into one code point.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (strings were valid UTF-8 going in).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Pretty-prints a document with two-space indentation.
fn pretty_print(v: &JsonValue) -> String {
    let mut out = String::new();
    pretty_into(v, 0, &mut out);
    out
}

fn pretty_into(v: &JsonValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => out.push_str(&n.to_string()),
        JsonValue::String(s) => serde::write_json_string(s, out),
        JsonValue::Array(items) if items.is_empty() => out.push_str("[]"),
        JsonValue::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                pretty_into(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Object(map) if map.is_empty() => out.push_str("{}"),
        JsonValue::Object(map) => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                serde::write_json_string(k, out);
                out.push_str(": ");
                pretty_into(item, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(
            v.get_field("b").unwrap().get_field("c").unwrap(),
            &JsonValue::Bool(true)
        );
        match v.get_field("a").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items[0], JsonValue::Number(1.0));
                assert_eq!(items[1], JsonValue::Number(-2.5));
                assert_eq!(items[2], JsonValue::String("x\n".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn pretty_round_trips() {
        let src = r#"{"k":[{"x":1},{"x":2}]}"#;
        let pretty = pretty_print(&parse(src).unwrap());
        assert_eq!(parse(&pretty).unwrap(), parse(src).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // 😀 is the surrogate-pair escape of U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".into())
        );
        assert_eq!(
            parse(r#""aé𝄞b""#).unwrap(),
            JsonValue::String("aé𝄞b".into())
        );
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired high surrogate
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err()); // bad low surrogate
        assert!(parse(r#""\ude00""#).is_err()); // lone low surrogate
    }
}
