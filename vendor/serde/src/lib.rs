//! Offline shim for the subset of `serde` used by this workspace.
//!
//! The build environment has no access to crates.io. This crate provides
//! `Serialize` / `Deserialize` traits (and re-exports the matching derive
//! macros from the sibling `serde_derive` shim) that are just rich enough
//! for the one place the workspace actually serializes data: the
//! `exspan-bench` figure reports, which are plain structs of strings,
//! floats and vectors round-tripped through `serde_json`.
//!
//! Design: instead of serde's visitor architecture, both traits work
//! directly against a tiny JSON document model ([`JsonValue`]). The derive
//! macro generates real field-by-field implementations for non-generic
//! named-field structs; for enums and tuple structs it generates marker
//! implementations whose default methods fail at runtime if ever called.
//! That keeps every `#[derive(Serialize, Deserialize)]` in the workspace
//! compiling while only the types that are genuinely serialized need (and
//! get) working implementations.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Error produced by the shim's (de)serialization entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError(m.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Looks up a field of an object, erroring on missing field / non-object.
    pub fn get_field(&self, name: &str) -> Result<&JsonValue, JsonError> {
        match self {
            JsonValue::Object(map) => map
                .get(name)
                .ok_or_else(|| JsonError::msg(format!("missing field `{name}`"))),
            other => Err(JsonError::msg(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }
}

/// Types that can serialize themselves to JSON text.
///
/// The default method panics: it is the body of the marker implementations
/// the derive emits for types that are never actually serialized.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_into(&self, out: &mut String) {
        let _ = out;
        unimplemented!(
            "serde shim: no working Serialize implementation for this type \
             (only plain named-field structs get generated code)"
        )
    }
}

/// Types that can reconstruct themselves from a parsed [`JsonValue`].
///
/// The default method errors: it is the body of the marker implementations
/// the derive emits for types that are never actually deserialized.
pub trait Deserialize: Sized {
    /// Builds `Self` from a parsed JSON value.
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        let _ = v;
        Err(JsonError::msg(
            "serde shim: no working Deserialize implementation for this type",
        ))
    }
}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for String {
    fn json_into(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for &str {
    fn json_into(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(JsonError::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn json_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
                match v {
                    JsonValue::Number(n) => Ok(*n as $t),
                    other => Err(JsonError::msg(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32);

impl Serialize for f64 {
    fn json_into(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/inf; match serde_json's lossy `null`.
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Number(n) => Ok(*n),
            JsonValue::Null => Ok(f64::NAN),
            other => Err(JsonError::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.json_into(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(JsonError::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_into(&self, out: &mut String) {
        match self {
            Some(v) => v.json_into(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_into(&self, out: &mut String) {
        (**self).json_into(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        self.0.json_into(out);
        out.push(',');
        self.1.json_into(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(JsonError::msg(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json_into(&self, out: &mut String) {
        // Shim encoding: array of [key, value] pairs, so non-string keys work.
        out.push('[');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            k.json_into(out);
            out.push(',');
            v.json_into(out);
            out.push(']');
        }
        out.push(']');
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) => items
                .iter()
                .map(<(K, V)>::from_json_value)
                .collect::<Result<BTreeMap<K, V>, JsonError>>(),
            other => Err(JsonError::msg(format!(
                "expected array of pairs, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.json_into(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(JsonError::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.json_into(out);
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        let mut out = String::new();
        "a \"quoted\"\nline".json_into(&mut out);
        assert_eq!(out, r#""a \"quoted\"\nline""#);
        assert_eq!(
            String::from_json_value(&JsonValue::String("x".into())).unwrap(),
            "x"
        );
        assert_eq!(u32::from_json_value(&JsonValue::Number(7.0)).unwrap(), 7);
        assert_eq!(
            <(f64, f64)>::from_json_value(&JsonValue::Array(vec![
                JsonValue::Number(1.5),
                JsonValue::Number(-2.0),
            ]))
            .unwrap(),
            (1.5, -2.0)
        );
    }

    #[test]
    fn vec_serializes_as_array() {
        let mut out = String::new();
        vec![1u32, 2, 3].json_into(&mut out);
        assert_eq!(out, "[1,2,3]");
    }
}
