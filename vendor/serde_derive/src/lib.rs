//! Offline shim for `serde_derive`, written against the bare `proc_macro`
//! API (no `syn`/`quote`, which are unavailable offline).
//!
//! For a non-generic named-field struct it derives a real field-by-field
//! implementation of the shim's `serde::Serialize` / `serde::Deserialize`
//! traits (JSON object with one member per field). For enums, tuple structs
//! and unit structs it derives an empty marker implementation whose
//! inherited default methods fail at runtime — those types only need the
//! derive to compile, nothing in the workspace serializes them. Generic
//! items get no implementation at all.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item under the derive turned out to be.
enum Shape {
    /// Non-generic named-field struct: name + field identifiers.
    NamedStruct(String, Vec<String>),
    /// Non-generic enum, tuple struct or unit struct: name only.
    Marker(String),
    /// Generic or unparseable: emit nothing.
    Skip,
}

/// Extracts the shape of the item the derive is attached to.
fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the attribute's bracket group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1; // optional `pub(...)` restriction
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Shape::Skip,
    };
    if kind != "struct" && kind != "enum" {
        return Shape::Skip;
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Shape::Skip,
    };
    i += 1;

    match tokens.get(i) {
        // Generic item: too hard without syn, and nothing needs it.
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Shape::Skip,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Shape::NamedStruct(name, parse_field_names(g.stream()))
        }
        _ => Shape::Marker(name),
    }
}

/// Collects the field identifiers of a named-field struct body.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                        i += 1;
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(
                        tokens.get(i),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next comma outside angle brackets; commas
        // inside parens/brackets/braces are hidden inside `Group` tokens.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct(name, fields) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::write_json_string(\"{f}\", out);\n\
                     out.push(':');\n\
                     ::serde::Serialize::json_into(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn json_into(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Shape::Marker(name) => format!("impl ::serde::Serialize for {name} {{}}"),
        Shape::Skip => String::new(),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct(name, fields) => {
            let mut body = String::new();
            for f in &fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value(v.get_field(\"{f}\")?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::JsonValue)\n\
                         -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         ::std::result::Result::Ok({name} {{\n{body}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Marker(name) => format!("impl ::serde::Deserialize for {name} {{}}"),
        Shape::Skip => String::new(),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}
