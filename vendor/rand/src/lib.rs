//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a deterministic, dependency-free stand-in: [`rngs::SmallRng`] (an
//! xoshiro256++ generator seeded via SplitMix64), [`SeedableRng`] with
//! `seed_from_u64`, and the [`Rng`] extension trait with `gen_range` over
//! integer and float ranges plus `gen_bool`.
//!
//! It is NOT statistically equivalent to the real `rand` crate and produces
//! different streams for the same seed; workspace code only relies on
//! determinism per seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// The non-cryptographic generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (stand-in for `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
