//! # pollshim — minimal readiness polling for the exspan service reactor
//!
//! The workspace is tokio-free and its first-party crates forbid `unsafe`,
//! but a poll-based reactor needs two libc facilities with no `std`
//! equivalent:
//!
//! * [`poll`] — the classic `poll(2)` readiness multiplexer, enough to drive
//!   tens of thousands of nonblocking sockets from one thread;
//! * [`raise_nofile_limit`] — `getrlimit`/`setrlimit(RLIMIT_NOFILE)`, so a
//!   load generator holding 10k+ sessions (two sockets each, client and
//!   server side, when the server runs in-process) can ask for the file
//!   descriptors it needs instead of dying on `EMFILE`.
//!
//! This is the "tiny vendored poll shim" pattern: all `unsafe` (the two FFI
//! declarations and their call sites) is confined to this leaf crate, which
//! exposes a fully safe API.  If the build environment ever gains registry
//! access this crate can be replaced by `libc`/`polling`; the surface is
//! deliberately small to make that swap mechanical.
//!
//! Only Unix is supported (the workspace targets Linux containers); on other
//! platforms [`poll`] returns [`std::io::ErrorKind::Unsupported`].

use std::io;

/// `POLLIN`: readable (or a pending accept on a listener).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: the fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// A poll-set entry watching `fd` for `events` (a bitmask of [`POLLIN`]
    /// and [`POLLOUT`]).
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched file descriptor.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// The returned readiness events from the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the fd is readable (or errored/hung up — callers should read
    /// and let the read surface the condition).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the fd is writable (or errored — callers should write and let
    /// the write surface the condition).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
        fn getrlimit(resource: core::ffi::c_int, rlim: *mut Rlimit) -> core::ffi::c_int;
        fn setrlimit(resource: core::ffi::c_int, rlim: *const Rlimit) -> core::ffi::c_int;
    }

    /// `RLIMIT_NOFILE` on Linux (x86_64 and aarch64 agree).
    const RLIMIT_NOFILE: core::ffi::c_int = 7;

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `PollFd` is `repr(C)` and layout-compatible with
            // `struct pollfd`; the slice pointer/length pair describes
            // exactly `fds.len()` initialized entries that live across the
            // call, and `poll` writes only the `revents` fields.
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as core::ffi::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }

    pub fn raise_nofile_impl(want: u64) -> io::Result<u64> {
        let mut lim = Rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, writable `rlimit`-layout struct.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur >= want {
            return Ok(lim.rlim_cur);
        }
        // First try to raise both limits (needs privilege when want exceeds
        // the hard limit) ...
        let raised = Rlimit {
            rlim_cur: want,
            rlim_max: lim.rlim_max.max(want),
        };
        // SAFETY: passing a valid, initialized `rlimit`-layout struct.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
        // ... then fall back to raising the soft limit to the hard ceiling.
        let clamped = Rlimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: as above.
        if unsafe { setrlimit(RLIMIT_NOFILE, &clamped) } == 0 {
            return Ok(lim.rlim_max);
        }
        Err(io::Error::last_os_error())
    }
}

/// Blocks until at least one fd in `fds` is ready, `timeout_ms` elapses
/// (`-1` = no timeout), or a signal arrives (`EINTR` is retried internally).
/// Returns the number of entries with nonzero `revents`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    #[cfg(unix)]
    {
        sys::poll_impl(fds, timeout_ms)
    }
    #[cfg(not(unix))]
    {
        let _ = (fds, timeout_ms);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "pollshim supports only Unix targets",
        ))
    }
}

/// Ensures the process may hold at least `want` open file descriptors,
/// raising `RLIMIT_NOFILE` as far as privileges allow.  Returns the
/// resulting soft limit (which may still be below `want` when the hard
/// limit cannot be raised).
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    #[cfg(unix)]
    {
        sys::raise_nofile_impl(want)
    }
    #[cfg(not(unix))]
    {
        let _ = want;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "pollshim supports only Unix targets",
        ))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_reports_readability_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (mut b, _) = listener.accept().unwrap();

        use std::os::unix::io::AsRawFd;
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no readiness.
        assert_eq!(poll(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());

        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN | POLLOUT)];
        assert!(poll(&mut fds, 1000).unwrap() >= 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable(), "an idle socket is writable");
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        // Asking for 64 fds never lowers the limit and always succeeds.
        let got = raise_nofile_limit(64).expect("rlimit query works");
        assert!(got >= 64);
    }
}
