//! The unified facade error type.
//!
//! Each workspace crate keeps its own precise error enum ([`BuildError`] for
//! deployment construction, [`QueryError`] for handle lookups, [`ServeError`]
//! for the wire service), but applications composing several layers want one
//! type to `?` through.  [`Error`] wraps them all, implements
//! [`std::error::Error`] with `source()` chaining, and is `#[non_exhaustive]`
//! so future subsystems can add variants without a major version bump.

use crate::core::{BuildError, QueryError};
use crate::serve::ServeError;

/// Any error the `exspan` facade can surface, one layer per variant.
///
/// ```
/// use exspan::core::{Exspan, ProvenanceMode};
/// use exspan::ndlog::programs;
///
/// fn build() -> Result<(), exspan::Error> {
///     // No topology supplied: surfaces as Error::Build via From.
///     let err = Exspan::builder()
///         .program(programs::mincost())
///         .mode(ProvenanceMode::Reference)
///         .build()
///         .map(|_| ())?;
///     Ok(err)
/// }
/// assert!(matches!(build(), Err(exspan::Error::Build(_))));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Deployment construction was rejected by `Exspan::builder()`.
    Build(BuildError),
    /// A query handle lookup failed (unknown handle, still in flight, or a
    /// representation mismatch).
    Query(QueryError),
    /// The `exspan-serve` wire service failed: transport I/O, a wire-format
    /// violation, or a typed protocol error from the peer.
    Serve(ServeError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "deployment build failed: {e}"),
            Self::Query(e) => write!(f, "query failed: {e}"),
            Self::Serve(e) => write!(f, "serve failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            Self::Query(e) => Some(e),
            Self::Serve(e) => Some(e),
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Self::Query(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_each_layer_with_a_source_chain() {
        let errors: Vec<Error> = vec![
            BuildError::MissingProgram.into(),
            QueryError::UnknownHandle { index: 7 }.into(),
            ServeError::ConnectionClosed.into(),
        ];
        for err in &errors {
            // Display prefixes the layer; source() exposes the inner error.
            assert!(!err.to_string().is_empty());
            assert!(std::error::Error::source(err).is_some());
        }
        assert!(matches!(errors[0], Error::Build(_)));
        assert!(matches!(errors[1], Error::Query(_)));
        assert!(matches!(errors[2], Error::Serve(_)));
    }
}
