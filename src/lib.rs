//! # exspan
//!
//! A Rust reproduction of **ExSPAN** — *"Efficient Querying and Maintenance
//! of Network Provenance at Internet-Scale"* (Zhou, Sherr, Tao, Li, Loo, Mao;
//! SIGMOD 2010).
//!
//! ExSPAN adds *network provenance* — the ability to explain how any piece of
//! distributed network state was derived, by whom, and from what — to
//! protocols written in NDlog (Network Datalog, the language of declarative
//! networking).  The system maintains a distributed provenance graph with
//! near-zero overhead by shipping only `(RID, RLoc)` pointers with
//! derivations (*reference-based provenance*) and resolves provenance on
//! demand with distributed recursive queries that can be customized to return
//! provenance polynomials, node sets, derivation counts, derivability tests
//! or BDD-condensed (absorption) provenance.
//!
//! This facade crate re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `exspan-types` | values, tuples, VIDs/RIDs, SHA-1, wire-size model |
//! | [`bdd`] | `exspan-bdd` | reduced ordered BDDs (absorption provenance) |
//! | [`ndlog`] | `exspan-ndlog` | NDlog AST, parser, validation, built-in programs |
//! | [`netsim`] | `exspan-netsim` | discrete-event simulator, topologies, churn |
//! | [`runtime`] | `exspan-runtime` | distributed pipelined semi-naïve NDlog engine |
//! | [`core`] | `exspan-core` | the `Deployment` API, provenance rewrite, modes, queries |
//! | [`serve`] | `exspan-serve` | wall-clock TCP service front-end, wire protocol, load generator |
//!
//! and defines one cross-layer type of its own: [`Error`], a
//! `#[non_exhaustive]` enum unifying build, query and serve errors behind a
//! single `std::error::Error` with `source()` chaining.
//!
//! ## Quick start
//!
//! A deployment is built with `Exspan::builder()` (the program / topology /
//! mode combination is validated up front), queries are composed with the
//! builder-style `query(..)` API, and one `run_until` / `run_to_fixpoint`
//! clock advances protocol maintenance, churn and in-flight queries together:
//!
//! ```
//! use exspan::core::{Exspan, ProvenanceMode, Repr, Traversal};
//! use exspan::ndlog::programs;
//! use exspan::netsim::Topology;
//! use exspan::types::{Tuple, Value};
//!
//! // The 4-node example network of the paper's Figure 3, running MINCOST
//! // with reference-based provenance (links are seeded automatically).
//! let mut deployment = Exspan::builder()
//!     .program(programs::mincost())
//!     .topology(Topology::paper_example())
//!     .mode(ProvenanceMode::Reference)
//!     .shards(1)
//!     .build()
//!     .expect("valid deployment");
//! deployment.run_to_fixpoint();
//!
//! // Query the provenance of bestPathCost(@a, c, 5) as a polynomial,
//! // issued from node d.
//! let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);
//! let outcome = deployment
//!     .query(&target)
//!     .issuer(3)
//!     .repr(Repr::Polynomial)
//!     .traversal(Traversal::Bfs)
//!     .execute();
//! let polynomial = outcome.annotation.expect("query completes");
//! assert_eq!(polynomial.as_expr().unwrap().num_derivations(), 2);
//! ```
//!
//! Long-lived deployments submit queries with `.submit()` (returning a
//! `QueryHandle`) and poll results while the clock advances, so queries
//! overlap ongoing maintenance and churn:
//!
//! ```
//! use exspan::core::{Exspan, ProvenanceMode, Repr};
//! use exspan::ndlog::programs;
//! use exspan::netsim::Topology;
//!
//! let mut deployment = Exspan::builder()
//!     .program(programs::mincost())
//!     .topology(Topology::paper_example())
//!     .mode(ProvenanceMode::Reference)
//!     .build()
//!     .unwrap();
//! deployment.run_to_fixpoint();
//!
//! let target = deployment.tuples_shared(0, "bestPathCost").remove(0);
//! let start = deployment.now();
//! let handle = deployment
//!     .query(&target)
//!     .issuer(1)
//!     .repr(Repr::DerivationCount)
//!     .cached(true)
//!     .at(start + 0.1)
//!     .submit();
//! let neighbor = deployment.topology().neighbors(0)[0];
//! deployment.remove_link(0, neighbor); // churn
//! deployment.run_to_fixpoint(); // maintenance + query on one clock
//! assert!(deployment.outcome(handle).unwrap().is_complete());
//! ```

pub use exspan_bdd as bdd;
pub use exspan_core as core;
pub use exspan_ndlog as ndlog;
pub use exspan_netsim as netsim;
pub use exspan_runtime as runtime;
pub use exspan_serve as serve;
pub use exspan_types as types;

pub use exspan_serve::{ServeClient, ServeConfig};

mod error;
pub use error::Error;

/// Shared deployment prologues used by the `examples/` binaries and the
/// integration tests — one builder-based helper instead of each call site
/// re-implementing the same wiring.
pub mod setup {
    use crate::core::{Deployment, Exspan, ProvenanceMode};
    use crate::ndlog::ast::Program;
    use crate::ndlog::programs;
    use crate::netsim::Topology;

    /// Builds a deployment for `program` over `topology` with `mode` on
    /// `shards` worker shards (links auto-seeded) and runs the protocol to a
    /// global fixpoint.
    pub fn converged(
        program: Program,
        topology: Topology,
        mode: ProvenanceMode,
        shards: usize,
    ) -> Deployment {
        let mut deployment = Exspan::builder()
            .program(program)
            .topology(topology)
            .mode(mode)
            .shards(shards)
            .build()
            .expect("deployment configuration is valid");
        deployment.run_to_fixpoint();
        deployment
    }

    /// The most common prologue: MINCOST with reference-based provenance.
    pub fn mincost_reference(topology: Topology, shards: usize) -> Deployment {
        converged(
            programs::mincost(),
            topology,
            ProvenanceMode::Reference,
            shards,
        )
    }
}
