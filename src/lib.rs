//! # exspan
//!
//! A Rust reproduction of **ExSPAN** — *"Efficient Querying and Maintenance
//! of Network Provenance at Internet-Scale"* (Zhou, Sherr, Tao, Li, Loo, Mao;
//! SIGMOD 2010).
//!
//! ExSPAN adds *network provenance* — the ability to explain how any piece of
//! distributed network state was derived, by whom, and from what — to
//! protocols written in NDlog (Network Datalog, the language of declarative
//! networking).  The system maintains a distributed provenance graph with
//! near-zero overhead by shipping only `(RID, RLoc)` pointers with
//! derivations (*reference-based provenance*) and resolves provenance on
//! demand with distributed recursive queries that can be customized to return
//! provenance polynomials, node sets, derivation counts, derivability tests
//! or BDD-condensed (absorption) provenance.
//!
//! This facade crate re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `exspan-types` | values, tuples, VIDs/RIDs, SHA-1, wire-size model |
//! | [`bdd`] | `exspan-bdd` | reduced ordered BDDs (absorption provenance) |
//! | [`ndlog`] | `exspan-ndlog` | NDlog AST, parser, validation, built-in programs |
//! | [`netsim`] | `exspan-netsim` | discrete-event simulator, topologies, churn |
//! | [`runtime`] | `exspan-runtime` | distributed pipelined semi-naïve NDlog engine |
//! | [`core`] | `exspan-core` | provenance rewrite, storage, modes, queries, caching |
//!
//! ## Quick start
//!
//! ```
//! use exspan::core::{ProvenanceMode, ProvenanceSystem, SystemConfig};
//! use exspan::core::{PolynomialRepr, TraversalOrder};
//! use exspan::ndlog::programs;
//! use exspan::netsim::Topology;
//! use exspan::types::{Tuple, Value};
//!
//! // The 4-node example network of the paper's Figure 3, running MINCOST
//! // with reference-based provenance.
//! let mut system = ProvenanceSystem::new(
//!     &programs::mincost(),
//!     Topology::paper_example(),
//!     SystemConfig { mode: ProvenanceMode::Reference, ..Default::default() },
//! );
//! system.seed_links();
//! system.run_to_fixpoint();
//!
//! // Query the provenance of bestPathCost(@a, c, 5) as a polynomial.
//! let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);
//! let (_qe, outcome) = system.query_provenance(
//!     3,
//!     &target,
//!     Box::new(PolynomialRepr),
//!     TraversalOrder::Bfs,
//! );
//! let polynomial = outcome.annotation.unwrap();
//! assert_eq!(polynomial.as_expr().unwrap().num_derivations(), 2);
//! ```

pub use exspan_bdd as bdd;
pub use exspan_core as core;
pub use exspan_ndlog as ndlog;
pub use exspan_netsim as netsim;
pub use exspan_runtime as runtime;
pub use exspan_types as types;
