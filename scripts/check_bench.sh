#!/usr/bin/env bash
# CI perf gate: regenerate the tiny-scale benchmark figures and compare them
# against the committed baselines.
#
#   scripts/check_bench.sh                  # regenerate (1 shard) + gate
#   scripts/check_bench.sh --shards 4       # regenerate with 4 shards + gate
#   scripts/check_bench.sh --fresh DIR      # gate an existing output directory
#   scripts/check_bench.sh --data-dir DIR   # regenerate through a persistent
#                                           # store (restartable; see figures
#                                           # --data-dir)
#   scripts/check_bench.sh --time-budget 50 # also fail if total wall clock
#                                           # regresses >50% vs the baseline
#
# The gate (crates/bench/src/bin/check_bench.rs) fails if any figure's mean
# regresses more than 25% over benchmarks/baseline, or if the paper's
# value >= reference >= none provenance-mode ordering inverts.  All gated
# numbers come from the deterministic simulation, so the gate is immune to
# runner speed.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR=benchmarks/baseline
FRESH_DIR=""
SHARDS=1
BUDGET_ARGS=()
DATA_DIR_ARGS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --shards)
      SHARDS="$2"
      shift 2
      ;;
    --fresh)
      FRESH_DIR="$2"
      shift 2
      ;;
    --time-budget)
      BUDGET_ARGS=(--time-budget "$2")
      shift 2
      ;;
    --data-dir)
      DATA_DIR_ARGS=(--data-dir "$2")
      shift 2
      ;;
    *)
      echo "usage: $0 [--shards N] [--fresh DIR] [--time-budget PCT] [--data-dir DIR]" >&2
      exit 2
      ;;
  esac
done

if [[ ! -d "$BASELINE_DIR" ]]; then
  echo "error: committed baseline directory $BASELINE_DIR is missing" >&2
  exit 2
fi

cargo build --release -p exspan-bench --bins

if [[ -z "$FRESH_DIR" ]]; then
  FRESH_DIR="$(mktemp -d)"
  trap 'rm -rf "$FRESH_DIR"' EXIT
  echo "== regenerating tiny-scale figures (${SHARDS} shard(s)) into $FRESH_DIR"
  ./target/release/figures --scale tiny --shards "$SHARDS" --json "$FRESH_DIR" \
    ${DATA_DIR_ARGS[@]+"${DATA_DIR_ARGS[@]}"} >/dev/null
fi

echo "== comparing $FRESH_DIR against $BASELINE_DIR"
./target/release/check_bench ${BUDGET_ARGS[@]+"${BUDGET_ARGS[@]}"} "$FRESH_DIR" "$BASELINE_DIR"
