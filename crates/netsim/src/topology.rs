//! Network topologies and generators.

use exspan_types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The class of a link; used to pick latency/bandwidth defaults and to select
/// candidate links for the churn workload (which only touches stub-to-stub
/// links, as in §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Between two transit (backbone) nodes: 50 ms, 1 Gbps.
    TransitTransit,
    /// Between a transit node and a stub node: 10 ms, 100 Mbps.
    TransitStub,
    /// Between two stub nodes: 2 ms, 50 Mbps.
    StubStub,
    /// Cluster testbed link (Gigabit Ethernet): 0.1 ms, 1 Gbps.
    Testbed,
    /// Anything else (unit tests, hand-built examples).
    Custom,
}

impl LinkClass {
    /// Default propagation latency in seconds for this class (paper §7).
    pub fn default_latency(self) -> f64 {
        match self {
            LinkClass::TransitTransit => 0.050,
            LinkClass::TransitStub => 0.010,
            LinkClass::StubStub => 0.002,
            LinkClass::Testbed => 0.0001,
            LinkClass::Custom => 0.001,
        }
    }

    /// Default bandwidth in bits per second for this class (paper §7).
    pub fn default_bandwidth(self) -> f64 {
        match self {
            LinkClass::TransitTransit => 1e9,
            LinkClass::TransitStub => 100e6,
            LinkClass::StubStub => 50e6,
            LinkClass::Testbed => 1e9,
            LinkClass::Custom => 100e6,
        }
    }
}

/// Properties of a (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProps {
    /// One-way propagation latency in seconds.
    pub latency: f64,
    /// Bandwidth in bits per second.
    pub bandwidth: f64,
    /// Routing cost used by the protocols (the paper fixes this at 1).
    pub cost: i64,
    /// Class of the link.
    pub class: LinkClass,
}

impl LinkProps {
    /// Creates link properties from a class with the paper's defaults and a
    /// routing cost of 1.
    pub fn from_class(class: LinkClass) -> Self {
        LinkProps {
            latency: class.default_latency(),
            bandwidth: class.default_bandwidth(),
            cost: 1,
            class,
        }
    }
}

/// Which generator produced a topology (kept for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// GT-ITM style transit-stub graph.
    TransitStub,
    /// Ring plus random peers (the deployment testbed of §7.4).
    Testbed,
    /// The 4-node example of Figure 3.
    PaperExample,
    /// Hand-built.
    Custom,
}

/// An undirected network topology with per-link properties.
///
/// Links are stored once per unordered pair; all query methods treat them as
/// bidirectional (the paper assumes symmetric links).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    num_nodes: usize,
    links: BTreeMap<(NodeId, NodeId), LinkProps>,
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl Topology {
    /// Creates an empty topology with `num_nodes` nodes (ids `0..num_nodes`).
    pub fn empty(num_nodes: usize) -> Self {
        Topology {
            kind: TopologyKind::Custom,
            num_nodes,
            links: BTreeMap::new(),
            adjacency: BTreeMap::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Which generator produced this topology.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// Adds (or replaces) a bidirectional link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, props: LinkProps) {
        assert!(a != b, "self links are not allowed");
        assert!(
            (a as usize) < self.num_nodes && (b as usize) < self.num_nodes,
            "link endpoints must be valid nodes"
        );
        self.links.insert(Self::key(a, b), props);
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Removes a link if present; returns whether a link was removed.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = self.links.remove(&Self::key(a, b)).is_some();
        if removed {
            if let Some(s) = self.adjacency.get_mut(&a) {
                s.remove(&b);
            }
            if let Some(s) = self.adjacency.get_mut(&b) {
                s.remove(&a);
            }
        }
        removed
    }

    /// Returns the properties of the link between `a` and `b`, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&LinkProps> {
        self.links.get(&Self::key(a, b))
    }

    /// Returns `true` if a link between `a` and `b` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains_key(&Self::key(a, b))
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(&n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Degree of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency
            .get(&n)
            .map_or(0, std::collections::BTreeSet::len)
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all links as `(a, b, props)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, &LinkProps)> {
        self.links.iter().map(|(&(a, b), p)| (a, b, p))
    }

    /// Links of a particular class, as `(a, b)` pairs.
    pub fn links_of_class(&self, class: LinkClass) -> Vec<(NodeId, NodeId)> {
        self.links
            .iter()
            .filter(|(_, p)| p.class == class)
            .map(|(&(a, b), _)| (a, b))
            .collect()
    }

    /// Returns `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.num_nodes
    }

    /// Computes the lowest-latency path delay from `from` to `to` (Dijkstra
    /// over link latencies), and the bottleneck bandwidth along that path.
    ///
    /// Returns `None` if `to` is unreachable.  Used by the simulator to model
    /// communication between nodes that are not directly adjacent (e.g. the
    /// provenance query protocol, which contacts arbitrary `RLoc` nodes over
    /// the underlying IP network).
    pub fn path_latency(&self, from: NodeId, to: NodeId) -> Option<(f64, f64)> {
        if from == to {
            return Some((0.0, f64::INFINITY));
        }
        use std::cmp::Ordering;
        #[derive(PartialEq)]
        struct Entry(f64, f64, NodeId); // (latency, bottleneck bw, node)
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on latency via reversed comparison.
                other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
            }
        }
        let mut dist: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(Entry(0.0, f64::INFINITY, from));
        while let Some(Entry(lat, bw, node)) = heap.pop() {
            if node == to {
                return Some((lat, bw));
            }
            if let Some(&best) = dist.get(&node) {
                if lat > best {
                    continue;
                }
            }
            for m in self.neighbors(node) {
                let props = self.link(node, m).expect("adjacency implies link");
                let nlat = lat + props.latency;
                let nbw = bw.min(props.bandwidth);
                if dist.get(&m).map_or(true, |&d| nlat < d) {
                    dist.insert(m, nlat);
                    heap.push(Entry(nlat, nbw, m));
                }
            }
        }
        None
    }

    /// Smallest one-way propagation latency over all current links, or `None`
    /// if the topology has no links.
    ///
    /// This is the *lookahead* of the sharded runtime: an event processed at
    /// time `t` can only influence another node at `t + min_link_latency` or
    /// later, so all shards may safely process events up to
    /// `earliest pending event + min_link_latency` in parallel.
    pub fn min_link_latency(&self) -> Option<f64> {
        self.links
            .values()
            .map(|p| p.latency)
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(a) => Some(a.min(l)),
            })
    }

    /// Partitions the nodes over `num_shards` shards by rendezvous (highest
    /// random weight) hashing of the node id.
    ///
    /// Rendezvous hashing keeps the assignment independent of the topology's
    /// link structure and stable under churn, and changing the shard count
    /// only moves the minimal number of nodes.  The hash is a fixed integer
    /// mix, so the partition is identical on every platform and run.
    pub fn partition_rendezvous(&self, num_shards: usize) -> Vec<u16> {
        assert!(num_shards > 0, "need at least one shard");
        assert!(num_shards <= u16::MAX as usize, "too many shards");
        fn mix(x: u64) -> u64 {
            // splitmix64 finalizer.
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        (0..self.num_nodes)
            .map(|n| {
                (0..num_shards)
                    .max_by_key(|&s| mix(((n as u64) << 20) ^ s as u64))
                    .expect("num_shards > 0") as u16
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Generators
    // ------------------------------------------------------------------

    /// The 4-node example network of Figure 3 (nodes a=0, b=1, c=2, d=3).
    ///
    /// Link costs match the figure: a–b 3, a–c 5, b–c 2, b–d 5, c–d 3.
    pub fn paper_example() -> Topology {
        let mut t = Topology::empty(4);
        t.kind = TopologyKind::PaperExample;
        let mk = |cost| LinkProps {
            latency: 0.002,
            bandwidth: 50e6,
            cost,
            class: LinkClass::Custom,
        };
        t.add_link(0, 1, mk(3)); // a-b
        t.add_link(0, 2, mk(5)); // a-c
        t.add_link(1, 2, mk(2)); // b-c
        t.add_link(1, 3, mk(5)); // b-d
        t.add_link(2, 3, mk(3)); // c-d
        t
    }

    /// GT-ITM style transit-stub topology with the parameters of §7:
    /// 4 transit nodes per transit domain, 3 stubs per transit node, 8 nodes
    /// per stub (100 nodes per domain).  `num_domains` scales the network
    /// size; the simulation experiments use 1–5 domains (100–500 nodes).
    pub fn transit_stub(num_domains: usize, seed: u64) -> Topology {
        const TRANSIT_PER_DOMAIN: usize = 4;
        const STUBS_PER_TRANSIT: usize = 3;
        const NODES_PER_STUB: usize = 8;
        let nodes_per_domain = TRANSIT_PER_DOMAIN * (1 + STUBS_PER_TRANSIT * NODES_PER_STUB);
        let num_nodes = num_domains * nodes_per_domain;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Topology::empty(num_nodes);
        t.kind = TopologyKind::TransitStub;

        let mut transit_nodes: Vec<NodeId> = Vec::new();
        let mut next_id: NodeId = 0;
        for _domain in 0..num_domains {
            // Allocate transit nodes for this domain and wire them in a ring
            // with one extra chord for redundancy.
            let domain_transit: Vec<NodeId> = (0..TRANSIT_PER_DOMAIN)
                .map(|i| next_id + i as NodeId)
                .collect();
            next_id += TRANSIT_PER_DOMAIN as NodeId;
            for i in 0..TRANSIT_PER_DOMAIN {
                let a = domain_transit[i];
                let b = domain_transit[(i + 1) % TRANSIT_PER_DOMAIN];
                t.add_link(a, b, LinkProps::from_class(LinkClass::TransitTransit));
            }
            t.add_link(
                domain_transit[0],
                domain_transit[2],
                LinkProps::from_class(LinkClass::TransitTransit),
            );

            // Stubs hanging off each transit node.
            for &transit in &domain_transit {
                for _stub in 0..STUBS_PER_TRANSIT {
                    let stub_nodes: Vec<NodeId> =
                        (0..NODES_PER_STUB).map(|i| next_id + i as NodeId).collect();
                    next_id += NODES_PER_STUB as NodeId;
                    // Intra-stub ring: 8 stub-stub links.
                    for i in 0..NODES_PER_STUB {
                        let a = stub_nodes[i];
                        let b = stub_nodes[(i + 1) % NODES_PER_STUB];
                        t.add_link(a, b, LinkProps::from_class(LinkClass::StubStub));
                    }
                    // Plus ~5 extra random intra-stub links, giving ≈13 links
                    // per stub (the paper reports 315 stub-stub links in the
                    // 200-node network, i.e. ≈13 per stub).
                    let mut extra = 0;
                    let mut attempts = 0;
                    while extra < 5 && attempts < 50 {
                        attempts += 1;
                        let a = stub_nodes[rng.gen_range(0..NODES_PER_STUB)];
                        let b = stub_nodes[rng.gen_range(0..NODES_PER_STUB)];
                        if a != b && !t.has_link(a, b) {
                            t.add_link(a, b, LinkProps::from_class(LinkClass::StubStub));
                            extra += 1;
                        }
                    }
                    // Stub-to-transit uplink from the first stub node.
                    t.add_link(
                        stub_nodes[0],
                        transit,
                        LinkProps::from_class(LinkClass::TransitStub),
                    );
                }
            }
            transit_nodes.extend(domain_transit);
        }

        // Inter-domain links: chain the domains through random transit nodes.
        for d in 1..num_domains {
            let a =
                transit_nodes[(d - 1) * TRANSIT_PER_DOMAIN + rng.gen_range(0..TRANSIT_PER_DOMAIN)];
            let b = transit_nodes[d * TRANSIT_PER_DOMAIN + rng.gen_range(0..TRANSIT_PER_DOMAIN)];
            t.add_link(a, b, LinkProps::from_class(LinkClass::TransitTransit));
        }
        t
    }

    /// The deployment testbed topology of §7.4: nodes arranged in a ring, and
    /// each node additionally linked to one random peer such that the maximum
    /// degree is three.
    pub fn testbed_ring(num_nodes: usize, seed: u64) -> Topology {
        assert!(num_nodes >= 3, "testbed ring needs at least 3 nodes");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Topology::empty(num_nodes);
        t.kind = TopologyKind::Testbed;
        for i in 0..num_nodes {
            let a = i as NodeId;
            let b = ((i + 1) % num_nodes) as NodeId;
            t.add_link(a, b, LinkProps::from_class(LinkClass::Testbed));
        }
        // Random extra peers with degree cap 3.
        let mut order: Vec<NodeId> = (0..num_nodes as NodeId).collect();
        // Fisher-Yates shuffle for a deterministic but seed-dependent order.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &a in &order {
            if t.degree(a) >= 3 {
                continue;
            }
            // Try to find a peer that also has spare degree.
            for _ in 0..num_nodes {
                let b = rng.gen_range(0..num_nodes) as NodeId;
                if b != a && t.degree(b) < 3 && !t.has_link(a, b) {
                    t.add_link(a, b, LinkProps::from_class(LinkClass::Testbed));
                    break;
                }
            }
        }
        t
    }

    /// A simple line topology (useful in unit tests).
    pub fn line(num_nodes: usize) -> Topology {
        let mut t = Topology::empty(num_nodes);
        for i in 1..num_nodes {
            t.add_link(
                (i - 1) as NodeId,
                i as NodeId,
                LinkProps::from_class(LinkClass::Custom),
            );
        }
        t
    }

    /// A star topology centered on node 0 (useful in unit tests).
    pub fn star(num_nodes: usize) -> Topology {
        let mut t = Topology::empty(num_nodes);
        for i in 1..num_nodes {
            t.add_link(0, i as NodeId, LinkProps::from_class(LinkClass::Custom));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_figure_3() {
        let t = Topology::paper_example();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.link(0, 1).unwrap().cost, 3);
        assert_eq!(t.link(0, 2).unwrap().cost, 5);
        assert_eq!(t.link(1, 2).unwrap().cost, 2);
        assert_eq!(t.link(1, 3).unwrap().cost, 5);
        assert_eq!(t.link(2, 3).unwrap().cost, 3);
        assert!(!t.has_link(0, 3));
        assert!(t.is_connected());
    }

    #[test]
    fn add_remove_links_updates_adjacency() {
        let mut t = Topology::empty(3);
        t.add_link(0, 1, LinkProps::from_class(LinkClass::Custom));
        assert!(t.has_link(1, 0), "links are bidirectional");
        assert_eq!(t.neighbors(0), vec![1]);
        assert!(t.remove_link(1, 0));
        assert!(!t.has_link(0, 1));
        assert!(!t.remove_link(0, 1), "double removal reports false");
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "self links")]
    fn self_links_rejected() {
        let mut t = Topology::empty(2);
        t.add_link(1, 1, LinkProps::from_class(LinkClass::Custom));
    }

    #[test]
    fn transit_stub_has_expected_size_and_structure() {
        let t = Topology::transit_stub(2, 42);
        assert_eq!(t.num_nodes(), 200);
        assert!(t.is_connected());
        // The paper reports roughly 315 stub-to-stub links for 200 nodes.
        let stub_links = t.links_of_class(LinkClass::StubStub).len();
        assert!(
            (280..=340).contains(&stub_links),
            "stub-stub link count {stub_links} out of expected range"
        );
        // Transit-stub uplinks: one per stub = 24.
        assert_eq!(t.links_of_class(LinkClass::TransitStub).len(), 24);
        // Every class uses the paper's latencies.
        for (_, _, p) in t.links() {
            match p.class {
                LinkClass::TransitTransit => assert_eq!(p.latency, 0.050),
                LinkClass::TransitStub => assert_eq!(p.latency, 0.010),
                LinkClass::StubStub => assert_eq!(p.latency, 0.002),
                _ => panic!("unexpected link class in transit-stub topology"),
            }
            assert_eq!(p.cost, 1);
        }
    }

    #[test]
    fn transit_stub_scales_linearly_with_domains() {
        for domains in 1..=5 {
            let t = Topology::transit_stub(domains, 7);
            assert_eq!(t.num_nodes(), domains * 100);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn transit_stub_is_deterministic_per_seed() {
        let a = Topology::transit_stub(1, 99);
        let b = Topology::transit_stub(1, 99);
        let c = Topology::transit_stub(1, 100);
        let links = |t: &Topology| t.links().map(|(a, b, _)| (a, b)).collect::<Vec<_>>();
        assert_eq!(links(&a), links(&b));
        assert_ne!(links(&a), links(&c));
    }

    #[test]
    fn testbed_ring_respects_degree_cap() {
        let t = Topology::testbed_ring(40, 1);
        assert_eq!(t.num_nodes(), 40);
        assert!(t.is_connected());
        for n in t.nodes() {
            assert!(t.degree(n) >= 2, "ring guarantees degree ≥ 2");
            assert!(t.degree(n) <= 3, "degree cap of 3 violated at node {n}");
        }
    }

    #[test]
    fn path_latency_follows_shortest_path() {
        let t = Topology::line(4); // 0-1-2-3, each 1 ms
        let (lat, bw) = t.path_latency(0, 3).unwrap();
        assert!((lat - 0.003).abs() < 1e-9);
        assert_eq!(bw, 100e6);
        assert_eq!(t.path_latency(0, 0).unwrap().0, 0.0);
        // Unreachable node.
        let mut t2 = Topology::empty(3);
        t2.add_link(0, 1, LinkProps::from_class(LinkClass::Custom));
        assert!(t2.path_latency(0, 2).is_none());
        assert!(!t2.is_connected());
    }

    #[test]
    fn min_link_latency_reflects_current_links() {
        let mut t = Topology::empty(3);
        assert!(t.min_link_latency().is_none());
        t.add_link(0, 1, LinkProps::from_class(LinkClass::TransitTransit));
        assert_eq!(t.min_link_latency(), Some(0.050));
        t.add_link(1, 2, LinkProps::from_class(LinkClass::StubStub));
        assert_eq!(t.min_link_latency(), Some(0.002));
        t.remove_link(1, 2);
        assert_eq!(t.min_link_latency(), Some(0.050));
    }

    #[test]
    fn rendezvous_partition_is_deterministic_and_balanced() {
        let t = Topology::transit_stub(1, 42);
        let p4 = t.partition_rendezvous(4);
        assert_eq!(p4, t.partition_rendezvous(4), "partition is deterministic");
        assert_eq!(p4.len(), t.num_nodes());
        assert!(p4.iter().all(|&s| s < 4));
        // Every shard gets a reasonable share of the 100 nodes.
        for shard in 0..4u16 {
            let n = p4.iter().filter(|&&s| s == shard).count();
            assert!(
                (10..=40).contains(&n),
                "shard {shard} owns {n} of 100 nodes — partition is badly skewed"
            );
        }
        // A single shard owns everything (the sequential oracle).
        assert!(t.partition_rendezvous(1).iter().all(|&s| s == 0));
        // Growing the shard count only moves nodes, never swaps unaffected
        // ones between surviving shards (the rendezvous property is hard to
        // check directly; at minimum the assignment changes deterministically).
        assert_eq!(t.partition_rendezvous(3), t.partition_rendezvous(3));
    }

    #[test]
    fn star_and_line_helpers() {
        let s = Topology::star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.num_links(), 4);
        let l = Topology::line(5);
        assert_eq!(l.num_links(), 4);
        assert!(l.is_connected());
    }
}
