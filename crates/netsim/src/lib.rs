//! # exspan-netsim
//!
//! A deterministic discrete-event network simulator — the substitute for the
//! ns-3 toolkit on which the ExSPAN prototype was built.
//!
//! The evaluation in the paper measures *bytes transmitted*, *per-node
//! bandwidth over time*, *fixpoint latency* and *query completion latency*.
//! All of these are determined by the sequence of messages the distributed
//! engine exchanges and by the latency/bandwidth of the links they traverse,
//! which is exactly what this crate models:
//!
//! * [`topology`] — network graphs with per-link latency, bandwidth and
//!   routing cost, plus generators for the topologies used in §7: GT-ITM
//!   style transit-stub graphs, the ring-with-random-peers "testbed"
//!   topology, and the 4-node example of Figure 3.
//! * [`sim`] — the event queue: messages are scheduled with a delay equal to
//!   propagation latency plus serialization time, and every transmission is
//!   charged to the sending node's byte counters and bandwidth time-series.
//! * [`churn`] — the link add/delete workload of §7.2 (ten random stub-stub
//!   links added or deleted every 0.5 s).

pub mod churn;
pub mod sim;
pub mod topology;

pub use churn::{ChurnEvent, ChurnModel};
pub use sim::{EventKey, RoutedEvent, ScheduledMessage, ShardView, Simulator, TrafficStats};
pub use topology::{LinkClass, LinkProps, Topology, TopologyKind};
