//! The discrete-event simulator: message scheduling, delivery and traffic
//! accounting.

use crate::topology::Topology;
use exspan_types::wire::BandwidthSeries;
use exspan_types::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-node and aggregate traffic counters plus a bandwidth time-series.
#[derive(Debug, Clone)]
pub struct TrafficStats {
    /// Bytes sent by each node (indexed by node id).
    pub bytes_sent: Vec<u64>,
    /// Messages sent by each node.
    pub messages_sent: Vec<u64>,
    /// Messages dropped because no route existed (e.g. during churn).
    pub dropped: u64,
    /// Aggregate bandwidth time-series (bytes per bucket across all nodes).
    pub series: BandwidthSeries,
}

impl TrafficStats {
    fn new(num_nodes: usize, bucket_width: f64) -> Self {
        TrafficStats {
            bytes_sent: vec![0; num_nodes],
            messages_sent: vec![0; num_nodes],
            dropped: 0,
            series: BandwidthSeries::new(bucket_width),
        }
    }

    /// Total bytes sent by all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// Total messages sent by all nodes.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.iter().sum()
    }

    /// Average bytes sent per node.
    pub fn avg_bytes_per_node(&self) -> f64 {
        if self.bytes_sent.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.bytes_sent.len() as f64
        }
    }

    /// Per-node average bandwidth samples in bytes/second: the aggregate
    /// series divided by the node count (what Figures 8–11 plot).
    pub fn avg_bandwidth_samples(&self) -> Vec<(f64, f64)> {
        let n = self.bytes_sent.len().max(1) as f64;
        self.series
            .samples()
            .into_iter()
            .map(|(t, bps)| (t, bps / n))
            .collect()
    }
}

/// A message delivered by the simulator.
#[derive(Debug, Clone)]
pub struct ScheduledMessage<M> {
    /// Simulated delivery time in seconds.
    pub time: f64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Application payload.
    pub payload: M,
}

struct QueueEntry<M> {
    time: f64,
    seq: u64,
    msg: ScheduledMessage<M>,
}

impl<M> PartialEq for QueueEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueueEntry<M> {}
impl<M> PartialOrd for QueueEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, breaking
        // ties by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Processing delay charged for a locally-enqueued tuple (models CPU cost of
/// a rule firing; keeps simulated time advancing for the time-series plots).
pub const LOCAL_PROCESSING_DELAY: f64 = 50e-6;

/// The discrete-event simulator.
///
/// The simulator is deliberately passive: the distributed engine calls
/// [`Simulator::send`] / [`Simulator::schedule_local`] to enqueue events and
/// [`Simulator::pop`] to obtain the next one, advancing simulated time.
/// Every remote transmission is charged to the sender's traffic counters.
pub struct Simulator<M> {
    topology: Topology,
    queue: BinaryHeap<QueueEntry<M>>,
    now: f64,
    seq: u64,
    stats: TrafficStats,
}

impl<M> Simulator<M> {
    /// Creates a simulator over `topology` with 0.1 s bandwidth buckets.
    pub fn new(topology: Topology) -> Self {
        Self::with_bucket_width(topology, 0.1)
    }

    /// Creates a simulator with a custom bandwidth-series bucket width.
    pub fn with_bucket_width(topology: Topology, bucket_width: f64) -> Self {
        let n = topology.num_nodes();
        Simulator {
            topology,
            queue: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            stats: TrafficStats::new(n, bucket_width),
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The topology (immutable).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The topology (mutable, e.g. for churn).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Traffic statistics collected so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, time: f64, from: NodeId, to: NodeId, payload: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueueEntry {
            time,
            seq,
            msg: ScheduledMessage {
                time,
                from,
                to,
                payload,
            },
        });
    }

    /// Sends `payload` of `bytes` bytes from `from` to `to`, charging the
    /// transmission to `from` and scheduling delivery after propagation plus
    /// serialization delay.  If `to` is unreachable the message is dropped
    /// (counted in [`TrafficStats::dropped`]) — bytes are still charged, as
    /// the sender did put them on the wire.
    ///
    /// Returns `true` if the message will be delivered.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize, payload: M) -> bool {
        if from == to {
            self.schedule_local(from, payload);
            return true;
        }
        self.stats.bytes_sent[from as usize] += bytes as u64;
        self.stats.messages_sent[from as usize] += 1;
        self.stats.series.record(self.now, bytes);
        match self.topology.path_latency(from, to) {
            Some((latency, bandwidth)) => {
                let serialization = (bytes as f64 * 8.0) / bandwidth.max(1.0);
                let delay = latency + serialization;
                self.push(self.now + delay, from, to, payload);
                true
            }
            None => {
                self.stats.dropped += 1;
                false
            }
        }
    }

    /// Schedules a local event at the same node after the fixed local
    /// processing delay.  No bytes are charged.
    pub fn schedule_local(&mut self, node: NodeId, payload: M) {
        self.push(self.now + LOCAL_PROCESSING_DELAY, node, node, payload);
    }

    /// Schedules an event at an absolute simulated time (used by the
    /// experiment drivers for churn, packet workloads and query issue times).
    /// No bytes are charged.
    pub fn schedule_at(&mut self, time: f64, node: NodeId, payload: M) {
        assert!(
            time >= self.now,
            "cannot schedule in the past ({time} < {})",
            self.now
        );
        self.push(time, node, node, payload);
    }

    /// Pops the next event, advancing simulated time to its delivery time.
    pub fn pop(&mut self) -> Option<ScheduledMessage<M>> {
        let entry = self.queue.pop()?;
        self.now = entry.time;
        Some(entry.msg)
    }

    /// Peeks at the time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkClass, LinkProps, Topology};

    fn two_node_topology() -> Topology {
        let mut t = Topology::empty(2);
        t.add_link(
            0,
            1,
            LinkProps {
                latency: 0.010,
                bandwidth: 1e6, // 1 Mbps so serialization delay is visible
                cost: 1,
                class: LinkClass::Custom,
            },
        );
        t
    }

    #[test]
    fn send_accounts_bytes_and_delay() {
        let mut sim: Simulator<&'static str> = Simulator::new(two_node_topology());
        assert!(sim.send(0, 1, 1250, "hello")); // 1250 B = 10 000 bits -> 10 ms serialization
        let msg = sim.pop().unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.to, 1);
        assert_eq!(msg.payload, "hello");
        assert!(
            (msg.time - 0.020).abs() < 1e-9,
            "10ms latency + 10ms serialization"
        );
        assert_eq!(sim.stats().bytes_sent[0], 1250);
        assert_eq!(sim.stats().bytes_sent[1], 0);
        assert_eq!(sim.stats().total_messages(), 1);
    }

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology());
        sim.schedule_at(0.5, 0, 1);
        sim.schedule_at(0.2, 0, 2);
        sim.schedule_at(0.5, 0, 3);
        let order: Vec<u32> = std::iter::from_fn(|| sim.pop().map(|m| m.payload)).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert_eq!(sim.now(), 0.5);
    }

    #[test]
    fn local_events_have_processing_delay_and_no_bytes() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology());
        sim.schedule_local(0, 7);
        let m = sim.pop().unwrap();
        assert_eq!(m.payload, 7);
        assert!((m.time - LOCAL_PROCESSING_DELAY).abs() < 1e-12);
        assert_eq!(sim.stats().total_bytes(), 0);
        // send() to self routes through schedule_local.
        sim.send(1, 1, 100, 9);
        assert_eq!(sim.stats().total_bytes(), 0);
    }

    #[test]
    fn unreachable_destination_drops_but_charges_sender() {
        let mut t = Topology::empty(3);
        t.add_link(0, 1, LinkProps::from_class(LinkClass::Custom));
        let mut sim: Simulator<u32> = Simulator::new(t);
        assert!(!sim.send(0, 2, 500, 1));
        assert_eq!(sim.stats().dropped, 1);
        assert_eq!(sim.stats().bytes_sent[0], 500);
        assert!(sim.pop().is_none());
    }

    #[test]
    fn multi_hop_latency_used_for_non_adjacent_nodes() {
        let t = Topology::line(3); // 1 ms per hop, 100 Mbps
        let mut sim: Simulator<u32> = Simulator::new(t);
        sim.send(0, 2, 0, 1);
        let m = sim.pop().unwrap();
        assert!((m.time - 0.002).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology());
        sim.schedule_at(1.0, 0, 1);
        sim.pop();
        sim.schedule_at(0.5, 0, 2);
    }

    #[test]
    fn bandwidth_series_and_averages() {
        let mut sim: Simulator<u32> = Simulator::with_bucket_width(two_node_topology(), 1.0);
        sim.send(0, 1, 1000, 1);
        sim.pop();
        sim.send(1, 0, 3000, 2);
        assert_eq!(sim.stats().total_bytes(), 4000);
        assert_eq!(sim.stats().avg_bytes_per_node(), 2000.0);
        let avg = sim.stats().avg_bandwidth_samples();
        assert_eq!(avg[0].1, 2000.0); // 4000 B in bucket 0 / 2 nodes / 1 s
    }

    #[test]
    fn peek_and_pending() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology());
        assert!(sim.peek_time().is_none());
        sim.schedule_at(0.25, 0, 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.peek_time(), Some(0.25));
    }
}
