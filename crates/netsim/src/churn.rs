//! The churn workload of §7.2.
//!
//! The paper models churn by adding or deleting ten randomly selected
//! stub-to-stub links every 0.5 seconds in a 200-node network, with addition
//! and deletion occurring with equal probability.  [`ChurnModel`] generates
//! that schedule deterministically from a seed; the experiment driver applies
//! each [`ChurnEvent`] both to the simulator topology and to the engine's
//! `link` base tuples.

use crate::topology::{LinkClass, LinkProps, Topology};
use exspan_types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A single link change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time at which the change occurs.
    pub time: f64,
    /// `true` to add the link, `false` to delete it.
    pub add: bool,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link properties used when the event is an addition.
    pub props: LinkProps,
}

/// Generates a churn schedule over the stub-to-stub links of a topology.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Seconds between churn batches (0.5 s in the paper).
    pub interval: f64,
    /// Number of link changes per batch (10 in the paper).
    pub changes_per_batch: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            interval: 0.5,
            changes_per_batch: 10,
            seed: 0xC0FFEE,
        }
    }
}

impl ChurnModel {
    /// Generates the churn schedule for `duration` seconds over `topology`.
    ///
    /// Deletions pick a random currently-present stub-stub link; additions
    /// pick a random currently-absent pair of stub nodes that were connected
    /// at some point (i.e. previously deleted) or, failing that, a random
    /// absent stub-node pair.  The internal link set is tracked so the
    /// schedule stays consistent (no deletion of an already-deleted link).
    pub fn schedule(&self, topology: &Topology, duration: f64) -> Vec<ChurnEvent> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut present: Vec<(NodeId, NodeId)> = topology.links_of_class(LinkClass::StubStub);
        let mut absent: Vec<(NodeId, NodeId)> = Vec::new();
        let props = LinkProps::from_class(LinkClass::StubStub);
        let mut events = Vec::new();
        let mut time = self.interval;
        while time < duration {
            for _ in 0..self.changes_per_batch {
                let add = rng.gen_bool(0.5);
                if add && !absent.is_empty() {
                    let idx = rng.gen_range(0..absent.len());
                    let (a, b) = absent.swap_remove(idx);
                    present.push((a, b));
                    events.push(ChurnEvent {
                        time,
                        add: true,
                        a,
                        b,
                        props,
                    });
                } else if !present.is_empty() {
                    let idx = rng.gen_range(0..present.len());
                    let (a, b) = present.swap_remove(idx);
                    absent.push((a, b));
                    events.push(ChurnEvent {
                        time,
                        add: false,
                        a,
                        b,
                        props,
                    });
                }
            }
            time += self.interval;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_expected_batches_and_targets_stub_links() {
        let topo = Topology::transit_stub(2, 11);
        let model = ChurnModel::default();
        let events = model.schedule(&topo, 2.5); // batches at 0.5, 1.0, 1.5, 2.0
        assert_eq!(events.len(), 4 * model.changes_per_batch);
        // The first deletions must reference existing stub-stub links.
        for e in events.iter().filter(|e| !e.add).take(5) {
            assert!(topo.has_link(e.a, e.b));
            assert_eq!(topo.link(e.a, e.b).unwrap().class, LinkClass::StubStub);
        }
        // Times are multiples of the interval and within the duration.
        for e in &events {
            assert!(e.time < 2.5);
            let ratio = e.time / model.interval;
            assert!((ratio - ratio.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn schedule_is_consistent_when_replayed() {
        // Applying the schedule to a copy of the topology never deletes a
        // missing link or adds a duplicate one.
        let mut topo = Topology::transit_stub(1, 3);
        let events = ChurnModel {
            interval: 0.5,
            changes_per_batch: 10,
            seed: 9,
        }
        .schedule(&topo, 5.0);
        assert!(!events.is_empty());
        for e in &events {
            if e.add {
                assert!(!topo.has_link(e.a, e.b), "adding a link that exists");
                topo.add_link(e.a, e.b, e.props);
            } else {
                assert!(topo.has_link(e.a, e.b), "deleting a link that is absent");
                assert!(topo.remove_link(e.a, e.b));
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let topo = Topology::transit_stub(1, 3);
        let m1 = ChurnModel {
            seed: 5,
            ..Default::default()
        };
        let m2 = ChurnModel {
            seed: 5,
            ..Default::default()
        };
        let m3 = ChurnModel {
            seed: 6,
            ..Default::default()
        };
        assert_eq!(m1.schedule(&topo, 3.0), m2.schedule(&topo, 3.0));
        assert_ne!(m1.schedule(&topo, 3.0), m3.schedule(&topo, 3.0));
    }

    #[test]
    fn empty_duration_produces_no_events() {
        let topo = Topology::transit_stub(1, 3);
        let events = ChurnModel::default().schedule(&topo, 0.4);
        assert!(events.is_empty());
    }
}
