//! Distributed provenance querying (§5) and its optimizations (§6).
//!
//! A provenance query for a tuple `VID` stored at node `X` traverses the
//! distributed provenance graph: the `prov` entries at `X` name the rule
//! executions (`RID @ RLoc`) that derived the tuple; an `eRuleQuery` message
//! is sent to each `RLoc`, where the `ruleExec` entry lists the input tuple
//! vertices, which are resolved recursively (locally at `RLoc`, possibly
//! fanning out to further remote rule executions) until base tuples are
//! reached.  Annotations are combined on the way back with the
//! representation's `f_pRULE` / `f_pIDB` functions and returned along the
//! reverse path.
//!
//! The implementation mirrors the NDlog query rules of §5.1 (`edb1`, `c0`,
//! `idb1`–`idb4`, `rv1`–`rv4`) as an explicit message-driven state machine:
//! `eProvQuery` / `eRuleQuery` / `eProvResults` / `eRuleResults` tuples are
//! exchanged through the engine (so their bandwidth and latency are accounted
//! exactly like protocol traffic), and the per-node buffering that
//! `pResultTmp` performs is held in the session's pending-query tables.
//!
//! The machinery lives in the private `SessionCore`, one instance per *query session*
//! (a representation + traversal + caching configuration).  Sessions are
//! owned and driven by [`crate::deployment::Deployment`], whose unified event
//! loop interleaves query messages with protocol maintenance and churn on one
//! simulated clock.
//!
//! Optimizations:
//!
//! * **Result caching** (§6.1) — completed sub-results are cached at the node
//!   that computed them (tuple results keyed by VID, rule results keyed by
//!   RID); later queries reaching that node reuse them.  Caches are
//!   invalidated transitively when a base tuple changes.
//! * **Traversal orders** (§6.2) — BFS explores all alternative derivations
//!   at once; DFS explores them sequentially; DFS-with-threshold stops as
//!   soon as the partial result satisfies the query's threshold; random
//!   moonwalk explores a random subset of derivations.

use crate::repr::{Annotation, ProvenanceRepr};
use crate::storage::{prov_entries, rule_exec_entry};
use exspan_runtime::Engine;
use exspan_types::wire::{message_size, BandwidthSeries};
use exspan_types::{sha1_digest, Digest, NodeId, Rid, Tuple, Value, Vid};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// How the provenance graph is traversed (§6.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraversalOrder {
    /// Query all alternative derivations simultaneously.
    Bfs,
    /// Explore alternative derivations one at a time.
    Dfs,
    /// DFS that terminates as soon as the partial result exceeds the given
    /// threshold (e.g. "more than T derivations").
    DfsThreshold(i64),
    /// Explore at most `fanout` randomly chosen derivations per tuple.
    RandomMoonwalk {
        /// Number of derivations explored per tuple vertex.
        fanout: usize,
        /// PRNG seed.
        seed: u64,
    },
}

/// Short alias for [`TraversalOrder`], matching the builder-style query API
/// (`.traversal(Traversal::Bfs)`).
pub use TraversalOrder as Traversal;

/// The final state of one issued query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Node that issued the query.
    pub issuer: NodeId,
    /// Node at which the queried tuple resides.
    pub target_node: NodeId,
    /// Vertex identifier of the queried tuple.
    pub vid: Vid,
    /// Simulated time at which the query was issued.
    pub issued_at: f64,
    /// Simulated time at which the result reached the issuer (if completed).
    pub completed_at: Option<f64>,
    /// The resulting annotation (if completed).
    pub annotation: Option<Annotation>,
}

impl QueryOutcome {
    /// Query completion latency in seconds, if the query completed.
    pub fn latency(&self) -> Option<f64> {
        self.completed_at.map(|c| c - self.issued_at)
    }

    /// Whether the query has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CacheKey {
    Tuple(Vid),
    Rule(Rid),
}

#[derive(Debug, Clone)]
enum ReplyTo {
    /// The final requester of query `index`.
    Requester { node: NodeId, index: usize },
    /// A pending rule query waiting for one of its children.
    Rule { rqid: Digest },
}

#[derive(Debug)]
struct PendingTuple {
    vid: Vid,
    node: NodeId,
    reply: ReplyTo,
    /// Children (rule executions) not yet dispatched.
    remaining: Vec<(Rid, NodeId)>,
    /// Number of dispatched children whose results are still outstanding.
    outstanding: usize,
    results: Vec<Annotation>,
}

#[derive(Debug)]
struct PendingRule {
    rid: Rid,
    rule: String,
    rloc: NodeId,
    /// The tuple query waiting for this rule's result.
    parent_qid: Digest,
    /// Node at which the parent tuple query is buffering.
    parent_node: NodeId,
    /// Child tuple vertices not yet dispatched (resolved locally at rloc).
    remaining: Vec<Vid>,
    outstanding: usize,
    results: Vec<Annotation>,
}

/// How a caching session reacts when a base-tuple delta touches tuples its
/// cached results were computed from (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheMaintenance {
    /// Discard every (transitively) dependent cache entry; the next query
    /// recomputes it.  The paper's behavior and the default.
    #[default]
    Invalidate,
    /// Maintain dependent cache entries in place where the representation
    /// supports it: on base-tuple *deletion* the cached annotation is
    /// rewritten via [`crate::repr::ProvenanceRepr::remove_base`] (for
    /// polynomials, derivations using the deleted tuple are pruned; for
    /// BDDs, the tuple's variable is restricted to false).  Insertions —
    /// which can create derivations a cached annotation has never seen —
    /// and representations without a `remove_base` fall back to
    /// invalidation, so this mode is always sound.
    Incremental,
}

/// Per-session statistics: query traffic plus cache behavior.
///
/// (Previously named `QueryTrafficStats`; the old name remains as an alias.)
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Total bytes of query-protocol messages (requests + responses).
    pub bytes: u64,
    /// Total number of query-protocol messages.
    pub messages: u64,
    /// Number of cache hits.
    pub cache_hits: u64,
    /// Number of cache misses (sub-queries actually executed).
    pub cache_misses: u64,
    /// Number of cache entries invalidated.
    pub invalidations: u64,
    /// Number of cache entries maintained in place by
    /// [`CacheMaintenance::Incremental`] instead of being invalidated.
    pub cache_maintained: u64,
    /// Bytes the session's query-protocol messages would have saved under
    /// the dictionary wire codec (tuple contents dictionary-encoded;
    /// annotations charged unchanged).  Accounting only — the flat byte
    /// model in [`SessionStats::bytes`] is what every figure charts.
    pub compressed_bytes_saved: u64,
}

/// The pre-rename name of [`SessionStats`].
pub type QueryTrafficStats = SessionStats;

impl SessionStats {
    pub(crate) fn zero() -> Self {
        SessionStats {
            bytes: 0,
            messages: 0,
            cache_hits: 0,
            cache_misses: 0,
            invalidations: 0,
            cache_maintained: 0,
            compressed_bytes_saved: 0,
        }
    }

    pub(crate) fn merge_from(&mut self, other: &SessionStats) {
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.invalidations += other.invalidations;
        self.cache_maintained += other.cache_maintained;
        self.compressed_bytes_saved += other.compressed_bytes_saved;
    }
}

/// Mutable state shared by every session of one deployment, threaded through
/// the query machinery: the engine (message transport + clock), the global
/// outcome table, the digest→session routing map used to dispatch incoming
/// query messages, and the deployment-wide id counter that keeps message ids
/// unique across concurrent sessions.
pub(crate) struct Ctx<'a> {
    pub(crate) engine: &'a mut Engine,
    pub(crate) outcomes: &'a mut Vec<QueryOutcome>,
    pub(crate) route: &'a mut HashMap<Digest, usize>,
    pub(crate) next_id: &'a mut u64,
    /// Count of submitted-but-undelivered outcomes, decremented on delivery.
    pub(crate) incomplete: &'a mut usize,
}

/// The per-session state machine of the distributed query protocol: one
/// representation + traversal + caching configuration, its result cache, and
/// its pending-query tables.
pub(crate) struct SessionCore {
    session_id: usize,
    repr: Box<dyn ProvenanceRepr>,
    traversal: TraversalOrder,
    caching_enabled: bool,
    maintenance: CacheMaintenance,
    cache: HashMap<(NodeId, CacheKey), Annotation>,
    /// child digest -> cache entries that were computed from it.
    dependents: HashMap<Digest, HashSet<(NodeId, CacheKey)>>,
    pending_tuples: HashMap<Digest, PendingTuple>,
    pending_rules: HashMap<Digest, PendingRule>,
    /// Annotations travelling inside result messages, keyed by the message id.
    in_flight: HashMap<Digest, Annotation>,
    /// Scheduled query issuance (global outcome index -> issuer and target).
    scheduled: HashMap<i64, (NodeId, Tuple)>,
    series: BandwidthSeries,
    stats: QueryTrafficStats,
    rng: SmallRng,
}

impl SessionCore {
    pub(crate) fn new(
        session_id: usize,
        repr: Box<dyn ProvenanceRepr>,
        traversal: TraversalOrder,
        caching: bool,
        maintenance: CacheMaintenance,
    ) -> Self {
        SessionCore {
            session_id,
            repr,
            traversal,
            caching_enabled: caching,
            maintenance,
            cache: HashMap::new(),
            dependents: HashMap::new(),
            pending_tuples: HashMap::new(),
            pending_rules: HashMap::new(),
            in_flight: HashMap::new(),
            scheduled: HashMap::new(),
            series: BandwidthSeries::new(0.1),
            stats: QueryTrafficStats::zero(),
            rng: SmallRng::seed_from_u64(0x5EED),
        }
    }

    pub(crate) fn caching(&self) -> bool {
        self.caching_enabled
    }

    pub(crate) fn repr(&self) -> &dyn ProvenanceRepr {
        self.repr.as_ref()
    }

    pub(crate) fn stats(&self) -> &QueryTrafficStats {
        &self.stats
    }

    pub(crate) fn bandwidth_samples(&self) -> Vec<(f64, f64)> {
        self.series.samples()
    }

    pub(crate) fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Whether the session still has unresolved protocol state (queries
    /// waiting to be issued, buffered sub-queries, or results in flight).
    pub(crate) fn has_pending(&self) -> bool {
        !self.scheduled.is_empty()
            || !self.pending_tuples.is_empty()
            || !self.pending_rules.is_empty()
            || !self.in_flight.is_empty()
    }

    /// Drops all unresolved protocol state (used when the event queue has
    /// drained and the corresponding messages can never arrive).  The result
    /// cache is kept — completed results stay valid.
    pub(crate) fn clear_pending(&mut self) {
        self.scheduled.clear();
        self.pending_tuples.clear();
        self.pending_rules.clear();
        self.in_flight.clear();
    }

    fn fresh_id(&mut self, ctx: &mut Ctx, tag: &str) -> Digest {
        *ctx.next_id += 1;
        sha1_digest(format!("{tag}:{}", *ctx.next_id).as_bytes())
    }

    /// Registers a network-visible id in the dispatch route (idempotent);
    /// the entry lives until the id's terminal message is consumed.
    fn register(&self, ctx: &mut Ctx, id: Digest) {
        ctx.route.insert(id, self.session_id);
    }

    // ------------------------------------------------------------------
    // Query issuance
    // ------------------------------------------------------------------

    /// Issues a provenance query for `target` from `issuer` immediately.
    /// Returns the global outcome index.
    pub(crate) fn issue_now(&mut self, ctx: &mut Ctx, issuer: NodeId, target: &Tuple) -> usize {
        let index = ctx.outcomes.len();
        let issued_at = ctx.engine.now();
        ctx.outcomes.push(QueryOutcome {
            issuer,
            target_node: target.location,
            vid: target.vid(),
            issued_at,
            completed_at: None,
            annotation: None,
        });
        self.send_prov_query(ctx, issuer, target.location, target.vid(), index);
        index
    }

    /// Schedules a provenance query for `target` to be issued by `issuer` at
    /// simulated time `time`.  Returns the global outcome index.
    pub(crate) fn issue_at(
        &mut self,
        ctx: &mut Ctx,
        time: f64,
        issuer: NodeId,
        target: &Tuple,
    ) -> usize {
        let index = ctx.outcomes.len();
        ctx.outcomes.push(QueryOutcome {
            issuer,
            target_node: target.location,
            vid: target.vid(),
            issued_at: time,
            completed_at: None,
            annotation: None,
        });
        self.scheduled
            .insert(index as i64, (issuer, target.clone()));
        let issue = Tuple::new("eQueryIssue", issuer, vec![Value::Int(index as i64)]);
        ctx.engine.schedule_delta(time, issuer, issue, true);
        index
    }

    /// Handles one external (query-protocol) tuple addressed to this session.
    pub(crate) fn handle_external(
        &mut self,
        ctx: &mut Ctx,
        node: NodeId,
        tuple: &Tuple,
        time: f64,
    ) {
        match tuple.relation.as_str() {
            "eQueryIssue" => {
                let Ok(index) = tuple.values[0].as_int() else {
                    return;
                };
                if let Some((issuer, target)) = self.scheduled.remove(&index) {
                    ctx.outcomes[index as usize].issued_at = time;
                    self.send_prov_query(
                        ctx,
                        issuer,
                        target.location,
                        target.vid(),
                        index as usize,
                    );
                }
            }
            "eProvQuery" => {
                let (Ok(qid), Ok(vid), Ok(ret)) = (
                    tuple.values[0].as_digest(),
                    tuple.values[1].as_digest(),
                    tuple.values[2].as_node(),
                ) else {
                    return;
                };
                let index = tuple.values[3].as_int().unwrap_or(-1);
                let reply = ReplyTo::Requester {
                    node: ret,
                    index: index as usize,
                };
                self.start_tuple_query(ctx, node, qid, vid, reply, time);
            }
            "eRuleQuery" => {
                let (Ok(rqid), Ok(rid), Ok(origin)) = (
                    tuple.values[0].as_digest(),
                    tuple.values[1].as_digest(),
                    tuple.values[2].as_node(),
                ) else {
                    return;
                };
                let Ok(parent_qid) = tuple.values[3].as_digest() else {
                    return;
                };
                self.start_rule_query(ctx, node, rqid, rid, parent_qid, origin, time);
            }
            "eProvResults" => {
                let (Ok(qid), Ok(_vid)) =
                    (tuple.values[0].as_digest(), tuple.values[1].as_digest())
                else {
                    return;
                };
                let index = tuple.values[2].as_int().unwrap_or(-1);
                ctx.route.remove(&qid);
                if let Some(ann) = self.in_flight.remove(&qid) {
                    self.deliver_final(ctx, index as usize, ann, time);
                }
            }
            "eRuleResults" => {
                let Ok(rqid) = tuple.values[0].as_digest() else {
                    return;
                };
                ctx.route.remove(&rqid);
                if let Some(ann) = self.in_flight.remove(&rqid) {
                    let Ok(parent_qid) = tuple.values[1].as_digest() else {
                        return;
                    };
                    self.tuple_child_result(ctx, parent_qid, ann, time);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Message sending helpers (all traffic flows through the engine so it is
    // accounted in the simulator's byte counters as well as our own).
    // ------------------------------------------------------------------

    fn account(&mut self, engine: &Engine, tuple: &Tuple, extra: usize) {
        let bytes = message_size(std::slice::from_ref(tuple), extra) as u64;
        self.stats.bytes += bytes;
        self.stats.messages += 1;
        // Parallel compressed accounting: what the same message would cost
        // under the dictionary codec (annotation charged unchanged).  Pure
        // bookkeeping — `stats.bytes` stays the flat model.
        let compressed =
            exspan_types::compress::compressed_message_size(std::slice::from_ref(tuple), extra)
                as u64;
        self.stats.compressed_bytes_saved += bytes.saturating_sub(compressed);
        self.series.record(engine.now(), bytes as usize);
    }

    fn send_prov_query(
        &mut self,
        ctx: &mut Ctx,
        issuer: NodeId,
        target_node: NodeId,
        vid: Vid,
        index: usize,
    ) {
        let qid = self.fresh_id(ctx, "q");
        self.register(ctx, qid);
        let tuple = Tuple::new(
            "eProvQuery",
            target_node,
            vec![
                Value::from_digest(qid),
                Value::from_digest(vid),
                Value::Node(issuer),
                Value::Int(index as i64),
            ],
        );
        self.account(ctx.engine, &tuple, 0);
        ctx.engine.send_tuple(issuer, target_node, tuple, 0);
    }

    fn send_rule_query(
        &mut self,
        ctx: &mut Ctx,
        from: NodeId,
        rloc: NodeId,
        rqid: Digest,
        rid: Rid,
        parent_qid: Digest,
    ) {
        self.register(ctx, rqid);
        let tuple = Tuple::new(
            "eRuleQuery",
            rloc,
            vec![
                Value::from_digest(rqid),
                Value::from_digest(rid),
                Value::Node(from),
                Value::from_digest(parent_qid),
            ],
        );
        self.account(ctx.engine, &tuple, 0);
        ctx.engine.send_tuple(from, rloc, tuple, 0);
    }

    // ------------------------------------------------------------------
    // Tuple-vertex queries (the idb1–idb4 rules)
    // ------------------------------------------------------------------

    fn start_tuple_query(
        &mut self,
        ctx: &mut Ctx,
        node: NodeId,
        qid: Digest,
        vid: Vid,
        reply: ReplyTo,
        time: f64,
    ) {
        // Cache check.
        if self.caching_enabled {
            if let Some(ann) = self.cache.get(&(node, CacheKey::Tuple(vid))).cloned() {
                self.stats.cache_hits += 1;
                self.reply_tuple(ctx, node, qid, vid, ann, reply, time);
                return;
            }
        }
        self.stats.cache_misses += 1;

        let entries = prov_entries(ctx.engine, node, vid);
        let mut results = Vec::new();
        let mut children: Vec<(Rid, NodeId)> = Vec::new();
        for e in &entries {
            match e.rid {
                None => results.push(self.repr.p_edb(vid, node)),
                Some(rid) => children.push((rid, e.rloc)),
            }
        }

        // Random moonwalk: keep a random subset of the alternative derivations.
        if let TraversalOrder::RandomMoonwalk { fanout, .. } = self.traversal {
            while children.len() > fanout {
                let idx = self.rng.gen_range(0..children.len());
                children.swap_remove(idx);
            }
        }

        let mut pending = PendingTuple {
            vid,
            node,
            reply,
            remaining: children,
            outstanding: 0,
            results,
        };

        match self.traversal {
            TraversalOrder::Bfs | TraversalOrder::RandomMoonwalk { .. } => {
                // Dispatch all children at once.
                let children = std::mem::take(&mut pending.remaining);
                pending.outstanding = children.len();
                self.pending_tuples.insert(qid, pending);
                for (rid, rloc) in children {
                    self.dispatch_rule_child(ctx, node, qid, rid, rloc, time);
                }
            }
            TraversalOrder::Dfs | TraversalOrder::DfsThreshold(_) => {
                if let Some((rid, rloc)) = pending.remaining.pop() {
                    pending.outstanding = 1;
                    self.pending_tuples.insert(qid, pending);
                    self.dispatch_rule_child(ctx, node, qid, rid, rloc, time);
                } else {
                    self.pending_tuples.insert(qid, pending);
                }
            }
        }

        self.try_complete_tuple(ctx, qid, time);
    }

    fn dispatch_rule_child(
        &mut self,
        ctx: &mut Ctx,
        node: NodeId,
        qid: Digest,
        rid: Rid,
        rloc: NodeId,
        time: f64,
    ) {
        let rqid = self.fresh_id(ctx, "rq");
        if rloc == node {
            // Local rule execution vertex: no message needed.
            self.start_rule_query(ctx, rloc, rqid, rid, qid, node, time);
        } else {
            self.send_rule_query(ctx, node, rloc, rqid, rid, qid);
        }
    }

    fn tuple_child_result(&mut self, ctx: &mut Ctx, qid: Digest, ann: Annotation, time: f64) {
        let Some(pending) = self.pending_tuples.get_mut(&qid) else {
            return;
        };
        pending.results.push(ann);
        pending.outstanding = pending.outstanding.saturating_sub(1);

        // DFS / DFS-threshold: decide whether to stop or explore the next
        // alternative derivation.
        let next = match self.traversal {
            TraversalOrder::Dfs => {
                if pending.outstanding == 0 {
                    pending.remaining.pop()
                } else {
                    None
                }
            }
            TraversalOrder::DfsThreshold(threshold) => {
                let partial = self.repr.p_idb(pending.node, &pending.results);
                if self.repr.exceeds_threshold(&partial, threshold) {
                    pending.remaining.clear();
                    None
                } else if pending.outstanding == 0 {
                    pending.remaining.pop()
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((rid, rloc)) = next {
            let node = pending.node;
            pending.outstanding += 1;
            self.dispatch_rule_child(ctx, node, qid, rid, rloc, time);
            return;
        }
        self.try_complete_tuple(ctx, qid, time);
    }

    fn try_complete_tuple(&mut self, ctx: &mut Ctx, qid: Digest, time: f64) {
        let done = match self.pending_tuples.get(&qid) {
            Some(p) => p.outstanding == 0 && p.remaining.is_empty(),
            None => false,
        };
        if !done {
            return;
        }
        let pending = self.pending_tuples.remove(&qid).expect("checked above");
        let ann = self.repr.p_idb(pending.node, &pending.results);
        if self.caching_enabled {
            self.cache
                .insert((pending.node, CacheKey::Tuple(pending.vid)), ann.clone());
        }
        self.reply_tuple(
            ctx,
            pending.node,
            qid,
            pending.vid,
            ann,
            pending.reply,
            time,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn reply_tuple(
        &mut self,
        ctx: &mut Ctx,
        node: NodeId,
        qid: Digest,
        vid: Vid,
        ann: Annotation,
        reply: ReplyTo,
        time: f64,
    ) {
        match reply {
            ReplyTo::Requester { node: ret, index } => {
                if ret == node {
                    ctx.route.remove(&qid);
                    self.deliver_final(ctx, index, ann, time);
                } else {
                    self.register(ctx, qid);
                    let extra = self.repr.wire_size(&ann);
                    let tuple = Tuple::new(
                        "eProvResults",
                        ret,
                        vec![
                            Value::from_digest(qid),
                            Value::from_digest(vid),
                            Value::Int(index as i64),
                        ],
                    );
                    self.in_flight.insert(qid, ann);
                    self.account(ctx.engine, &tuple, extra);
                    ctx.engine.send_tuple(node, ret, tuple, extra);
                }
            }
            ReplyTo::Rule { rqid } => {
                // Children of a rule execution are resolved at the rule's own
                // node, so this reply never crosses the network.
                self.rule_child_result(ctx, rqid, ann, time);
            }
        }
    }

    fn deliver_final(&mut self, ctx: &mut Ctx, index: usize, ann: Annotation, time: f64) {
        if let Some(outcome) = ctx.outcomes.get_mut(index) {
            if outcome.completed_at.is_none() {
                *ctx.incomplete = ctx.incomplete.saturating_sub(1);
            }
            outcome.completed_at = Some(time);
            outcome.annotation = Some(ann);
        }
    }

    // ------------------------------------------------------------------
    // Rule-execution-vertex queries (the rv1–rv4 rules)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn start_rule_query(
        &mut self,
        ctx: &mut Ctx,
        rloc: NodeId,
        rqid: Digest,
        rid: Rid,
        parent_qid: Digest,
        parent_node: NodeId,
        time: f64,
    ) {
        if self.caching_enabled {
            if let Some(ann) = self.cache.get(&(rloc, CacheKey::Rule(rid))).cloned() {
                self.stats.cache_hits += 1;
                self.finish_rule_reply(ctx, rloc, rqid, rid, parent_qid, parent_node, ann, time);
                return;
            }
        }
        self.stats.cache_misses += 1;

        let Some(exec) = rule_exec_entry(ctx.engine, rloc, rid) else {
            // Dangling pointer (e.g. the entry was deleted concurrently):
            // answer with an empty combination.
            let ann = self.repr.p_rule("?", rloc, &[]);
            self.finish_rule_reply(ctx, rloc, rqid, rid, parent_qid, parent_node, ann, time);
            return;
        };

        let mut pending = PendingRule {
            rid,
            rule: exec.rule.clone(),
            rloc,
            parent_qid,
            parent_node,
            remaining: exec.vids.clone(),
            outstanding: 0,
            results: Vec::new(),
        };

        match self.traversal {
            TraversalOrder::Bfs | TraversalOrder::RandomMoonwalk { .. } => {
                let children = std::mem::take(&mut pending.remaining);
                pending.outstanding = children.len();
                self.pending_rules.insert(rqid, pending);
                for child_vid in children {
                    let sub_qid = self.fresh_id(ctx, "cq");
                    self.start_tuple_query(
                        ctx,
                        rloc,
                        sub_qid,
                        child_vid,
                        ReplyTo::Rule { rqid },
                        time,
                    );
                }
            }
            TraversalOrder::Dfs | TraversalOrder::DfsThreshold(_) => {
                if let Some(child_vid) = pending.remaining.pop() {
                    pending.outstanding = 1;
                    self.pending_rules.insert(rqid, pending);
                    let sub_qid = self.fresh_id(ctx, "cq");
                    self.start_tuple_query(
                        ctx,
                        rloc,
                        sub_qid,
                        child_vid,
                        ReplyTo::Rule { rqid },
                        time,
                    );
                } else {
                    self.pending_rules.insert(rqid, pending);
                }
            }
        }
        self.try_complete_rule(ctx, rqid, time);
    }

    fn rule_child_result(&mut self, ctx: &mut Ctx, rqid: Digest, ann: Annotation, time: f64) {
        let Some(pending) = self.pending_rules.get_mut(&rqid) else {
            return;
        };
        pending.results.push(ann);
        pending.outstanding = pending.outstanding.saturating_sub(1);
        if pending.outstanding == 0 {
            if let Some(child_vid) = pending.remaining.pop() {
                let rloc = pending.rloc;
                pending.outstanding = 1;
                let sub_qid = self.fresh_id(ctx, "cq");
                self.start_tuple_query(ctx, rloc, sub_qid, child_vid, ReplyTo::Rule { rqid }, time);
                return;
            }
        }
        self.try_complete_rule(ctx, rqid, time);
    }

    fn try_complete_rule(&mut self, ctx: &mut Ctx, rqid: Digest, time: f64) {
        let done = match self.pending_rules.get(&rqid) {
            Some(p) => p.outstanding == 0 && p.remaining.is_empty(),
            None => false,
        };
        if !done {
            return;
        }
        let pending = self.pending_rules.remove(&rqid).expect("checked above");
        let ann = self
            .repr
            .p_rule(&pending.rule, pending.rloc, &pending.results);
        if self.caching_enabled {
            self.cache
                .insert((pending.rloc, CacheKey::Rule(pending.rid)), ann.clone());
            // Record dependencies for invalidation: the rule result depends on
            // each of its children.
            let exec = rule_exec_entry(ctx.engine, pending.rloc, pending.rid);
            if let Some(exec) = exec {
                for child in exec.vids {
                    self.dependents
                        .entry(child)
                        .or_default()
                        .insert((pending.rloc, CacheKey::Rule(pending.rid)));
                }
            }
        }
        self.finish_rule_reply(
            ctx,
            pending.rloc,
            rqid,
            pending.rid,
            pending.parent_qid,
            pending.parent_node,
            ann,
            time,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_rule_reply(
        &mut self,
        ctx: &mut Ctx,
        rloc: NodeId,
        rqid: Digest,
        rid: Rid,
        parent_qid: Digest,
        parent_node: NodeId,
        ann: Annotation,
        time: f64,
    ) {
        if self.caching_enabled {
            // The parent tuple's cached result (once it completes at
            // parent_node) depends on this rule execution.
            if let Some(parent) = self.pending_tuples.get(&parent_qid) {
                self.dependents
                    .entry(rid)
                    .or_default()
                    .insert((parent.node, CacheKey::Tuple(parent.vid)));
            }
        }
        if parent_node == rloc {
            ctx.route.remove(&rqid);
            self.tuple_child_result(ctx, parent_qid, ann, time);
        } else {
            self.register(ctx, rqid);
            let extra = self.repr.wire_size(&ann);
            let tuple = Tuple::new(
                "eRuleResults",
                parent_node,
                vec![Value::from_digest(rqid), Value::from_digest(parent_qid)],
            );
            self.in_flight.insert(rqid, ann);
            self.account(ctx.engine, &tuple, extra);
            ctx.engine.send_tuple(rloc, parent_node, tuple, extra);
        }
    }

    // ------------------------------------------------------------------
    // Cache invalidation (§6.1)
    // ------------------------------------------------------------------

    /// Reacts to a base-tuple delta for `vid` according to the session's
    /// [`CacheMaintenance`] policy: invalidation (the default, and the
    /// fallback for insertions), or in-place maintenance of dependent cache
    /// entries on deletion.
    pub(crate) fn on_base_delta(&mut self, vid: Vid, insert: bool) {
        match self.maintenance {
            CacheMaintenance::Invalidate => self.invalidate(vid),
            // Insertion can create derivations a cached annotation has never
            // seen; no local rewrite can conjure them, so fall back.
            CacheMaintenance::Incremental if insert => self.invalidate(vid),
            CacheMaintenance::Incremental => self.maintain_delete(vid),
        }
    }

    /// Incremental maintenance for a base-tuple *deletion* (the
    /// [`CacheMaintenance::Incremental`] path): every cached annotation that
    /// transitively depends on `vid` — found through the recorded
    /// child-digest edges — is rewritten in place via
    /// [`ProvenanceRepr::remove_base`].  Cached annotations are expressed
    /// over base-tuple leaves, so pruning the deleted base from them yields
    /// exactly what invalidate-and-recompute would: the deletion removes
    /// precisely the derivations that used the tuple.  Entries the
    /// representation cannot rewrite (and the deleted tuple's own entries)
    /// are invalidated as before, keeping the mode sound for every
    /// representation.
    fn maintain_delete(&mut self, vid: Vid) {
        // The base tuple's own cached entries are gone for good.
        let direct: Vec<(NodeId, CacheKey)> = self
            .cache
            .keys()
            .filter(|(_, k)| {
                matches!(k, CacheKey::Tuple(v) if *v == vid)
                    || matches!(k, CacheKey::Rule(r) if *r == vid)
            })
            .cloned()
            .collect();
        for key in direct {
            self.cache.remove(&key);
            self.stats.invalidations += 1;
        }
        // Transitively collect dependent entries WITHOUT consuming the
        // dependency edges: maintained entries stay cached and must keep
        // reacting to future deltas.
        let mut affected: Vec<(NodeId, CacheKey)> = Vec::new();
        let mut frontier: Vec<Digest> = vec![vid];
        let mut seen: HashSet<Digest> = HashSet::new();
        while let Some(d) = frontier.pop() {
            if !seen.insert(d) {
                continue;
            }
            if let Some(parents) = self.dependents.get(&d) {
                let mut parents: Vec<(NodeId, CacheKey)> = parents.iter().cloned().collect();
                // The HashSet iteration order is nondeterministic; sort so
                // maintenance order (and hence stats) is reproducible.
                parents.sort();
                for (node, key) in parents {
                    let parent_digest = match key {
                        CacheKey::Tuple(v) => v,
                        CacheKey::Rule(r) => r,
                    };
                    affected.push((node, key));
                    frontier.push(parent_digest);
                }
            }
        }
        for entry in affected {
            let Some(ann) = self.cache.get(&entry) else {
                continue;
            };
            match self.repr.remove_base(ann, vid) {
                Some(maintained) => {
                    self.cache.insert(entry, maintained);
                    self.stats.cache_maintained += 1;
                }
                None => {
                    self.cache.remove(&entry);
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Invalidates every cached result that (transitively) depends on the
    /// tuple vertex `vid` — called when a base tuple is inserted or deleted.
    pub(crate) fn invalidate(&mut self, vid: Vid) {
        let mut frontier: Vec<Digest> = vec![vid];
        let mut seen: HashSet<Digest> = HashSet::new();
        while let Some(d) = frontier.pop() {
            if !seen.insert(d) {
                continue;
            }
            // Remove direct cache entries for the digest itself.
            let direct: Vec<(NodeId, CacheKey)> = self
                .cache
                .keys()
                .filter(|(_, k)| {
                    matches!(k, CacheKey::Tuple(v) if *v == d)
                        || matches!(k, CacheKey::Rule(r) if *r == d)
                })
                .cloned()
                .collect();
            for key in direct {
                self.cache.remove(&key);
                self.stats.invalidations += 1;
            }
            // Propagate to dependents.
            if let Some(parents) = self.dependents.remove(&d) {
                for (node, key) in parents {
                    if self.cache.remove(&(node, key)).is_some() {
                        self.stats.invalidations += 1;
                    }
                    let parent_digest = match key {
                        CacheKey::Tuple(v) => v,
                        CacheKey::Rule(r) => r,
                    };
                    frontier.push(parent_digest);
                }
            }
        }
    }
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field("traversal", &self.traversal)
            .field("caching_enabled", &self.caching_enabled)
            .field("cache_entries", &self.cache.len())
            .finish()
    }
}

/// Why polling a query result failed.
///
/// Returned by [`crate::deployment::Deployment::completed_outcome`] — the
/// fallible counterpart of the `Option`-returning
/// [`crate::deployment::Deployment::outcome`] — and wrapped by the top-level
/// `exspan::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The handle's index does not name a query of this deployment.
    UnknownHandle {
        /// The handle's global issue-order index.
        index: usize,
    },
    /// The query has not completed yet — advance the deployment's clock and
    /// poll again.  Queries whose protocol messages the simulator dropped
    /// (e.g. churn partitioned the issuer from the target) stay in this
    /// state permanently and honestly.
    NotComplete {
        /// The handle's global issue-order index.
        index: usize,
    },
    /// The query's session is not backed by the requested concrete
    /// representation (e.g. asking for BDD trust evaluation on a
    /// polynomial session).
    ReprMismatch {
        /// Name of the representation the session actually uses.
        actual: &'static str,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownHandle { index } => {
                write!(
                    f,
                    "query handle #{index} does not belong to this deployment"
                )
            }
            QueryError::NotComplete { index } => {
                write!(f, "query #{index} has not completed yet")
            }
            QueryError::ReprMismatch { actual } => {
                write!(f, "query session uses the {actual} representation")
            }
        }
    }
}

impl std::error::Error for QueryError {}
