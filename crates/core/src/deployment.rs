//! The first-class ExSPAN deployment API.
//!
//! ExSPAN's pitch (paper §1) is that provenance *maintenance* and on-demand
//! distributed *querying* are one system sharing one network.  This module is
//! the public surface that matches that claim, decomposed by user-visible
//! capability rather than by internal layer:
//!
//! * **Deploy** — [`Exspan::builder`] validates a program / topology /
//!   provenance-mode combination up front (returning a [`BuildError`] instead
//!   of panicking later) and produces a [`Deployment`].
//! * **Mutate** — base tuples and topology churn are injected through typed
//!   methods ([`Deployment::insert_base`], [`Deployment::schedule_churn_event`],
//!   …); cached query results that depend on a changed base tuple are
//!   invalidated transitively and automatically (§6.1).
//! * **Query** — [`Deployment::query`] starts a builder-style query
//!   (`.issuer(n).repr(Repr::Polynomial).traversal(Traversal::Bfs)
//!   .cached(true).submit()`) returning a lightweight [`QueryHandle`].
//!   Queries with equal configuration share a typed *session* (one result
//!   cache, one representation instance) inspectable through
//!   [`Deployment::session`].
//! * **Measure / advance** — [`Deployment::run_until`] and
//!   [`Deployment::run_to_fixpoint`] advance protocol maintenance, churn
//!   deltas *and* in-flight queries on one simulated clock (the engine's
//!   [`exspan_runtime::ExternalSink`] path), so query traffic overlaps
//!   ongoing maintenance exactly as Figures 9–12 of the paper intend.
//!
//! ```
//! use exspan_core::{Exspan, ProvenanceMode, Repr, Traversal};
//! use exspan_ndlog::programs;
//! use exspan_netsim::Topology;
//! use exspan_types::{Tuple, Value};
//!
//! let mut deployment = Exspan::builder()
//!     .program(programs::mincost())
//!     .topology(Topology::paper_example())
//!     .mode(ProvenanceMode::Reference)
//!     .shards(1)
//!     .build()
//!     .expect("valid deployment");
//! deployment.run_to_fixpoint();
//!
//! let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);
//! let outcome = deployment
//!     .query(&target)
//!     .issuer(3)
//!     .repr(Repr::Polynomial)
//!     .traversal(Traversal::Bfs)
//!     .execute();
//! assert_eq!(outcome.annotation.unwrap().as_expr().unwrap().num_derivations(), 2);
//! ```

use crate::mode::ProvenanceMode;
use crate::query::{
    CacheMaintenance, Ctx, QueryError, QueryOutcome, QueryTrafficStats, SessionCore, TraversalOrder,
};
use crate::repr::{Annotation, Repr};
use crate::rewrite::{provenance_rewrite, RewriteOptions};
use crate::value_policy::ValueBddPolicy;
use exspan_ndlog::ast::Program;
use exspan_ndlog::diag::{Diagnostic, Diagnostics, Severity};
use exspan_netsim::{ChurnEvent, LinkProps, Topology};
use exspan_runtime::{
    Engine, EngineConfig, Executor, ExternalSink, FixpointStats, ShardConfig, SharedPolicy,
    SimClock,
};
use exspan_store::{DiskBackend, Durability, StorageBackend, StorageStats, StoreConfig};
use exspan_types::{Digest, NodeId, Tuple, Value, Vid};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Entry point for building a [`Deployment`].
///
/// `Exspan::builder()` is the canonical spelling; [`Deployment::builder`] is
/// an alias.
#[derive(Debug, Clone, Copy)]
pub struct Exspan;

impl Exspan {
    /// Starts a [`DeploymentBuilder`] with default configuration
    /// (reference-based provenance, one shard, links auto-seeded).
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }
}

/// Why a [`DeploymentBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No NDlog program was supplied.
    MissingProgram,
    /// No topology was supplied.
    MissingTopology,
    /// The topology has no nodes.
    EmptyTopology,
    /// The program failed static validation; the payload lists every problem.
    InvalidProgram(Vec<String>),
    /// `shards(0)` was requested.
    ZeroShards,
    /// [`ProvenanceMode::Centralized`] names a server outside the topology.
    CentralizedServerOutOfRange {
        /// The requested server node.
        server: NodeId,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// A multi-shard deployment needs strictly positive link latencies (the
    /// parallel runtime's lookahead would otherwise be zero).
    NonPositiveLinkLatency,
    /// Opening or recovering the persistent store failed (I/O error,
    /// corruption past the committed prefix, or a store whose topology does
    /// not fit the configured one).
    Storage(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingProgram => write!(f, "no NDlog program supplied"),
            BuildError::MissingTopology => write!(f, "no topology supplied"),
            BuildError::EmptyTopology => write!(f, "the topology has no nodes"),
            BuildError::InvalidProgram(errors) => {
                write!(f, "invalid NDlog program: {}", errors.join("; "))
            }
            BuildError::ZeroShards => write!(f, "a deployment needs at least one shard"),
            BuildError::CentralizedServerOutOfRange { server, nodes } => write!(
                f,
                "centralized provenance server n{server} is outside the {nodes}-node topology"
            ),
            BuildError::NonPositiveLinkLatency => write!(
                f,
                "multi-shard deployments need strictly positive link latencies"
            ),
            BuildError::Storage(msg) => write!(f, "persistent store: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Non-fatal findings (warnings and notes) produced by the static analysis
/// a successful [`DeploymentBuilder::build`] ran over the program.  Errors
/// never appear here — they fail the build as
/// [`BuildError::InvalidProgram`].
#[derive(Debug, Clone, Default)]
pub struct BuildWarnings {
    diagnostics: Diagnostics,
}

impl BuildWarnings {
    /// Whether the analysis produced no warnings or notes at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of retained diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Iterates over the diagnostics, warnings before notes (the stable
    /// order of [`Diagnostics::sort`]).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Warning-severity diagnostics only (the ones `ndlog-lint
    /// --deny-warnings` would reject).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.of_severity(Severity::Warning)
    }

    /// Renders every diagnostic, one block per finding.
    pub fn render(&self) -> String {
        self.diagnostics.render(None)
    }
}

/// Builder for a [`Deployment`]; obtained from [`Exspan::builder`].
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    program: Option<Program>,
    topology: Option<Topology>,
    mode: ProvenanceMode,
    shards: usize,
    max_steps: u64,
    seed_links: bool,
    data_dir: Option<PathBuf>,
    durability: Durability,
    snapshot_every_bytes: u64,
    memory_budget_rows: Option<usize>,
    track_compressed: bool,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        let store_defaults = StoreConfig::default();
        DeploymentBuilder {
            program: None,
            topology: None,
            mode: ProvenanceMode::Reference,
            shards: 1,
            max_steps: 200_000_000,
            seed_links: true,
            data_dir: None,
            durability: store_defaults.durability,
            snapshot_every_bytes: store_defaults.snapshot_wal_bytes,
            memory_budget_rows: None,
            track_compressed: false,
        }
    }
}

impl DeploymentBuilder {
    /// The NDlog protocol to execute (required).
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self
    }

    /// The network topology to deploy on (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Provenance mode (default: [`ProvenanceMode::Reference`]).
    pub fn mode(mut self, mode: ProvenanceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of worker shards executing the protocol (default 1).  Results
    /// are bit-identical for every shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Safety cap on processed events per `run_*` call.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Whether `build` seeds both directions of every topology link as `link`
    /// base tuples (default `true` — the paper gives every node a priori
    /// knowledge of its local links).
    pub fn seed_links(mut self, seed: bool) -> Self {
        self.seed_links = seed;
        self
    }

    /// Enables log-structured persistence in `path`.  A fresh directory
    /// starts an empty durable store; an existing one is **recovered**: the
    /// latest snapshot is loaded, the committed WAL tail replayed, and the
    /// deployment resumes from the last committed barrier (link seeding is
    /// skipped — the recovered state already contains the links).  Check
    /// [`Deployment::recovered_from_store`] to distinguish the two.
    pub fn data_dir(mut self, path: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(path.into());
        self
    }

    /// WAL fsync cadence (default [`Durability::Barrier`]; only meaningful
    /// with [`DeploymentBuilder::data_dir`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// How many WAL bytes may accumulate before a snapshot is taken and the
    /// log truncated (only meaningful with [`DeploymentBuilder::data_dir`]).
    pub fn snapshot_every_bytes(mut self, bytes: u64) -> Self {
        self.snapshot_every_bytes = bytes;
        self
    }

    /// Additionally account every transmitted message under the dictionary
    /// wire codec (default `false`).  The flat byte model behind the
    /// existing figures is untouched; compressed totals surface through
    /// [`Deployment::avg_comm_mb_compressed`].
    pub fn track_compressed(mut self, on: bool) -> Self {
        self.track_compressed = on;
        self
    }

    /// In-memory row budget: when the stored rows exceed it at a barrier
    /// boundary, the largest tables are spilled to disk in snapshot form
    /// and transparently faulted back on access (requires
    /// [`DeploymentBuilder::data_dir`]).
    pub fn memory_budget_rows(mut self, rows: usize) -> Self {
        self.memory_budget_rows = Some(rows);
        self
    }

    /// Validates the configuration and builds the [`Deployment`].
    pub fn build(self) -> Result<Deployment, BuildError> {
        let program = self.program.ok_or(BuildError::MissingProgram)?;
        let topology = self.topology.ok_or(BuildError::MissingTopology)?;
        if topology.num_nodes() == 0 {
            return Err(BuildError::EmptyTopology);
        }
        if self.shards == 0 {
            return Err(BuildError::ZeroShards);
        }
        if let ProvenanceMode::Centralized { server } = self.mode {
            if server as usize >= topology.num_nodes() {
                return Err(BuildError::CentralizedServerOutOfRange {
                    server,
                    nodes: topology.num_nodes(),
                });
            }
        }
        if self.shards > 1 {
            if let Some(latency) = topology.min_link_latency() {
                if latency <= 0.0 {
                    return Err(BuildError::NonPositiveLinkLatency);
                }
            }
        }
        // Full static analysis (validation, type inference, safety,
        // liveness, distribution).  Errors refuse the deployment; warnings
        // and notes are retained on the deployment for inspection via
        // [`Deployment::build_warnings`].
        let analysis = exspan_ndlog::analyze(&program);
        if analysis.has_errors() {
            return Err(BuildError::InvalidProgram(
                analysis
                    .errors()
                    .map(std::string::ToString::to_string)
                    .collect(),
            ));
        }
        let warnings = BuildWarnings {
            diagnostics: analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity < Severity::Error)
                .cloned()
                .collect(),
        };

        let mut engine_config = EngineConfig {
            aggregate_provenance: false,
            max_steps: self.max_steps,
            shards: ShardConfig::with_shards(self.shards),
            track_compressed: self.track_compressed,
            ..EngineConfig::default()
        };
        let executed = match self.mode {
            ProvenanceMode::None | ProvenanceMode::ValueBdd => program.clone(),
            ProvenanceMode::Reference => {
                engine_config.aggregate_provenance = true;
                provenance_rewrite(&program, RewriteOptions::default())
            }
            ProvenanceMode::Centralized { server } => {
                engine_config.aggregate_provenance = true;
                provenance_rewrite(
                    &program,
                    RewriteOptions {
                        centralize_at: Some(server),
                    },
                )
            }
        };
        // The provenance rewrite must preserve the analysis verdict: a
        // program accepted above must stay error-free after rewriting.  This
        // is a rewrite invariant, but it is cheap to check and a violation
        // would otherwise surface as silent derivation loss at runtime.
        let rewritten = exspan_ndlog::analyze(&executed);
        if rewritten.has_errors() {
            return Err(BuildError::InvalidProgram(
                rewritten
                    .errors()
                    .map(|e| format!("provenance rewrite: {e}"))
                    .collect(),
            ));
        }

        let mut engine = Engine::new(executed, topology, engine_config);
        let mut value_policy = None;
        if self.mode == ProvenanceMode::ValueBdd {
            let shared = Arc::new(Mutex::new(ValueBddPolicy::new()));
            value_policy = Some(Arc::clone(&shared));
            engine.set_annotation_policy(shared as SharedPolicy);
        }

        // Open the persistent store (if configured) and recover whatever
        // committed state it holds *before* journaling is attached, so the
        // replayed operations are not re-journaled.
        let mut recovered = false;
        if let Some(dir) = &self.data_dir {
            let store_config = StoreConfig {
                durability: self.durability,
                snapshot_wal_bytes: self.snapshot_every_bytes,
                spill_budget_rows: self.memory_budget_rows,
            };
            let (backend, state) = DiskBackend::open(dir, store_config)
                .map_err(|e| BuildError::Storage(e.to_string()))?;
            let mut start_seq = 0;
            if let Some(state) = state {
                if let Some(snap) = &state.snapshot {
                    let nodes = engine.topology().num_nodes() as u32;
                    if snap.node_count != nodes {
                        return Err(BuildError::Storage(format!(
                            "store at {} was written for a {}-node topology, \
                             but the configured topology has {nodes} nodes",
                            dir.display(),
                            snap.node_count
                        )));
                    }
                    engine.restore_links(&snap.links);
                    for dump in &snap.tables {
                        for (tuple, count) in &dump.rows {
                            engine.restore_table_row(dump.node, Arc::clone(tuple), *count);
                        }
                    }
                    for entry in &snap.agg {
                        engine.restore_agg(entry);
                    }
                }
                for batch in &state.batches {
                    for op in &batch.ops {
                        engine.apply_wal_op(op);
                    }
                }
                let (seq, time_bits) = state.watermark();
                start_seq = seq;
                engine.restore_clock(f64::from_bits(time_bits));
                recovered = true;
            }
            let spill = self.memory_budget_rows.map(|rows| {
                (
                    backend.spill_dir().expect("disk backend").to_path_buf(),
                    rows,
                )
            });
            engine.attach_storage(Box::new(backend), start_seq, spill);
        }

        let mut deployment = Deployment {
            engine,
            mode: self.mode,
            value_policy,
            program_name: program.name.clone(),
            warnings,
            fabric: QueryFabric::new(),
            pending_invalidations: BTreeMap::new(),
            recovered,
        };
        // A recovered store already contains the link tuples (and everything
        // derived from them); re-seeding would double their derivations.
        if self.seed_links && !recovered {
            deployment.seed_links();
        }
        Ok(deployment)
    }
}

/// All query-session state of one deployment: the sessions themselves plus
/// the deployment-global outcome table, the digest→session routing map used
/// to dispatch incoming query-protocol messages, and the id counter that
/// keeps message ids unique across concurrent sessions.
struct QueryFabric {
    sessions: Vec<SessionCore>,
    specs: Vec<(Repr, TraversalOrder, bool, CacheMaintenance)>,
    outcomes: Vec<QueryOutcome>,
    /// `session_of[outcome index]` = owning session.
    session_of: Vec<usize>,
    route: HashMap<Digest, usize>,
    next_id: u64,
    /// Number of submitted queries whose outcome has not been delivered (and
    /// not been written off as orphaned by [`QueryFabric::reap_orphans`]).
    incomplete: usize,
}

impl QueryFabric {
    fn new() -> Self {
        QueryFabric {
            sessions: Vec::new(),
            specs: Vec::new(),
            outcomes: Vec::new(),
            session_of: Vec::new(),
            route: HashMap::new(),
            next_id: 0,
            incomplete: 0,
        }
    }

    /// Finds the session matching the configuration, creating it on demand.
    fn session_for(
        &mut self,
        repr: &Repr,
        traversal: TraversalOrder,
        cached: bool,
        maintenance: CacheMaintenance,
    ) -> usize {
        if let Some(i) = self.specs.iter().position(|(r, t, c, m)| {
            r == repr && *t == traversal && *c == cached && *m == maintenance
        }) {
            return i;
        }
        let id = self.sessions.len();
        self.sessions.push(SessionCore::new(
            id,
            repr.instantiate(),
            traversal,
            cached,
            maintenance,
        ));
        self.specs
            .push((repr.clone(), traversal, cached, maintenance));
        id
    }

    /// Whether any query activity is pending (incomplete outcomes, scheduled
    /// issuances, or protocol messages in flight).  When idle, the deployment
    /// can use the engine's bulk (parallelizable) run path.
    fn active(&self) -> bool {
        self.incomplete > 0
            || self
                .sessions
                .iter()
                .any(super::query::SessionCore::has_pending)
    }

    /// Whether any session caches query results (and could therefore go
    /// stale when a scheduled base-tuple delta is applied).
    fn any_caching(&self) -> bool {
        self.sessions.iter().any(super::query::SessionCore::caching)
    }

    /// Writes off query state that can no longer make progress.  Called when
    /// the engine's event queue has fully drained: at that point any still
    /// unresolved sub-query or in-flight result belongs to a message the
    /// simulator dropped (e.g. churn partitioned the issuer from the target),
    /// and keeping it would pin [`QueryFabric::active`] — and with it the
    /// slower single-stepped run path — forever.  Orphaned outcomes keep
    /// `completed_at: None`, honestly reporting that no result arrived.
    fn reap_orphans(&mut self) {
        self.incomplete = 0;
        self.route.clear();
        for session in &mut self.sessions {
            session.clear_pending();
        }
    }

    /// Routes one surfaced external tuple to the session that owns it.
    fn dispatch(&mut self, engine: &mut Engine, node: NodeId, tuple: &Tuple, time: f64) {
        let sid = match tuple.relation.as_str() {
            "eQueryIssue" => tuple
                .values
                .first()
                .and_then(|v| v.as_int().ok())
                .and_then(|i| self.session_of.get(i as usize).copied()),
            "eProvQuery" | "eRuleQuery" | "eProvResults" | "eRuleResults" => tuple
                .values
                .first()
                .and_then(|v| v.as_digest().ok())
                .and_then(|d| self.route.get(&d).copied()),
            _ => None,
        };
        let Some(sid) = sid else { return };
        let QueryFabric {
            sessions,
            outcomes,
            route,
            next_id,
            incomplete,
            ..
        } = self;
        let mut ctx = Ctx {
            engine,
            outcomes,
            route,
            next_id,
            incomplete,
        };
        sessions[sid].handle_external(&mut ctx, node, tuple, time);
    }

    fn invalidate(&mut self, vid: Vid) {
        for session in &mut self.sessions {
            if session.caching() {
                session.invalidate(vid);
            }
        }
    }

    /// Routes a base-tuple delta to every caching session, which reacts per
    /// its [`CacheMaintenance`] policy (invalidate, or maintain in place).
    fn on_base_delta(&mut self, vid: Vid, insert: bool) {
        for session in &mut self.sessions {
            if session.caching() {
                session.on_base_delta(vid, insert);
            }
        }
    }
}

/// Adapter handing the engine's surfaced externals to the query fabric.
struct FabricSink<'a> {
    fabric: &'a mut QueryFabric,
}

impl ExternalSink for FabricSink<'_> {
    fn on_external(
        &mut self,
        engine: &mut Engine,
        node: NodeId,
        tuple: Arc<Tuple>,
        time: f64,
        _insert: bool,
    ) {
        self.fabric.dispatch(engine, node, &tuple, time);
    }
}

/// A running ExSPAN deployment: a protocol, a topology, a provenance mode,
/// and the query sessions issued against it — all advancing on one simulated
/// clock.  Built with [`Exspan::builder`].
pub struct Deployment {
    engine: Engine,
    mode: ProvenanceMode,
    value_policy: Option<Arc<Mutex<ValueBddPolicy>>>,
    program_name: String,
    warnings: BuildWarnings,
    fabric: QueryFabric,
    /// Cache invalidations for base-tuple deltas scheduled in the simulated
    /// future, keyed by the delta's application time (as `f64::to_bits`, so
    /// the map orders by time).  [`Deployment::run_until`] applies each batch
    /// when the clock passes its time — invalidating at *scheduling* time
    /// would let queries completing before the delta cache results that then
    /// silently go stale.
    pending_invalidations: BTreeMap<u64, Vec<(Vid, bool)>>,
    /// True when [`DeploymentBuilder::data_dir`] pointed at an existing store
    /// and the deployment booted from its recovered state instead of seeding.
    recovered: bool,
}

/// Lightweight, copyable reference to one submitted query.  Poll the result
/// with [`Deployment::outcome`]; inspect the owning session with
/// [`Deployment::session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHandle {
    index: usize,
    session: usize,
}

impl QueryHandle {
    /// Global issue-order index of this query within its deployment.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Read-only view of one typed query session (a representation + traversal +
/// caching configuration and its shared result cache).
pub struct QuerySession<'a> {
    core: &'a SessionCore,
    spec: &'a (Repr, TraversalOrder, bool, CacheMaintenance),
}

impl QuerySession<'_> {
    /// The representation queries of this session use.
    pub fn repr(&self) -> &Repr {
        &self.spec.0
    }

    /// The traversal order queries of this session use.
    pub fn traversal(&self) -> TraversalOrder {
        self.spec.1
    }

    /// Whether result caching (§6.1) is enabled.
    pub fn cached(&self) -> bool {
        self.spec.2
    }

    /// How the session's cache reacts to base-tuple deltas.
    pub fn maintenance(&self) -> CacheMaintenance {
        self.spec.3
    }

    /// Traffic statistics of this session's query protocol messages.
    pub fn stats(&self) -> &QueryTrafficStats {
        self.core.stats()
    }

    /// Bandwidth time-series of this session's query traffic (bytes/second).
    pub fn bandwidth_samples(&self) -> Vec<(f64, f64)> {
        self.core.bandwidth_samples()
    }

    /// Number of cache entries currently held across all nodes.
    pub fn cache_entries(&self) -> usize {
        self.core.cache_entries()
    }
}

/// Builder for one provenance query; obtained from [`Deployment::query`].
#[must_use = "call .submit() (or .execute()) to issue the query"]
pub struct QueryBuilder<'a> {
    deployment: &'a mut Deployment,
    target: Tuple,
    issuer: NodeId,
    repr: Repr,
    traversal: TraversalOrder,
    cached: bool,
    maintenance: CacheMaintenance,
    at: Option<f64>,
}

impl<'a> QueryBuilder<'a> {
    /// Node issuing the query (default: the target tuple's own location).
    pub fn issuer(mut self, issuer: NodeId) -> Self {
        self.issuer = issuer;
        self
    }

    /// Representation of the result (default: [`Repr::Polynomial`]).
    pub fn repr(mut self, repr: Repr) -> Self {
        self.repr = repr;
        self
    }

    /// Traversal order (default: [`TraversalOrder::Bfs`]).
    pub fn traversal(mut self, traversal: TraversalOrder) -> Self {
        self.traversal = traversal;
        self
    }

    /// Enables result caching (§6.1) for this query's session.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// How the session's cache reacts to base-tuple deltas (default
    /// [`CacheMaintenance::Invalidate`]).  Only meaningful with
    /// [`QueryBuilder::cached`]; sessions with different maintenance
    /// policies are distinct.
    pub fn maintenance(mut self, maintenance: CacheMaintenance) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// Schedules issuance at an absolute simulated time instead of now.
    pub fn at(mut self, time: f64) -> Self {
        self.at = Some(time);
        self
    }

    /// Submits the query and returns its handle.  The query *progresses*
    /// whenever the deployment's clock advances ([`Deployment::run_until`] /
    /// [`Deployment::run_to_fixpoint`]); poll [`Deployment::outcome`] for the
    /// result.
    pub fn submit(self) -> QueryHandle {
        let QueryBuilder {
            deployment,
            target,
            issuer,
            repr,
            traversal,
            cached,
            maintenance,
            at,
        } = self;
        deployment.submit_query(target, issuer, repr, traversal, cached, maintenance, at)
    }

    /// Convenience: submits the query, runs the deployment to fixpoint, and
    /// returns the completed outcome.
    pub fn execute(self) -> QueryOutcome {
        let QueryBuilder {
            deployment,
            target,
            issuer,
            repr,
            traversal,
            cached,
            maintenance,
            at,
        } = self;
        let handle =
            deployment.submit_query(target, issuer, repr, traversal, cached, maintenance, at);
        deployment.run_to_fixpoint();
        deployment
            .outcome(handle)
            .cloned()
            .expect("handle returned by submit_query is valid")
    }
}

impl Deployment {
    /// Alias for [`Exspan::builder`].
    pub fn builder() -> DeploymentBuilder {
        Exspan::builder()
    }

    /// The provenance mode in use.
    pub fn mode(&self) -> ProvenanceMode {
        self.mode
    }

    /// The name of the protocol program being executed.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// Warnings and notes the build-time static analysis produced for the
    /// program (errors would have failed [`DeploymentBuilder::build`]).
    pub fn build_warnings(&self) -> &BuildWarnings {
        &self.warnings
    }

    /// Read-only access to the underlying engine (tables, traffic counters),
    /// e.g. for the typed `prov`/`ruleExec` accessors of [`crate::storage`].
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.engine.topology()
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.engine.now()
    }

    /// Number of shards executing this deployment.
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u16 {
        self.engine.shard_of(node)
    }

    /// Visible tuples of `relation` at `node`, as shared handles (no deep
    /// copy).
    pub fn tuples_shared(&self, node: NodeId, relation: &str) -> Vec<Arc<Tuple>> {
        self.engine.tuples_shared(node, relation)
    }

    /// Visible tuples of `relation` across all nodes in canonical order, as
    /// shared handles (no deep copy).
    pub fn tuples_everywhere_shared(&self, relation: &str) -> Vec<Arc<Tuple>> {
        self.engine.tuples_everywhere_shared(relation)
    }

    /// Derivation count of an exact tuple at its own location.
    pub fn derivation_count(&self, tuple: &Tuple) -> usize {
        self.engine.derivation_count(tuple)
    }

    // ------------------------------------------------------------------
    // Persistent storage
    // ------------------------------------------------------------------

    /// True when this deployment booted from an existing persistent store
    /// ([`DeploymentBuilder::data_dir`]) instead of seeding from scratch.
    pub fn recovered_from_store(&self) -> bool {
        self.recovered
    }

    /// Counters of the storage backend (WAL batches/bytes, snapshots, spill
    /// and fault activity).  All-zero for the in-memory default.
    pub fn storage_stats(&self) -> StorageStats {
        self.engine.storage_stats()
    }

    /// Flushes any pending journal entries and forces a snapshot (persistent
    /// deployments only; a no-op for the in-memory default).  Call before a
    /// graceful shutdown to make restart recovery snapshot-only.
    pub fn checkpoint(&mut self) {
        self.engine.checkpoint();
    }

    /// Hex digest of the canonical snapshot encoding of the current logical
    /// state.  Equal digests mean byte-identical persistent state; the digest
    /// is independent of shard count, spill state, and execution history.
    pub fn state_digest(&self) -> String {
        self.engine.state_digest().to_hex()
    }

    // ------------------------------------------------------------------
    // Topology and base-tuple management
    // ------------------------------------------------------------------

    /// Creates the `link(@a,b,cost)` tuple for one direction of a link.
    pub fn link_tuple(a: NodeId, b: NodeId, cost: i64) -> Tuple {
        Tuple::new("link", a, vec![Value::Node(b), Value::Int(cost)])
    }

    /// Base-tuple VIDs affected by a churn event (the VIDs whose cached query
    /// results the deployment invalidates when the event is applied).
    pub fn churn_event_vids(event: &ChurnEvent) -> Vec<Vid> {
        vec![
            Self::link_tuple(event.a, event.b, event.props.cost).vid(),
            Self::link_tuple(event.b, event.a, event.props.cost).vid(),
        ]
    }

    /// Inserts both directions of every topology link as `link` base tuples.
    /// Called by `build` unless [`DeploymentBuilder::seed_links`] disabled it.
    pub fn seed_links(&mut self) {
        let links: Vec<(NodeId, NodeId, i64)> = self
            .engine
            .topology()
            .links()
            .map(|(a, b, p)| (a, b, p.cost))
            .collect();
        for (a, b, cost) in links {
            self.insert_base(a, Self::link_tuple(a, b, cost));
            self.insert_base(b, Self::link_tuple(b, a, cost));
        }
    }

    /// Inserts a base tuple at `node` now.  Cached query results depending
    /// on it are invalidated (or incrementally maintained, per the owning
    /// session's [`CacheMaintenance`] policy).
    pub fn insert_base(&mut self, node: NodeId, tuple: Tuple) {
        self.fabric.on_base_delta(tuple.vid(), true);
        self.engine.insert_base(node, tuple);
    }

    /// Deletes a base tuple at `node` now.  Cached query results depending
    /// on it are invalidated (or incrementally maintained, per the owning
    /// session's [`CacheMaintenance`] policy).
    pub fn delete_base(&mut self, node: NodeId, tuple: Tuple) {
        self.fabric.on_base_delta(tuple.vid(), false);
        self.engine.delete_base(node, tuple);
    }

    /// Schedules a base-tuple delta at an absolute simulated time (churn
    /// schedules, data-plane workloads).  Cached query results depending on
    /// the tuple are invalidated when the delta is *applied*: immediately for
    /// deltas due now, otherwise when the clock passes `time` — so a query
    /// completing before the delta does not leave a stale cache entry behind.
    pub fn schedule_delta(&mut self, time: f64, node: NodeId, tuple: Tuple, insert: bool) {
        if time <= self.engine.now() {
            self.fabric.on_base_delta(tuple.vid(), insert);
        } else {
            self.pending_invalidations
                .entry(time.to_bits())
                .or_default()
                .push((tuple.vid(), insert));
        }
        self.engine.schedule_delta(time, node, tuple, insert);
    }

    /// Adds a link to the topology and inserts its base tuples (both
    /// directions) at the current simulated time.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, props: LinkProps) {
        self.engine.topology_mut().add_link(a, b, props);
        self.engine.journal_link(true, a, b, &props);
        self.insert_base(a, Self::link_tuple(a, b, props.cost));
        self.insert_base(b, Self::link_tuple(b, a, props.cost));
    }

    /// Removes a link from the topology and deletes its base tuples.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) {
        let props = self.engine.topology().link(a, b).copied();
        let cost = props.map_or(1, |p| p.cost);
        if let Some(props) = props {
            self.engine.journal_link(false, a, b, &props);
        }
        self.engine.topology_mut().remove_link(a, b);
        self.delete_base(a, Self::link_tuple(a, b, cost));
        self.delete_base(b, Self::link_tuple(b, a, cost));
    }

    /// Applies one churn event (link addition or deletion) now.
    pub fn apply_churn_event(&mut self, event: &ChurnEvent) {
        let now = self.engine.now();
        self.schedule_churn_event(event, now);
    }

    /// Schedules one churn event's base-tuple deltas at absolute simulated
    /// time `at`, so that maintenance traffic shows up at the schedule's
    /// time in the bandwidth time-series (Figures 9 and 10).  The topology
    /// change itself takes effect immediately — the simulator routes by
    /// current topology — which is at most one churn interval early.  For
    /// immediate application use [`Self::apply_churn_event`].
    pub fn schedule_churn_event(&mut self, event: &ChurnEvent, at: f64) {
        if event.add {
            self.engine
                .topology_mut()
                .add_link(event.a, event.b, event.props);
            self.engine
                .journal_link(true, event.a, event.b, &event.props);
            let cost = event.props.cost;
            self.schedule_delta(at, event.a, Self::link_tuple(event.a, event.b, cost), true);
            self.schedule_delta(at, event.b, Self::link_tuple(event.b, event.a, cost), true);
        } else {
            let props = self
                .engine
                .topology()
                .link(event.a, event.b)
                .copied()
                .unwrap_or(event.props);
            self.engine.journal_link(false, event.a, event.b, &props);
            self.engine.topology_mut().remove_link(event.a, event.b);
            let cost = props.cost;
            self.schedule_delta(at, event.a, Self::link_tuple(event.a, event.b, cost), false);
            self.schedule_delta(at, event.b, Self::link_tuple(event.b, event.a, cost), false);
        }
    }

    /// Invalidates every cached query result that (transitively) depends on
    /// the base tuple `vid`, across all sessions.  The deployment does this
    /// automatically for its own mutation methods; this entry point is for
    /// base-tuple changes injected through other channels.
    pub fn invalidate(&mut self, vid: Vid) {
        self.fabric.invalidate(vid);
    }

    // ------------------------------------------------------------------
    // The unified clock
    // ------------------------------------------------------------------

    /// Runs the deployment to a global fixpoint: protocol maintenance, churn
    /// deltas and in-flight queries all advance on one simulated clock until
    /// the event queue drains.
    pub fn run_to_fixpoint(&mut self) -> FixpointStats {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the next event would occur after `time`, under the
    /// deterministic [`SimClock`] executor — the clock of every figure
    /// experiment and test.  Equivalent to
    /// `run_with(&mut SimClock, time)`.
    ///
    /// While queries are in flight, events are processed one at a time in
    /// global deterministic order and query-protocol messages are dispatched
    /// to their sessions between maintenance deltas; with no query activity,
    /// the engine's bulk (parallelizable) path is used.
    ///
    /// Pending cache invalidations of future-scheduled base-tuple deltas are
    /// applied exactly when the clock passes the delta's time, so results
    /// cached before a scheduled change never survive it.
    pub fn run_until(&mut self, time: f64) -> FixpointStats {
        self.run_with(&mut SimClock, time)
    }

    /// Runs toward simulated time `target` under an explicit [`Executor`].
    ///
    /// The executor only decides how far each pump may advance ([`SimClock`]
    /// pays for the whole target at once and this collapses to the exact
    /// historical `run_until` path; [`WallClock`](exspan_runtime::WallClock)
    /// caps each pump at the simulated time real time has accrued and
    /// sleeps between pumps).  Event processing below the horizon is the
    /// engine's deterministic order either way, so *what* is computed is
    /// executor-independent — only *when* it is computed changes.
    pub fn run_with(&mut self, executor: &mut dyn Executor, target: f64) -> FixpointStats {
        let mut total = FixpointStats {
            fixpoint_time: self.engine.last_activity(),
            steps: 0,
            external: 0,
        };
        loop {
            let horizon = executor.horizon(target);
            let stats = self.run_clock_segment(horizon);
            total.steps += stats.steps;
            total.external += stats.external;
            total.fixpoint_time = stats.fixpoint_time;
            if horizon >= target || !executor.is_realtime() {
                break;
            }
            executor.wait(target);
        }
        total
    }

    /// One executor pump: runs the unified clock (maintenance, churn,
    /// queries, pending cache invalidations) up to the simulated `time`.
    fn run_clock_segment(&mut self, time: f64) -> FixpointStats {
        let mut total = FixpointStats {
            fixpoint_time: self.engine.last_activity(),
            steps: 0,
            external: 0,
        };
        let merge = |total: &mut FixpointStats, stats: FixpointStats| {
            total.steps += stats.steps;
            total.external += stats.external;
            total.fixpoint_time = stats.fixpoint_time;
        };
        loop {
            let next_due = self
                .pending_invalidations
                .keys()
                .next()
                .copied()
                .filter(|bits| f64::from_bits(*bits) <= time);
            let Some(bits) = next_due else {
                merge(&mut total, self.advance(time));
                break;
            };
            // Advance to the delta's application time before invalidating;
            // with no caching session nothing can go stale, so the entry is
            // simply retired without splitting the run.
            if self.fabric.any_caching() {
                merge(&mut total, self.advance(f64::from_bits(bits)));
            }
            let vids = self
                .pending_invalidations
                .remove(&bits)
                .expect("key observed above");
            for (vid, insert) in vids {
                self.fabric.on_base_delta(vid, insert);
            }
        }
        // A fully drained event queue means any still-unresolved query state
        // belongs to messages the simulator dropped; write it off so future
        // runs regain the bulk (parallel) path.
        if self.fabric.active() && self.engine.peek_time().is_none() {
            self.fabric.reap_orphans();
        }
        total
    }

    /// One segment of [`Deployment::run_until`]: interactive while query
    /// activity is pending, bulk otherwise.
    fn advance(&mut self, time: f64) -> FixpointStats {
        if self.fabric.active() {
            let mut sink = FabricSink {
                fabric: &mut self.fabric,
            };
            self.engine.run_until_interactive(time, &mut sink)
        } else {
            self.engine.run_until(time)
        }
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /// Total bytes transmitted so far across all nodes (protocol maintenance
    /// plus query traffic — everything shares the one network).
    pub fn total_bytes(&self) -> u64 {
        self.engine.stats().total_bytes()
    }

    /// Average bytes transmitted per node, in megabytes (the metric of
    /// Figures 6 and 7).
    pub fn avg_comm_mb(&self) -> f64 {
        self.engine.stats().avg_bytes_per_node() / 1e6
    }

    /// Total bytes the transmitted messages would have cost under the
    /// dictionary wire codec.  Zero unless the deployment was built with
    /// [`DeploymentBuilder::track_compressed`].
    pub fn compressed_bytes(&self) -> u64 {
        self.engine.compressed_bytes()
    }

    /// Average *compressed* bytes transmitted per node, in megabytes — the
    /// compressed counterpart of [`Deployment::avg_comm_mb`] charted by
    /// Figure 18.  Zero unless built with
    /// [`DeploymentBuilder::track_compressed`].
    pub fn avg_comm_mb_compressed(&self) -> f64 {
        let nodes = self.engine.topology().num_nodes().max(1) as f64;
        self.engine.compressed_bytes() as f64 / nodes / 1e6
    }

    /// Per-node average bandwidth samples in megabytes per second (the metric
    /// of Figures 8–10 and 16).
    pub fn avg_bandwidth_mbps(&self) -> Vec<(f64, f64)> {
        self.engine
            .stats()
            .avg_bandwidth_samples()
            .into_iter()
            .map(|(t, bps)| (t, bps / 1e6))
            .collect()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Starts a builder-style provenance query for `target`.
    pub fn query(&mut self, target: &Tuple) -> QueryBuilder<'_> {
        let issuer = target.location;
        QueryBuilder {
            deployment: self,
            target: target.clone(),
            issuer,
            repr: Repr::Polynomial,
            traversal: TraversalOrder::Bfs,
            cached: false,
            maintenance: CacheMaintenance::default(),
            at: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_query(
        &mut self,
        target: Tuple,
        issuer: NodeId,
        repr: Repr,
        traversal: TraversalOrder,
        cached: bool,
        maintenance: CacheMaintenance,
        at: Option<f64>,
    ) -> QueryHandle {
        let sid = self
            .fabric
            .session_for(&repr, traversal, cached, maintenance);
        let QueryFabric {
            sessions,
            outcomes,
            session_of,
            route,
            next_id,
            incomplete,
            ..
        } = &mut self.fabric;
        *incomplete += 1;
        let mut ctx = Ctx {
            engine: &mut self.engine,
            outcomes: &mut *outcomes,
            route: &mut *route,
            next_id: &mut *next_id,
            incomplete: &mut *incomplete,
        };
        let index = match at {
            Some(time) => sessions[sid].issue_at(&mut ctx, time, issuer, &target),
            None => sessions[sid].issue_now(&mut ctx, issuer, &target),
        };
        session_of.push(sid);
        debug_assert_eq!(session_of.len(), outcomes.len());
        QueryHandle {
            index,
            session: sid,
        }
    }

    /// The outcome of a submitted query (poll after advancing the clock).
    pub fn outcome(&self, handle: QueryHandle) -> Option<&QueryOutcome> {
        self.fabric.outcomes.get(handle.index)
    }

    /// The outcome of a submitted query, *only* once it has completed.
    ///
    /// The fallible counterpart of [`Deployment::outcome`] for callers that
    /// need to distinguish "no such query" from "still in flight" —
    /// `exspan-serve` maps the two [`QueryError`] variants onto distinct
    /// protocol error codes.
    pub fn completed_outcome(&self, handle: QueryHandle) -> Result<&QueryOutcome, QueryError> {
        let outcome = self
            .fabric
            .outcomes
            .get(handle.index)
            .ok_or(QueryError::UnknownHandle {
                index: handle.index,
            })?;
        if outcome.completed_at.is_none() {
            return Err(QueryError::NotComplete {
                index: handle.index,
            });
        }
        Ok(outcome)
    }

    /// Outcomes of all queries submitted so far, in issue order.
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.fabric.outcomes
    }

    /// Number of submitted queries still in flight (not completed, not
    /// written off as orphaned).  Service front-ends use this for admission
    /// control.
    pub fn incomplete_queries(&self) -> usize {
        self.fabric.incomplete
    }

    /// The typed session a query belongs to.
    pub fn session(&self, handle: QueryHandle) -> QuerySession<'_> {
        QuerySession {
            core: &self.fabric.sessions[handle.session],
            spec: &self.fabric.specs[handle.session],
        }
    }

    /// Number of distinct query sessions created so far.
    pub fn session_count(&self) -> usize {
        self.fabric.sessions.len()
    }

    /// Query-traffic statistics summed over every session.
    pub fn query_traffic_stats(&self) -> QueryTrafficStats {
        let mut total = QueryTrafficStats::zero();
        for s in &self.fabric.sessions {
            total.merge_from(s.stats());
        }
        total
    }

    /// Bandwidth time-series of query traffic (bytes per second), merged
    /// across every session by sample bucket.
    pub fn query_bandwidth_samples(&self) -> Vec<(f64, f64)> {
        let mut merged: BTreeMap<u64, f64> = BTreeMap::new();
        for s in &self.fabric.sessions {
            for (t, v) in s.bandwidth_samples() {
                *merged.entry(t.to_bits()).or_insert(0.0) += v;
            }
        }
        merged
            .into_iter()
            .map(|(bits, v)| (f64::from_bits(bits), v))
            .collect()
    }

    /// Runs `f` against the concrete representation of the query's session,
    /// if it is of type `R` — e.g. to evaluate a [`crate::repr::BddRepr`]
    /// result under a trust assignment without re-querying.
    pub fn with_session_repr<R: 'static, T>(
        &self,
        handle: QueryHandle,
        f: impl FnOnce(&R) -> T,
    ) -> Option<T> {
        self.fabric
            .sessions
            .get(handle.session)
            .and_then(|s| s.repr().as_any().downcast_ref::<R>())
            .map(f)
    }

    /// For a [`Repr::Bdd`] query: evaluates the completed result under a
    /// trust assignment over base tuples (§6.3).  Returns `None` if the
    /// query has not completed or its session is not BDD-backed.
    pub fn derivable_under(
        &self,
        handle: QueryHandle,
        trusted: impl Fn(Vid) -> bool,
    ) -> Option<bool> {
        let annotation = self.outcome(handle)?.annotation.clone()?;
        self.with_session_repr(handle, |repr: &crate::repr::BddRepr| {
            repr.derivable_under(&annotation, trusted)
        })
    }

    // ------------------------------------------------------------------
    // Value-based provenance
    // ------------------------------------------------------------------

    /// Runs `f` against the value-based provenance policy (only in
    /// [`ProvenanceMode::ValueBdd`]).  The policy lock is held exactly for
    /// the duration of the closure — nothing leaks a `MutexGuard`.
    pub fn with_value_provenance<T>(&self, f: impl FnOnce(&ValueBddPolicy) -> T) -> Option<T> {
        self.value_policy
            .as_ref()
            .map(|p| f(&p.lock().expect("value policy poisoned")))
    }

    /// For value-based provenance: returns the locally available annotation
    /// of a tuple without any distributed traversal.
    pub fn local_value_annotation(&self, tuple: &Tuple) -> Option<Annotation> {
        self.with_value_provenance(|p| p.annotation_of(tuple))
            .flatten()
            .map(Annotation::Bdd)
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("program", &self.program_name)
            .field("mode", &self.mode)
            .field("nodes", &self.engine.topology().num_nodes())
            .field("shards", &self.engine.num_shards())
            .field("queries", &self.fabric.outcomes.len())
            .field("sessions", &self.fabric.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_ndlog::programs;

    fn mincost_deployment(mode: ProvenanceMode) -> Deployment {
        let mut d = Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::paper_example())
            .mode(mode)
            .build()
            .expect("valid deployment");
        d.run_to_fixpoint();
        d
    }

    #[test]
    fn builder_validates_missing_pieces() {
        assert_eq!(
            Exspan::builder().build().unwrap_err(),
            BuildError::MissingProgram
        );
        assert_eq!(
            Exspan::builder()
                .program(programs::mincost())
                .build()
                .unwrap_err(),
            BuildError::MissingTopology
        );
        assert_eq!(
            Exspan::builder()
                .program(programs::mincost())
                .topology(Topology::empty(0))
                .build()
                .unwrap_err(),
            BuildError::EmptyTopology
        );
        assert_eq!(
            Exspan::builder()
                .program(programs::mincost())
                .topology(Topology::paper_example())
                .shards(0)
                .build()
                .unwrap_err(),
            BuildError::ZeroShards
        );
        let err = Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::paper_example())
            .mode(ProvenanceMode::Centralized { server: 9 })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::CentralizedServerOutOfRange {
                server: 9,
                nodes: 4
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn builder_rejects_invalid_programs() {
        // Duplicate rule labels fail static validation.
        let mut program = programs::mincost();
        let dup = program.rules[0].clone();
        program.rules.push(dup);
        match Exspan::builder()
            .program(program)
            .topology(Topology::paper_example())
            .build()
        {
            Err(BuildError::InvalidProgram(errors)) => {
                assert!(errors.iter().any(|e| e.contains("duplicate")));
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
    }

    #[test]
    fn builder_seeds_links_by_default() {
        let d = mincost_deployment(ProvenanceMode::Reference);
        assert!(!d.tuples_shared(0, "link").is_empty());
        assert!(!d.tuples_shared(0, "bestPathCost").is_empty());

        let mut unseeded = Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::paper_example())
            .seed_links(false)
            .build()
            .unwrap();
        unseeded.run_to_fixpoint();
        assert!(unseeded.tuples_shared(0, "link").is_empty());
    }

    #[test]
    fn equal_query_configs_share_a_session() {
        let mut d = mincost_deployment(ProvenanceMode::Reference);
        let target = (*d.tuples_shared(0, "bestPathCost").remove(0)).clone();
        let h1 = d.query(&target).repr(Repr::DerivationCount).submit();
        let h2 = d.query(&target).repr(Repr::DerivationCount).submit();
        let h3 = d.query(&target).repr(Repr::Polynomial).submit();
        d.run_to_fixpoint();
        assert_eq!(d.session_count(), 2);
        assert_eq!(h1.session, h2.session);
        assert_ne!(h1.session, h3.session);
        for h in [h1, h2, h3] {
            assert!(d.outcome(h).unwrap().is_complete());
        }
        assert_eq!(
            d.query_traffic_stats().bytes,
            d.session(h1).stats().bytes + d.session(h3).stats().bytes
        );
    }

    #[test]
    fn scheduled_queries_progress_with_run_until() {
        let mut d = mincost_deployment(ProvenanceMode::Reference);
        let target = (*d.tuples_shared(0, "bestPathCost").remove(0)).clone();
        let start = d.now();
        let h = d
            .query(&target)
            .issuer(3)
            .repr(Repr::NodeSet)
            .at(start + 0.5)
            .submit();
        // Before the issue time the query is untouched.
        d.run_until(start + 0.25);
        assert!(!d.outcome(h).unwrap().is_complete());
        // Advancing past it completes the query on the same clock.
        d.run_until(start + 5.0);
        let outcome = d.outcome(h).unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.issued_at >= start + 0.5);
        assert!(!outcome
            .annotation
            .as_ref()
            .unwrap()
            .as_nodes()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scheduled_delta_invalidates_cache_at_application_time() {
        use exspan_netsim::{ChurnEvent, LinkClass, LinkProps};

        let mut d = mincost_deployment(ProvenanceMode::Reference);
        let target = Tuple::new(
            "bestPathCost",
            0,
            vec![exspan_types::Value::Node(2), exspan_types::Value::Int(5)],
        );

        // Schedule deletion of the direct a-c link half a simulated second
        // ahead — *before* anything is cached, so an invalidation performed
        // at scheduling time would be a no-op.
        let event = ChurnEvent {
            time: 0.0,
            add: false,
            a: 0,
            b: 2,
            props: LinkProps::from_class(LinkClass::Custom),
        };
        let at = d.now() + 0.5;
        d.schedule_churn_event(&event, at);

        // A cached query issued now completes (and populates the cache) well
        // before the delta applies: two derivations, direct link and via b.
        let before = d
            .query(&target)
            .issuer(3)
            .repr(Repr::DerivationCount)
            .cached(true)
            .execute();
        assert_eq!(before.annotation.unwrap().as_count(), Some(2));
        assert!(
            before.completed_at.unwrap() < at,
            "query completed pre-churn"
        );

        // The cached result must have been invalidated when the delta was
        // *applied*, so the re-query sees the single surviving derivation
        // instead of the stale cached 2.
        let after = d
            .query(&target)
            .issuer(3)
            .repr(Repr::DerivationCount)
            .cached(true)
            .execute();
        assert_eq!(after.annotation.unwrap().as_count(), Some(1));
    }

    #[test]
    fn dropped_query_messages_leave_an_incomplete_outcome_and_a_working_deployment() {
        // Partition the issuer from the target before a scheduled query
        // issues: the simulator drops the unroutable query message, the
        // outcome honestly stays incomplete, and the deployment keeps
        // serving later queries (orphaned protocol state is reaped once the
        // event queue drains).
        let mut d = Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::line(2))
            .build()
            .unwrap();
        d.run_to_fixpoint();
        let target = (*d.tuples_shared(0, "bestPathCost").remove(0)).clone();
        let start = d.now();
        let orphan = d
            .query(&target)
            .issuer(1)
            .repr(Repr::DerivationCount)
            .at(start + 0.5)
            .submit();
        d.remove_link(0, 1);
        d.run_to_fixpoint();
        assert!(
            !d.outcome(orphan).unwrap().is_complete(),
            "a query whose message was dropped must not claim completion"
        );

        // A later local query (issuer == target node) still completes.
        let gone = Tuple::new(
            "bestPathCost",
            1,
            vec![exspan_types::Value::Node(0), exspan_types::Value::Int(1)],
        );
        let local = d
            .query(&gone)
            .issuer(1)
            .repr(Repr::DerivationCount)
            .execute();
        assert!(local.is_complete());
        assert_eq!(local.annotation.unwrap().as_count(), Some(0));
    }

    #[test]
    fn value_provenance_closure_accessor() {
        let d = mincost_deployment(ProvenanceMode::ValueBdd);
        let target = (*d.tuples_shared(0, "bestPathCost").remove(0)).clone();
        let derivable = d
            .with_value_provenance(|p| p.derivable_under(&target, |_| true))
            .expect("value mode exposes the policy");
        assert!(derivable);
        assert!(d.local_value_annotation(&target).is_some());
        // Reference mode has no value policy.
        let r = mincost_deployment(ProvenanceMode::Reference);
        assert!(r.with_value_provenance(|_| ()).is_none());
    }
}
