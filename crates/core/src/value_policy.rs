//! Value-based distributed provenance (§3, §4.1.2) as an engine annotation
//! policy.
//!
//! In value-based provenance every transmitted tuple carries its *entire*
//! derivation history.  Following the evaluation section, the history is
//! condensed into a BDD over base tuples ("Value-based Prov. (BDD)" in
//! Figures 6–10 and 16): the policy observes every rule firing, maintains the
//! boolean provenance of each derived tuple, and charges the serialized BDD
//! size to every remote transmission of that tuple.
//!
//! Because the annotation is carried with the data, queries in value-based
//! mode are answered locally ([`ValueBddPolicy::annotation_of`]) without any
//! distributed traversal — the trade-off the paper explores: high maintenance
//! bandwidth, zero query latency.

use exspan_bdd::{Bdd, BddManager};
use exspan_runtime::AnnotationPolicy;
use exspan_types::{NodeId, Tuple, Vid};
use std::collections::HashMap;

/// Annotation policy implementing value-based (BDD) provenance.
#[derive(Debug, Default)]
pub struct ValueBddPolicy {
    manager: BddManager,
    /// Boolean variable assigned to each base tuple.
    vars: HashMap<Vid, u32>,
    /// Current provenance of every tuple (base and derived), keyed by VID.
    provenance: HashMap<Vid, Bdd>,
    /// Bytes of annotation attached to messages so far.
    annotation_bytes_total: u64,
}

impl ValueBddPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn var_for(&mut self, vid: Vid) -> Bdd {
        let next = self.vars.len() as u32;
        let id = *self.vars.entry(vid).or_insert(next);
        self.manager.var(id)
    }

    /// The provenance BDD currently associated with a tuple, if any.
    pub fn annotation_of(&self, tuple: &Tuple) -> Option<Bdd> {
        self.provenance.get(&tuple.vid()).copied()
    }

    /// Serialized size (bytes) of a tuple's provenance annotation.
    pub fn annotation_size(&self, tuple: &Tuple) -> usize {
        self.provenance
            .get(&tuple.vid())
            .map(|b| self.manager.serialized_size(*b))
            .unwrap_or(0)
    }

    /// Derivability test under a trust assignment over base tuples: is the
    /// tuple derivable using only trusted base tuples?
    pub fn derivable_under<F: Fn(Vid) -> bool>(&self, tuple: &Tuple, trusted: F) -> bool {
        let Some(b) = self.provenance.get(&tuple.vid()) else {
            return false;
        };
        let by_var: HashMap<u32, bool> = self
            .vars
            .iter()
            .map(|(vid, var)| (*var, trusted(*vid)))
            .collect();
        self.manager
            .evaluate(*b, |v| by_var.get(&v).copied().unwrap_or(false))
    }

    /// Total annotation bytes attached to transmitted tuples so far.
    pub fn total_annotation_bytes(&self) -> u64 {
        self.annotation_bytes_total
    }

    /// Number of tuples with a tracked provenance annotation.
    pub fn tracked_tuples(&self) -> usize {
        self.provenance.len()
    }

    /// The BDD manager (for inspection).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }
}

impl AnnotationPolicy for ValueBddPolicy {
    fn on_base(&mut self, _node: NodeId, tuple: &Tuple, insert: bool) {
        let vid = tuple.vid();
        if insert {
            let var = self.var_for(vid);
            self.provenance.insert(vid, var);
        } else {
            self.provenance.remove(&vid);
        }
    }

    fn on_derivation(
        &mut self,
        _node: NodeId,
        _rule: &str,
        inputs: &[Tuple],
        output: &Tuple,
        insert: bool,
    ) {
        if !insert {
            // Deletion: the remaining provenance is recomputed lazily when a
            // surviving derivation fires again; drop the stale annotation so
            // deleted tuples do not keep contributing bytes.
            if inputs.is_empty() {
                self.provenance.remove(&output.vid());
            }
            return;
        }
        // AND over the inputs' provenance, OR'd into any existing provenance
        // of the output (alternative derivations).
        let mut conj = Bdd::TRUE;
        for input in inputs {
            let vid = input.vid();
            let b = match self.provenance.get(&vid) {
                Some(b) => *b,
                // Inputs we have never seen (e.g. base tuples seeded before
                // the policy was installed) are treated as base variables.
                None => {
                    let var = self.var_for(vid);
                    self.provenance.insert(vid, var);
                    var
                }
            };
            conj = self.manager.and(conj, b);
        }
        let out_vid = output.vid();
        let combined = match self.provenance.get(&out_vid) {
            Some(existing) => self.manager.or(*existing, conj),
            None => conj,
        };
        self.provenance.insert(out_vid, combined);
    }

    fn annotation_bytes(&mut self, _from: NodeId, _to: NodeId, tuple: &Tuple) -> usize {
        let bytes = self.annotation_size(tuple);
        self.annotation_bytes_total += bytes as u64;
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Value;

    fn link(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)])
    }

    fn path_cost(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("pathCost", s, vec![Value::Node(d), Value::Int(c)])
    }

    #[test]
    fn tracks_base_and_derived_provenance() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let l2 = link(1, 0, 3);
        p.on_base(0, &l1, true);
        p.on_base(1, &l2, true);
        let pc = path_cost(0, 2, 5);
        p.on_derivation(0, "sp1", std::slice::from_ref(&l1), &pc, true);
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
        assert!(!p.derivable_under(&pc, |v| v == l2.vid()));
        assert_eq!(p.tracked_tuples(), 3);
        assert!(p.annotation_size(&pc) >= 4);
    }

    #[test]
    fn alternative_derivations_are_ored() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let l2 = link(1, 0, 3);
        let bpc = Tuple::new("bestPathCost", 1, vec![Value::Node(2), Value::Int(2)]);
        p.on_base(0, &l1, true);
        p.on_base(1, &l2, true);
        p.on_base(1, &bpc, true); // treat as base for the test
        let pc = path_cost(0, 2, 5);
        p.on_derivation(0, "sp1", std::slice::from_ref(&l1), &pc, true);
        p.on_derivation(1, "sp2", &[l2.clone(), bpc.clone()], &pc, true);
        // Either derivation suffices.
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
        assert!(p.derivable_under(&pc, |v| v == l2.vid() || v == bpc.vid()));
        assert!(!p.derivable_under(&pc, |v| v == l2.vid()));
    }

    #[test]
    fn unseen_inputs_become_base_variables() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let pc = path_cost(0, 2, 5);
        // on_base was never called for l1.
        p.on_derivation(0, "sp1", std::slice::from_ref(&l1), &pc, true);
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
    }

    #[test]
    fn annotation_bytes_accumulate_and_deletion_clears() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        p.on_base(0, &l1, true);
        let pc = path_cost(0, 2, 5);
        p.on_derivation(0, "sp1", std::slice::from_ref(&l1), &pc, true);
        let b1 = p.annotation_bytes(0, 2, &pc);
        assert!(b1 > 0);
        assert_eq!(p.total_annotation_bytes(), b1 as u64);
        // Unknown tuples carry no annotation.
        assert_eq!(p.annotation_bytes(0, 2, &path_cost(7, 8, 9)), 0);
        // Deleting the base tuple clears its annotation.
        p.on_base(0, &l1, false);
        assert!(p.annotation_of(&l1).is_none());
    }
}
