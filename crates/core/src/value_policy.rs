//! Value-based distributed provenance (§3, §4.1.2) as an engine annotation
//! policy.
//!
//! In value-based provenance every transmitted tuple carries its *entire*
//! derivation history.  Following the evaluation section, the history is
//! condensed into a BDD over base tuples ("Value-based Prov. (BDD)" in
//! Figures 6–10 and 16): on every rule firing the policy conjoins the
//! annotations of the grounded inputs (all local to the firing node) and
//! ships the resulting BDD *with the delta* as an opaque token; when the
//! delta is applied at its destination the shipped history is disjoined into
//! the annotation stored for the tuple *at that node*.
//!
//! Keeping annotations per `(node, tuple)` mirrors the paper's distribution
//! model (each node knows the provenance of the tuples it stores) and is
//! load-bearing for the sharded runtime: every annotation is only read and
//! written while processing events of its own node, which the runtime
//! processes in a deterministic order regardless of shard count.  The BDD
//! manager is shared, but hash-consing makes it canonical — the serialized
//! size of a function does not depend on the order operations reached it.
//!
//! Because the annotation is carried with the data, queries in value-based
//! mode are answered locally ([`ValueBddPolicy::annotation_of`]) without any
//! distributed traversal — the trade-off the paper explores: high maintenance
//! bandwidth, zero query latency.

use exspan_bdd::{Bdd, BddManager};
use exspan_runtime::{AnnotationPolicy, AnnotationToken};
use exspan_types::{NodeId, Tuple, Vid};
use std::collections::HashMap;
use std::sync::Arc;

/// Annotation policy implementing value-based (BDD) provenance.
#[derive(Debug, Default)]
pub struct ValueBddPolicy {
    manager: BddManager,
    /// Boolean variable assigned to each base tuple.
    vars: HashMap<Vid, u32>,
    /// Provenance stored for each tuple at each node.
    annotations: HashMap<(NodeId, Vid), Bdd>,
    /// Bytes of annotation attached to messages so far.
    annotation_bytes_total: u64,
}

impl ValueBddPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn var_for(&mut self, vid: Vid) -> Bdd {
        let next = self.vars.len() as u32;
        let id = *self.vars.entry(vid).or_insert(next);
        self.manager.var(id)
    }

    /// The provenance BDD stored for a tuple at its own location, if any.
    pub fn annotation_of(&self, tuple: &Tuple) -> Option<Bdd> {
        self.annotations
            .get(&(tuple.location, tuple.vid()))
            .copied()
    }

    /// Serialized size (bytes) of a tuple's provenance annotation.
    pub fn annotation_size(&self, tuple: &Tuple) -> usize {
        self.annotation_of(tuple)
            .map_or(0, |b| self.manager.serialized_size(b))
    }

    /// Derivability test under a trust assignment over base tuples: is the
    /// tuple derivable using only trusted base tuples?
    pub fn derivable_under<F: Fn(Vid) -> bool>(&self, tuple: &Tuple, trusted: F) -> bool {
        let Some(b) = self.annotation_of(tuple) else {
            return false;
        };
        let by_var: HashMap<u32, bool> = self
            .vars
            .iter()
            .map(|(vid, var)| (*var, trusted(*vid)))
            .collect();
        self.manager
            .evaluate(b, |v| by_var.get(&v).copied().unwrap_or(false))
    }

    /// Total annotation bytes attached to transmitted tuples so far.
    pub fn total_annotation_bytes(&self) -> u64 {
        self.annotation_bytes_total
    }

    /// Number of `(node, tuple)` entries with a tracked provenance annotation.
    pub fn tracked_tuples(&self) -> usize {
        self.annotations.len()
    }

    /// The BDD manager (for inspection).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }
}

impl AnnotationPolicy for ValueBddPolicy {
    fn on_base(&mut self, node: NodeId, tuple: &Tuple, insert: bool) {
        let vid = tuple.vid();
        if insert {
            let var = self.var_for(vid);
            self.annotations.insert((node, vid), var);
        } else {
            self.annotations.remove(&(node, vid));
        }
    }

    fn on_derivation(
        &mut self,
        node: NodeId,
        _rule: &str,
        inputs: &[Arc<Tuple>],
        _output: &Tuple,
        insert: bool,
    ) -> Option<AnnotationToken> {
        let _ = insert;
        // AND over the inputs' locally stored provenance.  Rule bodies are
        // localized, so every input lives at the firing node.  Deletion
        // deltas ship the same conjunction: a value-based retraction must
        // identify *which* derivation disappears, so it carries (and is
        // charged for) that derivation's history just like the insertion
        // that established it.
        let mut conj = Bdd::TRUE;
        for input in inputs {
            let vid = input.vid();
            let b = match self.annotations.get(&(node, vid)) {
                Some(b) => *b,
                // Inputs we have never seen (e.g. base tuples seeded before
                // the policy was installed) are treated as base variables.
                None => {
                    let var = self.var_for(vid);
                    self.annotations.insert((node, vid), var);
                    var
                }
            };
            conj = self.manager.and(conj, b);
        }
        Some(conj.index())
    }

    fn annotation_bytes(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _tuple: &Tuple,
        token: Option<AnnotationToken>,
    ) -> usize {
        let bytes = token.map_or(0, |t| self.manager.serialized_size(Bdd::from_raw(t)));
        self.annotation_bytes_total += bytes as u64;
        bytes
    }

    fn annotation_bytes_compressed(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _tuple: &Tuple,
        token: Option<AnnotationToken>,
        _uncompressed: usize,
    ) -> usize {
        // Varint node encoding of the shipped BDD.  Deliberately does NOT
        // touch `annotation_bytes_total`: the flat accounting behind the
        // existing figures already charged this delta.
        token.map_or(0, |t| {
            self.manager.compressed_serialized_size(Bdd::from_raw(t))
        })
    }

    fn on_arrival(
        &mut self,
        node: NodeId,
        tuple: &Tuple,
        token: Option<AnnotationToken>,
        insert: bool,
        removed: bool,
    ) {
        let vid = tuple.vid();
        if insert {
            // OR the shipped derivation history into the annotation stored
            // for this tuple at this node (alternative derivations).
            if let Some(t) = token {
                let shipped = Bdd::from_raw(t);
                let combined = match self.annotations.get(&(node, vid)) {
                    Some(existing) => self.manager.or(*existing, shipped),
                    None => shipped,
                };
                self.annotations.insert((node, vid), combined);
            }
        } else if removed {
            // Last derivation gone: the stale history must not keep
            // contributing bytes.  Tuples that stay visible through other
            // derivations keep their annotation.
            self.annotations.remove(&(node, vid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Value;

    fn link(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)])
    }

    fn shared(t: &Tuple) -> [Arc<Tuple>; 1] {
        [Arc::new(t.clone())]
    }

    fn path_cost(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("pathCost", s, vec![Value::Node(d), Value::Int(c)])
    }

    #[test]
    fn tracks_base_and_derived_provenance() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let l2 = link(1, 0, 3);
        p.on_base(0, &l1, true);
        p.on_base(1, &l2, true);
        let pc = path_cost(0, 2, 5);
        let token = p.on_derivation(0, "sp1", &shared(&l1), &pc, true);
        assert!(token.is_some());
        p.on_arrival(0, &pc, token, true, false);
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
        assert!(!p.derivable_under(&pc, |v| v == l2.vid()));
        assert_eq!(p.tracked_tuples(), 3);
        assert!(p.annotation_size(&pc) >= 4);
    }

    #[test]
    fn alternative_derivations_are_ored_at_the_storage_node() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let l2 = link(1, 0, 3);
        let bpc = Tuple::new("bestPathCost", 1, vec![Value::Node(2), Value::Int(2)]);
        p.on_base(0, &l1, true);
        p.on_base(1, &l2, true);
        p.on_base(1, &bpc, true); // treat as base for the test
        let pc = path_cost(0, 2, 5);
        // One derivation computed at node 0, an alternative shipped from 1.
        let t1 = p.on_derivation(0, "sp1", &shared(&l1), &pc, true);
        p.on_arrival(0, &pc, t1, true, false);
        let t2 = p.on_derivation(
            1,
            "sp2",
            &[Arc::new(l2.clone()), Arc::new(bpc.clone())],
            &pc,
            true,
        );
        p.on_arrival(0, &pc, t2, true, false);
        // Either derivation suffices.
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
        assert!(p.derivable_under(&pc, |v| v == l2.vid() || v == bpc.vid()));
        assert!(!p.derivable_under(&pc, |v| v == l2.vid()));
    }

    #[test]
    fn unseen_inputs_become_base_variables() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        let pc = path_cost(0, 2, 5);
        // on_base was never called for l1.
        let token = p.on_derivation(0, "sp1", &shared(&l1), &pc, true);
        p.on_arrival(0, &pc, token, true, false);
        assert!(p.derivable_under(&pc, |v| v == l1.vid()));
    }

    #[test]
    fn annotation_bytes_follow_the_shipped_token() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        p.on_base(0, &l1, true);
        let pc = path_cost(0, 2, 5);
        let token = p.on_derivation(0, "sp1", &shared(&l1), &pc, true);
        let b1 = p.annotation_bytes(0, 2, &pc, token);
        assert!(b1 > 0);
        assert_eq!(p.total_annotation_bytes(), b1 as u64);
        // Deltas without a token carry no annotation.
        assert_eq!(p.annotation_bytes(0, 2, &path_cost(7, 8, 9), None), 0);
        // Deleting the base tuple clears its annotation.
        p.on_base(0, &l1, false);
        assert!(p.annotation_of(&l1).is_none());
    }

    #[test]
    fn deletion_arrival_drops_only_when_removed() {
        let mut p = ValueBddPolicy::new();
        let l1 = link(0, 2, 5);
        p.on_base(0, &l1, true);
        let pc = path_cost(0, 2, 5);
        let token = p.on_derivation(0, "sp1", &shared(&l1), &pc, true);
        p.on_arrival(0, &pc, token, true, false);
        assert!(p.annotation_of(&pc).is_some());
        // A deletion that leaves other derivations keeps the annotation.
        p.on_arrival(0, &pc, None, false, false);
        assert!(p.annotation_of(&pc).is_some());
        // The final deletion drops it.
        p.on_arrival(0, &pc, None, false, true);
        assert!(p.annotation_of(&pc).is_none());
    }
}
