//! Customizable provenance representations (§5.2).
//!
//! The distributed query protocol is parameterized by three user-defined
//! functions operating on *annotations*:
//!
//! * `f_pEDB` — the annotation of a base (EDB) tuple leaf,
//! * `f_pRULE` — combines the annotations of a rule execution's inputs,
//! * `f_pIDB` — combines the annotations of a tuple's alternative derivations.
//!
//! Each implementation of [`ProvenanceRepr`] supplies that triple plus a wire
//! size for its annotations (charged when the annotation travels back along
//! the query's reverse path).  Implemented representations:
//!
//! | Representation | `f_pEDB` | `f_pRULE` | `f_pIDB` | paper |
//! |---|---|---|---|---|
//! | [`PolynomialRepr`] | base tuple literal | `·` (join)  | `+` (union) | §5.2.1 |
//! | [`NodeSetRepr`] | `{node}` | set union | set union | Table 3 |
//! | [`DerivationCountRepr`] | `1` | product | sum | Table 3 |
//! | [`DerivabilityRepr`] | `true` | AND | OR | Table 3 |
//! | [`BddRepr`] | BDD variable | BDD AND | BDD OR | §6.3 |
//! | [`TrustDomainRepr`] | `{domain(node)}` | set union | set union | §3 (granularity) |

use exspan_bdd::{Bdd, BddManager};
use exspan_types::{NodeId, Vid};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Typed selector for a provenance representation, used by the builder-style
/// query API (`deployment.query(..).repr(Repr::Polynomial)`).
///
/// Each variant names one [`ProvenanceRepr`] implementation; the deployment
/// instantiates (and owns) the concrete representation per query *session*,
/// so callers never handle `Box<dyn ProvenanceRepr>` themselves.  Queries
/// submitted with equal `Repr` values (and equal traversal/caching settings)
/// share one session — and therefore one result cache and, for
/// [`Repr::Bdd`], one BDD manager.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Repr {
    /// Full provenance polynomials ([`PolynomialRepr`], §5.2.1).
    #[default]
    Polynomial,
    /// The set of participating nodes ([`NodeSetRepr`], Table 3).
    NodeSet,
    /// Number of alternative derivations ([`DerivationCountRepr`], Table 3).
    DerivationCount,
    /// Derivability with every base tuple trusted ([`DerivabilityRepr`],
    /// Table 3).  For custom trust policies prefer [`Repr::Bdd`] plus
    /// [`crate::deployment::Deployment::derivable_under`], which evaluates
    /// arbitrary trust assignments on the condensed result without
    /// re-querying.
    Derivability,
    /// Condensed (absorption) provenance as a BDD ([`BddRepr`], §6.3).
    Bdd,
    /// Trust-domain granularity with an explicit node→domain map
    /// ([`TrustDomainRepr`], §3).
    TrustDomain(BTreeMap<NodeId, u32>),
    /// Trust-domain granularity with contiguous domains of the given size
    /// ([`TrustDomainRepr::contiguous`]).
    ContiguousTrustDomains(u32),
}

impl Repr {
    /// Instantiates the concrete representation this selector names.
    pub(crate) fn instantiate(&self) -> Box<dyn ProvenanceRepr> {
        match self {
            Repr::Polynomial => Box::new(PolynomialRepr),
            Repr::NodeSet => Box::new(NodeSetRepr),
            Repr::DerivationCount => Box::new(DerivationCountRepr),
            Repr::Derivability => Box::new(DerivabilityRepr::default()),
            Repr::Bdd => Box::new(BddRepr::new()),
            Repr::TrustDomain(map) => Box::new(TrustDomainRepr::new(
                map.iter().map(|(n, d)| (*n, *d)).collect(),
            )),
            Repr::ContiguousTrustDomains(size) => Box::new(TrustDomainRepr::contiguous(*size)),
        }
    }

    /// The representation's name, matching [`ProvenanceRepr::name`].
    pub fn name(&self) -> &'static str {
        match self {
            Repr::Polynomial => "POLYNOMIAL",
            Repr::NodeSet => "NODESET",
            Repr::DerivationCount => "#DERIVATION",
            Repr::Derivability => "DERIVABILITY",
            Repr::Bdd => "BDD",
            Repr::TrustDomain(_) | Repr::ContiguousTrustDomains(_) => "TRUSTDOMAIN",
        }
    }
}

/// A provenance expression tree — the "provenance polynomial" of §5.2.1.
///
/// `+` (alternative derivations) is represented by [`ProvExpr::Sum`] and `·`
/// (joined inputs of one rule execution) by [`ProvExpr::Product`]; products
/// are labelled with `rule@location` as in the paper's
/// `〈R@RLoc〉(P1 · P2 · …)` notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProvExpr {
    /// A base-tuple literal (identified by its VID).
    Base(Vid),
    /// Alternative derivations combined with `+`, annotated with the location
    /// of the derived tuple.
    Sum {
        /// Location of the derived tuple.
        loc: NodeId,
        /// The alternative derivations.
        terms: Vec<ProvExpr>,
    },
    /// Joined rule inputs combined with `·`, annotated with `rule@loc`.
    Product {
        /// Rule label.
        rule: String,
        /// Location at which the rule executed.
        loc: NodeId,
        /// Input annotations.
        factors: Vec<ProvExpr>,
    },
}

impl ProvExpr {
    /// All base-tuple VIDs mentioned in the expression.
    pub fn base_tuples(&self) -> BTreeSet<Vid> {
        let mut out = BTreeSet::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases(&self, out: &mut BTreeSet<Vid>) {
        match self {
            ProvExpr::Base(v) => {
                out.insert(*v);
            }
            ProvExpr::Sum { terms, .. } => terms.iter().for_each(|t| t.collect_bases(out)),
            ProvExpr::Product { factors, .. } => factors.iter().for_each(|f| f.collect_bases(out)),
        }
    }

    /// Number of monomials (distinct derivations) in the expanded polynomial.
    pub fn num_derivations(&self) -> u64 {
        match self {
            ProvExpr::Base(_) => 1,
            ProvExpr::Sum { terms, .. } => terms.iter().map(ProvExpr::num_derivations).sum(),
            ProvExpr::Product { factors, .. } => {
                factors.iter().map(ProvExpr::num_derivations).product()
            }
        }
    }

    /// Serialized size in bytes: 20 per base literal plus 6 per operator node
    /// (tag, location and child count).
    pub fn wire_size(&self) -> usize {
        match self {
            ProvExpr::Base(_) => 20,
            ProvExpr::Sum { terms, .. } => 6 + terms.iter().map(ProvExpr::wire_size).sum::<usize>(),
            ProvExpr::Product { factors, rule, .. } => {
                6 + rule.len() + factors.iter().map(ProvExpr::wire_size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for ProvExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvExpr::Base(v) => write!(f, "{}", v.short()),
            ProvExpr::Sum { loc, terms } => {
                write!(f, "(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")@n{loc}")
            }
            ProvExpr::Product { rule, loc, factors } => {
                write!(f, "<{rule}@n{loc}>(")?;
                for (i, t) in factors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An annotation value computed by a representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// A provenance polynomial.
    Expr(ProvExpr),
    /// A set of node identifiers (node-level granularity).
    Nodes(BTreeSet<NodeId>),
    /// A set of trust-domain identifiers.
    Domains(BTreeSet<u32>),
    /// A derivation count.
    Count(u64),
    /// A derivability flag.
    Bool(bool),
    /// A handle into the representation's BDD manager.
    Bdd(Bdd),
}

impl Annotation {
    /// Interprets the annotation as a count if it is one.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            Annotation::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// Interprets the annotation as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Annotation::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the annotation as a polynomial if it is one.
    pub fn as_expr(&self) -> Option<&ProvExpr> {
        match self {
            Annotation::Expr(e) => Some(e),
            _ => None,
        }
    }

    /// Interprets the annotation as a node set if it is one.
    pub fn as_nodes(&self) -> Option<&BTreeSet<NodeId>> {
        match self {
            Annotation::Nodes(n) => Some(n),
            _ => None,
        }
    }
}

/// The `(f_pEDB, f_pIDB, f_pRULE)` customization triple plus sizing.
///
/// `Send` is a supertrait so whole deployments (which own one boxed
/// representation per query session) can move onto a service worker thread.
pub trait ProvenanceRepr: Send {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Downcasting support, so callers holding a `Box<dyn ProvenanceRepr>`
    /// can recover the concrete representation (e.g. to evaluate a BDD
    /// annotation under a trust assignment).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Annotation of a base (EDB) tuple identified by `vid` stored at `loc`.
    fn p_edb(&mut self, vid: Vid, loc: NodeId) -> Annotation;

    /// Combines the annotations of the inputs of one rule execution.
    fn p_rule(&mut self, rule: &str, rloc: NodeId, children: &[Annotation]) -> Annotation;

    /// Combines the annotations of a tuple's alternative derivations.
    fn p_idb(&mut self, loc: NodeId, derivations: &[Annotation]) -> Annotation;

    /// Number of bytes the annotation occupies when shipped in a query
    /// response message.
    fn wire_size(&self, annotation: &Annotation) -> usize;

    /// Threshold check used by DFS-with-threshold traversal: returns `true`
    /// if a *partial* result already satisfies the query's threshold so the
    /// traversal can stop early (e.g. "more than T derivations").  The
    /// default never stops early.
    fn exceeds_threshold(&self, annotation: &Annotation, threshold: i64) -> bool {
        let _ = (annotation, threshold);
        false
    }

    /// Rewrites `annotation` to reflect the *deletion* of the base tuple
    /// `vid`, for incremental cache maintenance
    /// ([`crate::query::CacheMaintenance::Incremental`]).  Returns the
    /// maintained annotation, or `None` when the representation cannot
    /// maintain it — including when the rewrite collapses to "no derivations
    /// left" — in which case the session invalidates the cache entry
    /// instead.  The default maintains nothing, so aggregate
    /// representations (counts, node sets) that cannot subtract a base
    /// tuple's contribution stay sound.
    fn remove_base(&mut self, annotation: &Annotation, vid: Vid) -> Option<Annotation> {
        let _ = (annotation, vid);
        None
    }
}

// ---------------------------------------------------------------------------
// Polynomial
// ---------------------------------------------------------------------------

/// Provenance polynomials (§5.2.1): the full algebraic representation.
#[derive(Debug, Default, Clone)]
pub struct PolynomialRepr;

impl ProvenanceRepr for PolynomialRepr {
    fn name(&self) -> &'static str {
        "POLYNOMIAL"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, vid: Vid, _loc: NodeId) -> Annotation {
        Annotation::Expr(ProvExpr::Base(vid))
    }

    fn p_rule(&mut self, rule: &str, rloc: NodeId, children: &[Annotation]) -> Annotation {
        let factors = children
            .iter()
            .filter_map(|a| a.as_expr().cloned())
            .collect();
        Annotation::Expr(ProvExpr::Product {
            rule: rule.to_string(),
            loc: rloc,
            factors,
        })
    }

    fn p_idb(&mut self, loc: NodeId, derivations: &[Annotation]) -> Annotation {
        let terms: Vec<ProvExpr> = derivations
            .iter()
            .filter_map(|a| a.as_expr().cloned())
            .collect();
        if terms.len() == 1 {
            Annotation::Expr(terms.into_iter().next().expect("one term"))
        } else {
            Annotation::Expr(ProvExpr::Sum { loc, terms })
        }
    }

    fn wire_size(&self, annotation: &Annotation) -> usize {
        match annotation {
            Annotation::Expr(e) => e.wire_size(),
            _ => 0,
        }
    }

    fn remove_base(&mut self, annotation: &Annotation, vid: Vid) -> Option<Annotation> {
        let Annotation::Expr(e) = annotation else {
            return None;
        };
        prune_base(e, vid).map(Annotation::Expr)
    }
}

/// Substitutes zero for `Base(vid)` in the polynomial and normalizes:
/// a product with a zero factor is zero, a sum drops its zero terms.
/// `None` means the whole expression collapsed to zero (every derivation
/// used the deleted tuple).
fn prune_base(e: &ProvExpr, vid: Vid) -> Option<ProvExpr> {
    match e {
        ProvExpr::Base(v) => (*v != vid).then(|| e.clone()),
        ProvExpr::Product { rule, loc, factors } => {
            let pruned: Vec<ProvExpr> = factors
                .iter()
                .map(|f| prune_base(f, vid))
                .collect::<Option<_>>()?;
            Some(ProvExpr::Product {
                rule: rule.clone(),
                loc: *loc,
                factors: pruned,
            })
        }
        ProvExpr::Sum { loc, terms } => {
            let surviving: Vec<ProvExpr> =
                terms.iter().filter_map(|t| prune_base(t, vid)).collect();
            if surviving.is_empty() {
                None
            } else {
                Some(ProvExpr::Sum {
                    loc: *loc,
                    terms: surviving,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Node set
// ---------------------------------------------------------------------------

/// The set of nodes participating in a derivation (Table 3, "Node Set").
#[derive(Debug, Default, Clone)]
pub struct NodeSetRepr;

fn union_sets<'a, I: IntoIterator<Item = &'a Annotation>>(items: I) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    for a in items {
        if let Annotation::Nodes(s) = a {
            out.extend(s.iter().copied());
        }
    }
    out
}

impl ProvenanceRepr for NodeSetRepr {
    fn name(&self) -> &'static str {
        "NODESET"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, _vid: Vid, loc: NodeId) -> Annotation {
        Annotation::Nodes(std::iter::once(loc).collect())
    }

    fn p_rule(&mut self, _rule: &str, rloc: NodeId, children: &[Annotation]) -> Annotation {
        let mut s = union_sets(children);
        s.insert(rloc);
        Annotation::Nodes(s)
    }

    fn p_idb(&mut self, _loc: NodeId, derivations: &[Annotation]) -> Annotation {
        Annotation::Nodes(union_sets(derivations))
    }

    fn wire_size(&self, annotation: &Annotation) -> usize {
        match annotation {
            Annotation::Nodes(s) => 2 + 4 * s.len(),
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Trust domains
// ---------------------------------------------------------------------------

/// Trust-domain granularity (§3): like [`NodeSetRepr`] but nodes are first
/// mapped to the identifier of the administrative domain they belong to, so
/// the annotation only reveals which domains participated.
#[derive(Debug, Clone)]
pub struct TrustDomainRepr {
    domain_of: HashMap<NodeId, u32>,
    /// Domain assigned to nodes not present in the map.
    default_domain: u32,
}

impl TrustDomainRepr {
    /// Creates the representation from an explicit node→domain map.
    pub fn new(domain_of: HashMap<NodeId, u32>) -> Self {
        TrustDomainRepr {
            domain_of,
            default_domain: 0,
        }
    }

    /// Convenience constructor: nodes are partitioned into equally sized
    /// contiguous domains of `domain_size` nodes (mirroring the transit-stub
    /// generator where each domain holds 100 consecutive node ids).
    pub fn contiguous(domain_size: u32) -> Self {
        TrustDomainRepr {
            domain_of: HashMap::new(),
            default_domain: domain_size.max(1),
        }
    }

    fn domain(&self, node: NodeId) -> u32 {
        match self.domain_of.get(&node) {
            Some(d) => *d,
            None => node / self.default_domain.max(1),
        }
    }
}

impl ProvenanceRepr for TrustDomainRepr {
    fn name(&self) -> &'static str {
        "TRUSTDOMAIN"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, _vid: Vid, loc: NodeId) -> Annotation {
        Annotation::Domains(std::iter::once(self.domain(loc)).collect())
    }

    fn p_rule(&mut self, _rule: &str, rloc: NodeId, children: &[Annotation]) -> Annotation {
        let mut out: BTreeSet<u32> = BTreeSet::new();
        for a in children {
            if let Annotation::Domains(s) = a {
                out.extend(s.iter().copied());
            }
        }
        out.insert(self.domain(rloc));
        Annotation::Domains(out)
    }

    fn p_idb(&mut self, _loc: NodeId, derivations: &[Annotation]) -> Annotation {
        let mut out: BTreeSet<u32> = BTreeSet::new();
        for a in derivations {
            if let Annotation::Domains(s) = a {
                out.extend(s.iter().copied());
            }
        }
        Annotation::Domains(out)
    }

    fn wire_size(&self, annotation: &Annotation) -> usize {
        match annotation {
            Annotation::Domains(s) => 2 + 4 * s.len(),
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Derivation count
// ---------------------------------------------------------------------------

/// Number of alternative derivations (Table 3, "# of Derivations").
#[derive(Debug, Default, Clone)]
pub struct DerivationCountRepr;

impl ProvenanceRepr for DerivationCountRepr {
    fn name(&self) -> &'static str {
        "#DERIVATION"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, _vid: Vid, _loc: NodeId) -> Annotation {
        Annotation::Count(1)
    }

    fn p_rule(&mut self, _rule: &str, _rloc: NodeId, children: &[Annotation]) -> Annotation {
        Annotation::Count(children.iter().map(|a| a.as_count().unwrap_or(0)).product())
    }

    fn p_idb(&mut self, _loc: NodeId, derivations: &[Annotation]) -> Annotation {
        Annotation::Count(derivations.iter().map(|a| a.as_count().unwrap_or(0)).sum())
    }

    fn wire_size(&self, _annotation: &Annotation) -> usize {
        4
    }

    fn exceeds_threshold(&self, annotation: &Annotation, threshold: i64) -> bool {
        annotation.as_count().is_some_and(|c| c as i64 > threshold)
    }
}

// ---------------------------------------------------------------------------
// Derivability test
// ---------------------------------------------------------------------------

/// Derivability test (Table 3): is the tuple derivable at all from the base
/// tuples the querier is willing to trust?
pub struct DerivabilityRepr {
    /// Predicate deciding whether a base tuple (by VID, at a location) is
    /// trusted.  Untrusted base tuples evaluate to `false`.  `Send` because
    /// the representation travels with its deployment onto worker threads.
    pub trust: Box<dyn Fn(Vid, NodeId) -> bool + Send>,
}

impl Default for DerivabilityRepr {
    fn default() -> Self {
        DerivabilityRepr {
            trust: Box::new(|_, _| true),
        }
    }
}

impl std::fmt::Debug for DerivabilityRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DerivabilityRepr").finish_non_exhaustive()
    }
}

impl ProvenanceRepr for DerivabilityRepr {
    fn name(&self) -> &'static str {
        "DERIVABILITY"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, vid: Vid, loc: NodeId) -> Annotation {
        Annotation::Bool((self.trust)(vid, loc))
    }

    fn p_rule(&mut self, _rule: &str, _rloc: NodeId, children: &[Annotation]) -> Annotation {
        Annotation::Bool(children.iter().all(|a| a.as_bool().unwrap_or(false)))
    }

    fn p_idb(&mut self, _loc: NodeId, derivations: &[Annotation]) -> Annotation {
        Annotation::Bool(derivations.iter().any(|a| a.as_bool().unwrap_or(false)))
    }

    fn wire_size(&self, _annotation: &Annotation) -> usize {
        1
    }

    fn exceeds_threshold(&self, annotation: &Annotation, _threshold: i64) -> bool {
        // A derivability query can stop as soon as one derivation succeeds.
        annotation.as_bool().unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// BDD (absorption provenance)
// ---------------------------------------------------------------------------

/// Condensed provenance (§6.3): the polynomial is encoded as a boolean
/// expression over base tuples and stored as a BDD, which applies absorption
/// (`a + a·b = a`) automatically.
#[derive(Debug, Default)]
pub struct BddRepr {
    manager: BddManager,
    vars: HashMap<Vid, u32>,
}

impl BddRepr {
    /// Creates an empty BDD representation.
    pub fn new() -> Self {
        Self::default()
    }

    /// The BDD manager (for inspection in tests and trust evaluation).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// The variable id assigned to a base tuple, if it was encountered.
    pub fn var_of(&self, vid: Vid) -> Option<u32> {
        self.vars.get(&vid).copied()
    }

    fn var(&mut self, vid: Vid) -> Bdd {
        let next = self.vars.len() as u32;
        let id = *self.vars.entry(vid).or_insert(next);
        self.manager.var(id)
    }

    /// Evaluates the annotation under a trust assignment over base tuples.
    pub fn derivable_under<F: Fn(Vid) -> bool>(&self, annotation: &Annotation, trusted: F) -> bool {
        let Annotation::Bdd(b) = annotation else {
            return false;
        };
        let by_var: HashMap<u32, bool> = self
            .vars
            .iter()
            .map(|(vid, var)| (*var, trusted(*vid)))
            .collect();
        self.manager
            .evaluate(*b, |v| by_var.get(&v).copied().unwrap_or(false))
    }
}

impl ProvenanceRepr for BddRepr {
    fn name(&self) -> &'static str {
        "BDD"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn p_edb(&mut self, vid: Vid, _loc: NodeId) -> Annotation {
        let b = self.var(vid);
        Annotation::Bdd(b)
    }

    fn p_rule(&mut self, _rule: &str, _rloc: NodeId, children: &[Annotation]) -> Annotation {
        let handles: Vec<Bdd> = children
            .iter()
            .filter_map(|a| match a {
                Annotation::Bdd(b) => Some(*b),
                _ => None,
            })
            .collect();
        Annotation::Bdd(self.manager.and_all(handles))
    }

    fn p_idb(&mut self, _loc: NodeId, derivations: &[Annotation]) -> Annotation {
        let handles: Vec<Bdd> = derivations
            .iter()
            .filter_map(|a| match a {
                Annotation::Bdd(b) => Some(*b),
                _ => None,
            })
            .collect();
        Annotation::Bdd(self.manager.or_all(handles))
    }

    fn wire_size(&self, annotation: &Annotation) -> usize {
        match annotation {
            Annotation::Bdd(b) => self.manager.serialized_size(*b),
            _ => 0,
        }
    }

    fn remove_base(&mut self, annotation: &Annotation, vid: Vid) -> Option<Annotation> {
        let Annotation::Bdd(b) = annotation else {
            return None;
        };
        // A base tuple the session never assigned a variable cannot occur in
        // any cached BDD: the annotation is already correct.
        let Some(var) = self.vars.get(&vid).copied() else {
            return Some(annotation.clone());
        };
        let restricted = self.manager.restrict(*b, var, false);
        // FALSE means no derivation survives — let invalidation retire the
        // entry rather than caching an unsatisfiable annotation.
        self.manager
            .is_satisfiable(restricted)
            .then_some(Annotation::Bdd(restricted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::{Tuple, Value};

    fn vid(name: &str, loc: NodeId) -> Vid {
        Tuple::new(name, loc, vec![Value::Int(1)]).vid()
    }

    /// Builds the paper's running example by hand:
    /// bestPathCost(@a,c,5) = sp3@a( pathCost(@a,c,5) ) where pathCost has two
    /// derivations: sp1@a(link(@a,c,5)) and sp2@b(link(@b,a,3), bestPathCost(@b,c,2)
    /// = sp3@b(sp1@b(link(@b,c,2)))).
    fn build_example<R: ProvenanceRepr>(repr: &mut R) -> (Annotation, [Vid; 3]) {
        let a = 0;
        let b = 1;
        let link_ac = vid("link_ac", a);
        let link_ba = vid("link_ba", b);
        let link_bc = vid("link_bc", b);

        // bestPathCost(@b,c,2) <- sp3@b <- pathCost(@b,c,2) <- sp1@b <- link(@b,c,2)
        let e_bc = repr.p_edb(link_bc, b);
        let r_sp1b = repr.p_rule("sp1", b, &[e_bc]);
        let pc_b = repr.p_idb(b, &[r_sp1b]);
        let r_sp3b = repr.p_rule("sp3", b, &[pc_b]);
        let bpc_b = repr.p_idb(b, &[r_sp3b]);

        // pathCost(@a,c,5): two derivations.
        let e_ac = repr.p_edb(link_ac, a);
        let d1 = repr.p_rule("sp1", a, &[e_ac]);
        let e_ba = repr.p_edb(link_ba, b);
        let d2 = repr.p_rule("sp2", b, &[e_ba, bpc_b]);
        let pc_a = repr.p_idb(a, &[d1, d2]);

        // bestPathCost(@a,c,5).
        let r_sp3a = repr.p_rule("sp3", a, &[pc_a]);
        let bpc_a = repr.p_idb(a, &[r_sp3a]);
        (bpc_a, [link_ac, link_ba, link_bc])
    }

    #[test]
    fn polynomial_encodes_alternative_derivations() {
        let mut repr = PolynomialRepr;
        let (ann, [link_ac, link_ba, link_bc]) = build_example(&mut repr);
        let expr = ann.as_expr().unwrap();
        assert_eq!(expr.num_derivations(), 2);
        let bases = expr.base_tuples();
        assert!(bases.contains(&link_ac));
        assert!(bases.contains(&link_ba));
        assert!(bases.contains(&link_bc));
        // Printable form mentions the rules involved.
        let s = expr.to_string();
        assert!(s.contains("sp2@n1"));
        assert!(s.contains("sp3@n0"));
        assert!(expr.wire_size() > 60, "three base literals plus operators");
    }

    #[test]
    fn node_set_matches_paper_example() {
        // Paper §3: node-level provenance of bestPathCost(@a,c,5) is {a, b}.
        let mut repr = NodeSetRepr;
        let (ann, _) = build_example(&mut repr);
        let nodes = ann.as_nodes().unwrap();
        assert_eq!(nodes.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(repr.wire_size(&ann), 2 + 8);
    }

    #[test]
    fn derivation_count_matches_example() {
        let mut repr = DerivationCountRepr;
        let (ann, _) = build_example(&mut repr);
        assert_eq!(ann.as_count(), Some(2));
        assert!(repr.exceeds_threshold(&ann, 1));
        assert!(!repr.exceeds_threshold(&ann, 2));
    }

    #[test]
    fn derivability_depends_on_trusted_base_tuples() {
        // Trusting everything: derivable.
        let mut repr = DerivabilityRepr::default();
        let (ann, _) = build_example(&mut repr);
        assert_eq!(ann.as_bool(), Some(true));

        // Trusting nothing: not derivable.
        let mut repr = DerivabilityRepr {
            trust: Box::new(|_, _| false),
        };
        let (ann, _) = build_example(&mut repr);
        assert_eq!(ann.as_bool(), Some(false));

        // Trusting only node a's tuples: still derivable via the direct link.
        let mut repr = DerivabilityRepr {
            trust: Box::new(|_, loc| loc == 0),
        };
        let (ann, _) = build_example(&mut repr);
        assert_eq!(ann.as_bool(), Some(true));
        assert!(
            repr.exceeds_threshold(&ann, 0),
            "derivability can stop early"
        );
    }

    #[test]
    fn bdd_applies_absorption_and_supports_trust_queries() {
        let mut repr = BddRepr::new();
        let (ann, [link_ac, link_ba, link_bc]) = build_example(&mut repr);
        // Derivable when everything is trusted.
        assert!(repr.derivable_under(&ann, |_| true));
        // Not derivable when nothing is trusted.
        assert!(!repr.derivable_under(&ann, |_| false));
        // Trusting only link(@a,c,5) suffices (the direct derivation).
        assert!(repr.derivable_under(&ann, |v| v == link_ac));
        // Trusting only one of the two b-side links is not enough.
        assert!(!repr.derivable_under(&ann, |v| v == link_ba));
        assert!(repr.derivable_under(&ann, |v| v == link_ba || v == link_bc));
        assert!(repr.wire_size(&ann) > 4);
    }

    #[test]
    fn bdd_absorption_shrinks_redundant_provenance() {
        // a + a·b condenses to a: the wire size with absorption is no larger
        // than the single-variable BDD.
        let mut repr = BddRepr::new();
        let va = vid("a", 0);
        let vb = vid("b", 1);
        let ea = repr.p_edb(va, 0);
        let eb = repr.p_edb(vb, 1);
        let prod = repr.p_rule("r", 0, &[ea.clone(), eb]);
        let sum = repr.p_idb(0, &[ea.clone(), prod]);
        assert_eq!(sum, ea, "BDD canonicity applies absorption");

        // The equivalent polynomial keeps both derivations (no information
        // loss but larger size) — exactly the trade-off of §6.3.
        let mut poly = PolynomialRepr;
        let pa = poly.p_edb(va, 0);
        let pb = poly.p_edb(vb, 1);
        let pprod = poly.p_rule("r", 0, &[pa.clone(), pb]);
        let psum = poly.p_idb(0, &[pa, pprod]);
        assert_eq!(psum.as_expr().unwrap().num_derivations(), 2);
        assert!(poly.wire_size(&psum) > repr.wire_size(&sum));
    }

    #[test]
    fn trust_domain_collapses_nodes_into_domains() {
        // Nodes 0..99 -> domain 0, 100..199 -> domain 1 (contiguous blocks).
        let mut repr = TrustDomainRepr::contiguous(100);
        let e1 = repr.p_edb(vid("x", 5), 5);
        let e2 = repr.p_edb(vid("y", 150), 150);
        let r = repr.p_rule("sp2", 7, &[e1, e2]);
        let ann = repr.p_idb(5, &[r]);
        match &ann {
            Annotation::Domains(d) => {
                assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
            }
            other => panic!("unexpected annotation {other:?}"),
        }
        assert_eq!(repr.wire_size(&ann), 2 + 8);

        // Explicit map.
        let mut map = HashMap::new();
        map.insert(5u32, 7u32);
        let mut repr = TrustDomainRepr::new(map);
        let e = repr.p_edb(vid("x", 5), 5);
        assert_eq!(e, Annotation::Domains(std::iter::once(7).collect()));
    }

    #[test]
    fn polynomial_single_derivation_is_not_wrapped_in_sum() {
        let mut repr = PolynomialRepr;
        let e = repr.p_edb(vid("a", 0), 0);
        let r = repr.p_rule("sp1", 0, &[e]);
        let idb = repr.p_idb(0, std::slice::from_ref(&r));
        assert_eq!(idb, r);
    }

    #[test]
    fn annotation_accessors() {
        assert_eq!(Annotation::Count(3).as_count(), Some(3));
        assert_eq!(Annotation::Bool(true).as_bool(), Some(true));
        assert!(Annotation::Count(3).as_bool().is_none());
        assert!(Annotation::Bool(true).as_count().is_none());
        assert!(Annotation::Count(3).as_expr().is_none());
        assert!(Annotation::Count(3).as_nodes().is_none());
    }
}
