//! Provenance distribution modes (§3, "Distribution").

use serde::{Deserialize, Serialize};

/// How provenance is maintained and distributed for a protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProvenanceMode {
    /// No provenance at all — the baseline ("No Prov." in the figures).
    None,
    /// Reference-based distributed provenance: only a `(RID, RLoc)` pointer is
    /// shipped with each derivation; the provenance graph is stored in the
    /// distributed `prov` / `ruleExec` tables and resolved on demand by
    /// distributed queries.  This is the paper's main contribution.
    Reference,
    /// Value-based distributed provenance: every transmitted tuple carries its
    /// entire derivation history, condensed as a BDD
    /// ("Value-based Prov. (BDD)" in the figures).
    ValueBdd,
    /// Reference-based maintenance plus mirroring of every `prov` / `ruleExec`
    /// entry to a central server node (centralized provenance, §3).
    Centralized {
        /// The node acting as the central provenance server.
        server: u32,
    },
}

impl ProvenanceMode {
    /// Label used in experiment output, matching the figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            ProvenanceMode::None => "No Prov.",
            ProvenanceMode::Reference => "Ref-based Prov.",
            ProvenanceMode::ValueBdd => "Value-based Prov. (BDD)",
            ProvenanceMode::Centralized { .. } => "Centralized Prov.",
        }
    }

    /// Whether this mode maintains the distributed `prov`/`ruleExec` tables.
    pub fn maintains_provenance_tables(&self) -> bool {
        matches!(
            self,
            ProvenanceMode::Reference | ProvenanceMode::Centralized { .. }
        )
    }
}

impl std::fmt::Display for ProvenanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(ProvenanceMode::None.label(), "No Prov.");
        assert_eq!(ProvenanceMode::Reference.label(), "Ref-based Prov.");
        assert_eq!(ProvenanceMode::ValueBdd.label(), "Value-based Prov. (BDD)");
        assert_eq!(
            ProvenanceMode::Centralized { server: 0 }.to_string(),
            "Centralized Prov."
        );
    }

    #[test]
    fn table_maintenance_classification() {
        assert!(!ProvenanceMode::None.maintains_provenance_tables());
        assert!(!ProvenanceMode::ValueBdd.maintains_provenance_tables());
        assert!(ProvenanceMode::Reference.maintains_provenance_tables());
        assert!(ProvenanceMode::Centralized { server: 3 }.maintains_provenance_tables());
    }
}
