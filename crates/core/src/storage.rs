//! Typed access to the distributed provenance storage model (§4.1).
//!
//! The provenance graph is stored in two relations partitioned across all
//! nodes:
//!
//! * `prov(@Loc, VID, RID, RLoc)` — the tuple vertex `VID` stored at `Loc` is
//!   directly derivable from the rule execution `RID` residing at `RLoc`.
//!   Base tuples carry the all-zero ("null") RID.
//! * `ruleExec(@RLoc, RID, R, VIDList)` — rule `R` executed at `RLoc` with
//!   the input tuple vertices listed in `VIDList`.
//!
//! These relations are ordinary engine tables (they are maintained by the
//! rewritten NDlog rules); this module merely parses their tuples into typed
//! entries for the query layer and re-creates the paper's Tables 1 and 2.

use exspan_runtime::Engine;
use exspan_types::{Digest, NodeId, Rid, Tuple, Value, Vid};

/// A typed `prov` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvEntry {
    /// Node storing the tuple vertex.
    pub loc: NodeId,
    /// Tuple vertex identifier.
    pub vid: Vid,
    /// Rule execution that derived it, or `None` for base (EDB) tuples.
    pub rid: Option<Rid>,
    /// Node at which that rule execution resides.
    pub rloc: NodeId,
}

impl ProvEntry {
    /// Parses a `prov` tuple.
    pub fn from_tuple(tuple: &Tuple) -> Option<ProvEntry> {
        if tuple.relation != "prov" || tuple.values.len() != 3 {
            return None;
        }
        let vid = tuple.values[0].as_digest().ok()?;
        let rid = tuple.values[1].as_digest().ok()?;
        let rloc = tuple.values[2].as_node().ok()?;
        Some(ProvEntry {
            loc: tuple.location,
            vid,
            rid: if rid == Digest::ZERO { None } else { Some(rid) },
            rloc,
        })
    }

    /// Renders this entry as a `prov` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(
            "prov",
            self.loc,
            vec![
                Value::from_digest(self.vid),
                Value::from_digest(self.rid.unwrap_or(Digest::ZERO)),
                Value::Node(self.rloc),
            ],
        )
    }

    /// Whether this entry marks a base (EDB) tuple.
    pub fn is_base(&self) -> bool {
        self.rid.is_none()
    }
}

/// A typed `ruleExec` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleExecEntry {
    /// Node at which the rule executed.
    pub rloc: NodeId,
    /// Rule execution identifier.
    pub rid: Rid,
    /// Rule label (e.g. `"sp2"`).
    pub rule: String,
    /// Vertex identifiers of the input tuples, in body order.
    pub vids: Vec<Vid>,
}

impl RuleExecEntry {
    /// Parses a `ruleExec` tuple.
    pub fn from_tuple(tuple: &Tuple) -> Option<RuleExecEntry> {
        if tuple.relation != "ruleExec" || tuple.values.len() != 3 {
            return None;
        }
        let rid = tuple.values[0].as_digest().ok()?;
        let rule = tuple.values[1].as_str().ok()?.to_string();
        let vids = tuple.values[2]
            .as_list()
            .ok()?
            .iter()
            .map(exspan_types::Value::as_digest)
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        Some(RuleExecEntry {
            rloc: tuple.location,
            rid,
            rule,
            vids,
        })
    }

    /// Renders this entry as a `ruleExec` tuple.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(
            "ruleExec",
            self.rloc,
            vec![
                Value::from_digest(self.rid),
                Value::from(self.rule.clone()),
                Value::list(self.vids.iter().map(|v| Value::Digest(v.0)).collect()),
            ],
        )
    }
}

/// Returns all `prov` entries for `vid` stored at `node`.
///
/// Reads the table through the shared-handle path: parsing borrows each row
/// instead of deep-copying the whole `prov` table per query step.
pub fn prov_entries(engine: &Engine, node: NodeId, vid: Vid) -> Vec<ProvEntry> {
    engine
        .tuples_shared(node, "prov")
        .iter()
        .filter_map(|t| ProvEntry::from_tuple(t))
        .filter(|e| e.vid == vid)
        .collect()
}

/// Returns the `ruleExec` entry for `rid` stored at `node`, if any.
pub fn rule_exec_entry(engine: &Engine, node: NodeId, rid: Rid) -> Option<RuleExecEntry> {
    engine
        .tuples_shared(node, "ruleExec")
        .iter()
        .filter_map(|t| RuleExecEntry::from_tuple(t))
        .find(|e| e.rid == rid)
}

/// Returns every `prov` entry stored anywhere in the network (used by tests
/// and the paper-example reproduction of Table 1).
pub fn all_prov_entries(engine: &Engine) -> Vec<ProvEntry> {
    engine
        .tuples_everywhere_shared("prov")
        .iter()
        .filter_map(|t| ProvEntry::from_tuple(t))
        .collect()
}

/// Returns every `ruleExec` entry stored anywhere in the network (Table 2).
pub fn all_rule_exec_entries(engine: &Engine) -> Vec<RuleExecEntry> {
    engine
        .tuples_everywhere_shared("ruleExec")
        .iter()
        .filter_map(|t| RuleExecEntry::from_tuple(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_entry_round_trips_and_detects_base() {
        let t = Tuple::new("link", 1, vec![Value::Node(2), Value::Int(3)]);
        let base = ProvEntry {
            loc: 1,
            vid: t.vid(),
            rid: None,
            rloc: 1,
        };
        let parsed = ProvEntry::from_tuple(&base.to_tuple()).unwrap();
        assert_eq!(parsed, base);
        assert!(parsed.is_base());

        let derived = ProvEntry {
            loc: 0,
            vid: t.vid(),
            rid: Some(exspan_types::tuple::rule_exec_id("sp1", 1, &[t.vid()])),
            rloc: 1,
        };
        let parsed = ProvEntry::from_tuple(&derived.to_tuple()).unwrap();
        assert_eq!(parsed, derived);
        assert!(!parsed.is_base());
    }

    #[test]
    fn rule_exec_entry_round_trips() {
        let vids = vec![
            Tuple::new("link", 1, vec![Value::Node(2), Value::Int(3)]).vid(),
            Tuple::new("bestPathCost", 1, vec![Value::Node(2), Value::Int(3)]).vid(),
        ];
        let e = RuleExecEntry {
            rloc: 1,
            rid: exspan_types::tuple::rule_exec_id("sp2", 1, &vids),
            rule: "sp2".into(),
            vids,
        };
        assert_eq!(RuleExecEntry::from_tuple(&e.to_tuple()).unwrap(), e);
    }

    #[test]
    fn malformed_tuples_are_rejected() {
        let bad = Tuple::new("prov", 0, vec![Value::Int(1)]);
        assert!(ProvEntry::from_tuple(&bad).is_none());
        let wrong_rel = Tuple::new(
            "other",
            0,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        assert!(ProvEntry::from_tuple(&wrong_rel).is_none());
        let bad_exec = Tuple::new("ruleExec", 0, vec![Value::Int(1)]);
        assert!(RuleExecEntry::from_tuple(&bad_exec).is_none());
    }
}
