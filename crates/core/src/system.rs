//! The top-level ExSPAN facade: build an engine for a protocol under a chosen
//! provenance mode, seed the topology, run it, mutate it (churn) and query
//! its provenance.

use crate::mode::ProvenanceMode;
use crate::query::{QueryEngine, QueryOutcome, TraversalOrder};
use crate::repr::{Annotation, ProvenanceRepr};
use crate::rewrite::{provenance_rewrite, RewriteOptions};
use crate::value_policy::ValueBddPolicy;
use exspan_ndlog::ast::Program;
use exspan_netsim::{ChurnEvent, LinkProps, Topology};
use exspan_runtime::{Engine, EngineConfig, FixpointStats, ShardConfig, SharedPolicy};
use exspan_types::{NodeId, Tuple, Value};
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration of a [`ProvenanceSystem`].
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Provenance mode.
    pub mode: ProvenanceMode,
    /// Safety cap on processed events per run call.
    pub max_steps: u64,
    /// How many shards (worker threads) execute the protocol.  One shard
    /// reproduces the historical sequential engine; more shards run the same
    /// computation in parallel with bit-identical results.
    pub shards: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            mode: ProvenanceMode::Reference,
            max_steps: 200_000_000,
            shards: 1,
        }
    }
}

/// An ExSPAN deployment: a protocol, a topology, and a provenance mode.
pub struct ProvenanceSystem {
    engine: Engine,
    mode: ProvenanceMode,
    value_policy: Option<Arc<Mutex<ValueBddPolicy>>>,
    program_name: String,
}

impl ProvenanceSystem {
    /// Builds a system running `program` over `topology` with the provenance
    /// mode of `config`.
    pub fn new(program: &Program, topology: Topology, config: SystemConfig) -> Self {
        let mut engine_config = EngineConfig {
            aggregate_provenance: false,
            max_steps: config.max_steps,
            shards: ShardConfig::with_shards(config.shards.max(1)),
        };
        let mut value_policy = None;
        let executed = match config.mode {
            ProvenanceMode::None => program.clone(),
            ProvenanceMode::ValueBdd => program.clone(),
            ProvenanceMode::Reference => {
                engine_config.aggregate_provenance = true;
                provenance_rewrite(program, RewriteOptions::default())
            }
            ProvenanceMode::Centralized { server } => {
                engine_config.aggregate_provenance = true;
                provenance_rewrite(
                    program,
                    RewriteOptions {
                        centralize_at: Some(server),
                    },
                )
            }
        };
        let mut engine = Engine::new(executed, topology, engine_config);
        if config.mode == ProvenanceMode::ValueBdd {
            let shared = Arc::new(Mutex::new(ValueBddPolicy::new()));
            value_policy = Some(Arc::clone(&shared));
            engine.set_annotation_policy(shared as SharedPolicy);
        }
        ProvenanceSystem {
            engine,
            mode: config.mode,
            value_policy,
            program_name: program.name.clone(),
        }
    }

    /// Convenience constructor with default configuration except the mode.
    pub fn with_mode(program: &Program, topology: Topology, mode: ProvenanceMode) -> Self {
        Self::new(
            program,
            topology,
            SystemConfig {
                mode,
                ..Default::default()
            },
        )
    }

    /// The provenance mode in use.
    pub fn mode(&self) -> ProvenanceMode {
        self.mode
    }

    /// The name of the protocol program being executed.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The underlying engine (mutable — used by the query layer).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The value-based provenance policy (only in [`ProvenanceMode::ValueBdd`]).
    pub fn value_provenance(&self) -> Option<MutexGuard<'_, ValueBddPolicy>> {
        self.value_policy
            .as_ref()
            .map(|p| p.lock().expect("value policy poisoned"))
    }

    // ------------------------------------------------------------------
    // Topology and base-tuple management
    // ------------------------------------------------------------------

    /// Creates the `link(@a,b,cost)` tuple for one direction of a link.
    pub fn link_tuple(a: NodeId, b: NodeId, cost: i64) -> Tuple {
        Tuple::new("link", a, vec![Value::Node(b), Value::Int(cost)])
    }

    /// Inserts both directions of every topology link as `link` base tuples
    /// (the paper assumes symmetric links and gives every node a priori
    /// knowledge of its local links).
    pub fn seed_links(&mut self) {
        let links: Vec<(NodeId, NodeId, i64)> = self
            .engine
            .topology()
            .links()
            .map(|(a, b, p)| (a, b, p.cost))
            .collect();
        for (a, b, cost) in links {
            self.engine.insert_base(a, Self::link_tuple(a, b, cost));
            self.engine.insert_base(b, Self::link_tuple(b, a, cost));
        }
    }

    /// Adds a link to the topology and inserts its base tuples (both
    /// directions) at the current simulated time.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, props: LinkProps) {
        self.engine.topology_mut().add_link(a, b, props);
        self.engine
            .insert_base(a, Self::link_tuple(a, b, props.cost));
        self.engine
            .insert_base(b, Self::link_tuple(b, a, props.cost));
    }

    /// Removes a link from the topology and deletes its base tuples.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) {
        let cost = self
            .engine
            .topology()
            .link(a, b)
            .map(|p| p.cost)
            .unwrap_or(1);
        self.engine.topology_mut().remove_link(a, b);
        self.engine.delete_base(a, Self::link_tuple(a, b, cost));
        self.engine.delete_base(b, Self::link_tuple(b, a, cost));
    }

    /// Applies one churn event (link addition or deletion) now.
    pub fn apply_churn_event(&mut self, event: &ChurnEvent) {
        let now = self.engine.now();
        self.schedule_churn_event(event, now);
    }

    /// Schedules one churn event's base-tuple deltas at absolute simulated
    /// time `at`, so that maintenance traffic shows up at the schedule's
    /// time in the bandwidth time-series (Figures 9 and 10).  The topology
    /// change itself takes effect immediately — the simulator routes by
    /// current topology — which is at most one churn interval early.  For
    /// immediate application use [`Self::apply_churn_event`].
    pub fn schedule_churn_event(&mut self, event: &ChurnEvent, at: f64) {
        if event.add {
            self.engine
                .topology_mut()
                .add_link(event.a, event.b, event.props);
            let cost = event.props.cost;
            self.engine
                .schedule_delta(at, event.a, Self::link_tuple(event.a, event.b, cost), true);
            self.engine
                .schedule_delta(at, event.b, Self::link_tuple(event.b, event.a, cost), true);
        } else {
            let cost = self
                .engine
                .topology()
                .link(event.a, event.b)
                .map(|p| p.cost)
                .unwrap_or(event.props.cost);
            self.engine.topology_mut().remove_link(event.a, event.b);
            self.engine.schedule_delta(
                at,
                event.a,
                Self::link_tuple(event.a, event.b, cost),
                false,
            );
            self.engine.schedule_delta(
                at,
                event.b,
                Self::link_tuple(event.b, event.a, cost),
                false,
            );
        }
    }

    /// Base-tuple VIDs affected by a churn event (used for cache
    /// invalidation).
    pub fn churn_event_vids(event: &ChurnEvent) -> Vec<exspan_types::Vid> {
        vec![
            Self::link_tuple(event.a, event.b, event.props.cost).vid(),
            Self::link_tuple(event.b, event.a, event.props.cost).vid(),
        ]
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs the protocol to a global fixpoint.
    pub fn run_to_fixpoint(&mut self) -> FixpointStats {
        self.engine.run_to_fixpoint()
    }

    /// Runs until the next event would occur after `time`.
    pub fn run_until(&mut self, time: f64) -> FixpointStats {
        self.engine.run_until(time)
    }

    /// Total bytes transmitted so far across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.engine.stats().total_bytes()
    }

    /// Average bytes transmitted per node, in megabytes (the metric of
    /// Figures 6 and 7).
    pub fn avg_comm_mb(&self) -> f64 {
        self.engine.stats().avg_bytes_per_node() / 1e6
    }

    /// Per-node average bandwidth samples in megabytes per second (the metric
    /// of Figures 8–10 and 16).
    pub fn avg_bandwidth_mbps(&self) -> Vec<(f64, f64)> {
        self.engine
            .stats()
            .avg_bandwidth_samples()
            .into_iter()
            .map(|(t, bps)| (t, bps / 1e6))
            .collect()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Runs a single provenance query to completion and returns its outcome.
    ///
    /// This is a convenience wrapper for examples and tests; experiment
    /// drivers that issue many concurrent queries build a [`QueryEngine`]
    /// directly against [`ProvenanceSystem::engine_mut`].
    pub fn query_provenance(
        &mut self,
        issuer: NodeId,
        target: &Tuple,
        repr: Box<dyn ProvenanceRepr>,
        traversal: TraversalOrder,
    ) -> (QueryEngine, QueryOutcome) {
        let mut qe = QueryEngine::new(repr, traversal);
        let idx = qe.query_now(&mut self.engine, issuer, target);
        qe.run(&mut self.engine);
        let outcome = qe.outcomes()[idx].clone();
        (qe, outcome)
    }

    /// For value-based provenance: returns the locally available annotation of
    /// a tuple without any distributed traversal.
    pub fn local_value_annotation(&self, tuple: &Tuple) -> Option<Annotation> {
        self.value_policy
            .as_ref()
            .and_then(|p| {
                p.lock()
                    .expect("value policy poisoned")
                    .annotation_of(tuple)
            })
            .map(Annotation::Bdd)
    }
}

impl std::fmt::Debug for ProvenanceSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenanceSystem")
            .field("program", &self.program_name)
            .field("mode", &self.mode)
            .field("nodes", &self.engine.topology().num_nodes())
            .finish()
    }
}
