//! Deprecated pre-[`crate::deployment`] facade.
//!
//! [`ProvenanceSystem`] predates the first-class [`crate::Deployment`] API:
//! it exposed the engine mutably (`engine_mut`) so callers hand-drove a
//! separate [`crate::QueryEngine`], leaked `MutexGuard`s from
//! `value_provenance`, and returned awkward `(QueryEngine, QueryOutcome)`
//! tuples from `query_provenance`.  It survives as a thin shim over
//! [`crate::Deployment`] so downstream code keeps compiling while it
//! migrates:
//!
//! | old | new |
//! |---|---|
//! | `ProvenanceSystem::new(&p, t, config)` + `seed_links()` | `Exspan::builder().program(p).topology(t).mode(m).shards(n).build()?` |
//! | `system.query_provenance(n, &t, Box::new(PolynomialRepr), order)` | `deployment.query(&t).issuer(n).repr(Repr::Polynomial).traversal(order).execute()` |
//! | `system.engine_mut()` + hand-driven `QueryEngine` | `deployment.query(..).submit()` + `deployment.run_until(t)` |
//! | `system.value_provenance()` (`MutexGuard`) | `deployment.with_value_provenance(\|p\| ..)` |

#![allow(deprecated)]

use crate::deployment::{Deployment, Exspan};
use crate::mode::ProvenanceMode;
use crate::query::{QueryEngine, QueryOutcome, TraversalOrder};
use crate::repr::{Annotation, ProvenanceRepr};
use crate::value_policy::ValueBddPolicy;
use exspan_ndlog::ast::Program;
use exspan_netsim::{ChurnEvent, LinkProps, Topology};
use exspan_runtime::{Engine, FixpointStats};
use exspan_types::{NodeId, Tuple};

/// Configuration of a [`ProvenanceSystem`].
#[deprecated(
    since = "0.1.0",
    note = "configure deployments with Exspan::builder() instead"
)]
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Provenance mode.
    pub mode: ProvenanceMode,
    /// Safety cap on processed events per run call.
    pub max_steps: u64,
    /// How many shards (worker threads) execute the protocol.
    pub shards: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            mode: ProvenanceMode::Reference,
            max_steps: 200_000_000,
            shards: 1,
        }
    }
}

/// An ExSPAN deployment under the pre-builder API.
#[deprecated(
    since = "0.1.0",
    note = "use Deployment (built with Exspan::builder()) instead"
)]
pub struct ProvenanceSystem {
    inner: Deployment,
}

impl ProvenanceSystem {
    /// Builds a system running `program` over `topology` with the provenance
    /// mode of `config`.
    ///
    /// # Panics
    ///
    /// Panics if the combination is invalid — the builder API returns a
    /// [`crate::BuildError`] instead.
    pub fn new(program: &Program, topology: Topology, config: SystemConfig) -> Self {
        let inner = Exspan::builder()
            .program(program.clone())
            .topology(topology)
            .mode(config.mode)
            .shards(config.shards.max(1))
            .max_steps(config.max_steps)
            .seed_links(false)
            .build()
            .expect("invalid deployment configuration");
        ProvenanceSystem { inner }
    }

    /// Convenience constructor with default configuration except the mode.
    pub fn with_mode(program: &Program, topology: Topology, mode: ProvenanceMode) -> Self {
        Self::new(
            program,
            topology,
            SystemConfig {
                mode,
                ..Default::default()
            },
        )
    }

    /// The provenance mode in use.
    pub fn mode(&self) -> ProvenanceMode {
        self.inner.mode()
    }

    /// The name of the protocol program being executed.
    pub fn program_name(&self) -> &str {
        self.inner.program_name()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        self.inner.engine()
    }

    /// The underlying engine (mutable).  The deployment API deliberately does
    /// not expose this escape hatch: queries are submitted with
    /// [`Deployment::query`] and progress under the deployment's own clock.
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.inner.engine_mut()
    }

    /// Runs `f` against the value-based provenance policy (only in
    /// [`ProvenanceMode::ValueBdd`]).  Replaces the old `MutexGuard`-leaking
    /// `value_provenance` accessor; see
    /// [`Deployment::with_value_provenance`].
    pub fn with_value_provenance<T>(&self, f: impl FnOnce(&ValueBddPolicy) -> T) -> Option<T> {
        self.inner.with_value_provenance(f)
    }

    // ------------------------------------------------------------------
    // Topology and base-tuple management
    // ------------------------------------------------------------------

    /// Creates the `link(@a,b,cost)` tuple for one direction of a link.
    pub fn link_tuple(a: NodeId, b: NodeId, cost: i64) -> Tuple {
        Deployment::link_tuple(a, b, cost)
    }

    /// Inserts both directions of every topology link as `link` base tuples.
    pub fn seed_links(&mut self) {
        self.inner.seed_links();
    }

    /// Adds a link to the topology and inserts its base tuples.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, props: LinkProps) {
        self.inner.add_link(a, b, props);
    }

    /// Removes a link from the topology and deletes its base tuples.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) {
        self.inner.remove_link(a, b);
    }

    /// Applies one churn event (link addition or deletion) now.
    pub fn apply_churn_event(&mut self, event: &ChurnEvent) {
        self.inner.apply_churn_event(event);
    }

    /// Schedules one churn event's base-tuple deltas at absolute simulated
    /// time `at`.
    pub fn schedule_churn_event(&mut self, event: &ChurnEvent, at: f64) {
        self.inner.schedule_churn_event(event, at);
    }

    /// Base-tuple VIDs affected by a churn event.
    pub fn churn_event_vids(event: &ChurnEvent) -> Vec<exspan_types::Vid> {
        Deployment::churn_event_vids(event)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs the protocol to a global fixpoint.
    pub fn run_to_fixpoint(&mut self) -> FixpointStats {
        self.inner.run_to_fixpoint()
    }

    /// Runs until the next event would occur after `time`.
    pub fn run_until(&mut self, time: f64) -> FixpointStats {
        self.inner.run_until(time)
    }

    /// Total bytes transmitted so far across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    /// Average bytes transmitted per node, in megabytes.
    pub fn avg_comm_mb(&self) -> f64 {
        self.inner.avg_comm_mb()
    }

    /// Per-node average bandwidth samples in megabytes per second.
    pub fn avg_bandwidth_mbps(&self) -> Vec<(f64, f64)> {
        self.inner.avg_bandwidth_mbps()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Runs a single provenance query to completion and returns its outcome,
    /// plus the throwaway query engine that executed it.
    pub fn query_provenance(
        &mut self,
        issuer: NodeId,
        target: &Tuple,
        repr: Box<dyn ProvenanceRepr>,
        traversal: TraversalOrder,
    ) -> (QueryEngine, QueryOutcome) {
        let mut qe = QueryEngine::new(repr, traversal);
        let engine = self.inner.engine_mut();
        let idx = qe.query_now(engine, issuer, target);
        qe.run(engine);
        let outcome = qe.outcomes()[idx].clone();
        (qe, outcome)
    }

    /// For value-based provenance: returns the locally available annotation of
    /// a tuple without any distributed traversal.
    pub fn local_value_annotation(&self, tuple: &Tuple) -> Option<Annotation> {
        self.inner.local_value_annotation(tuple)
    }
}

impl std::fmt::Debug for ProvenanceSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenanceSystem")
            .field("program", &self.inner.program_name())
            .field("mode", &self.inner.mode())
            .field("nodes", &self.inner.topology().num_nodes())
            .finish()
    }
}
