//! # exspan-core
//!
//! ExSPAN — *EXtenSible Provenance Aware Networked systems*: the network
//! provenance layer of the paper "Efficient Querying and Maintenance of
//! Network Provenance at Internet-Scale" (SIGMOD 2010).
//!
//! Given any NDlog program executed by the distributed engine of
//! `exspan-runtime`, this crate provides:
//!
//! * [`rewrite`] — the automatic program rewrite of §4.2 (Algorithm 1) that
//!   augments a protocol with rules maintaining the distributed provenance
//!   graph in the `prov` and `ruleExec` tables, shipping only a
//!   `(RID, RLoc)` pointer with each derivation (reference-based
//!   provenance).
//! * [`storage`] — typed access to the distributed `prov`/`ruleExec` tables
//!   (the storage model of §4.1, Tables 1 and 2).
//! * [`mode`] + [`deployment`] — the provenance distribution modes of §3
//!   (no provenance, reference-based, value-based with BDDs, centralized)
//!   behind the first-class [`deployment::Deployment`] API: validated builder
//!   construction ([`deployment::Exspan::builder`]), typed builder-style
//!   queries returning [`deployment::QueryHandle`]s, and one unified
//!   simulated clock advancing maintenance, churn and in-flight queries
//!   together.
//! * [`repr`] — the customizable representations of §5.2: provenance
//!   polynomials, node sets, derivation counts, derivability tests, BDD
//!   (absorption) provenance and trust-domain granularity, all expressed
//!   through the `f_pEDB` / `f_pIDB` / `f_pRULE` user-defined-function triple.
//! * [`query`] — the distributed recursive query protocol of §5.1 with the
//!   optimizations of §6: result caching along the reverse path with
//!   transitive invalidation, BFS / DFS / DFS-with-threshold / random
//!   moonwalk traversal orders.
//! * [`value_policy`] — value-based provenance as an engine annotation
//!   policy: every transmitted tuple carries its full (BDD-condensed)
//!   derivation history.

pub mod deployment;
pub mod mode;
pub mod query;
pub mod repr;
pub mod rewrite;
pub mod storage;
pub mod value_policy;

pub use deployment::{
    BuildError, Deployment, DeploymentBuilder, Exspan, QueryBuilder, QueryHandle, QuerySession,
};
pub use mode::ProvenanceMode;
pub use query::{
    CacheMaintenance, QueryError, QueryOutcome, QueryTrafficStats, SessionStats, Traversal,
    TraversalOrder,
};
pub use repr::{
    Annotation, BddRepr, DerivabilityRepr, DerivationCountRepr, NodeSetRepr, PolynomialRepr,
    ProvExpr, ProvenanceRepr, Repr, TrustDomainRepr,
};
pub use rewrite::{provenance_rewrite, RewriteOptions};
pub use storage::{ProvEntry, RuleExecEntry};
pub use value_policy::ValueBddPolicy;
