//! The provenance-maintenance rewrite (paper §4.2, Algorithm 1).
//!
//! Given a localized NDlog program, the rewrite produces an augmented program
//! that — when executed by the ordinary distributed engine — maintains the
//! distributed provenance graph as a side effect of protocol execution:
//!
//! * For every non-aggregate rule `h(@H1,…) :- t1(@X,…), …, tn(@X,…), c1, …`
//!   a *derivation rule* is generated that computes the rule-execution
//!   identifier `RID = SHA1(R + RLoc + VIDList)` and emits a local
//!   `e<H>Temp` event carrying everything needed to (a) install the
//!   `ruleExec` entry at the executing node, (b) ship the original derivation
//!   plus the `(RID, RLoc)` pointer to the head's location, and (c) install
//!   the `prov` entry there.
//! * Per derived relation, four *shared* rules consume those events: one
//!   installs `ruleExec`, one forwards the `e<H>` message, one re-derives the
//!   original head tuple (so the rewritten program subsumes the original),
//!   and one installs the `prov` entry.
//! * Per base relation, a rule installs the `prov` entry with a `null` RID,
//!   marking base tuples as EDB leaves of the provenance graph (Table 1).
//! * Aggregate (MIN/MAX) rules are left untouched: their provenance — the
//!   winning input tuple (§4.2.2) — is maintained natively by the engine
//!   when [`exspan_runtime::EngineConfig::aggregate_provenance`] is enabled.
//!
//! The only change to messages exchanged by the original protocol is the
//! extra `(RID, RLoc)` pair — 24 bytes — on each inter-node derivation, which
//! is precisely the reference-based provenance overhead evaluated in §7.

use exspan_ndlog::ast::{Atom, BodyItem, Expr, HeadArg, Program, Rule, RuleHead, TableDecl, Term};
use exspan_types::{NodeId, RelId, Symbol, Value};
use std::collections::BTreeMap;

/// Options controlling the rewrite.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteOptions {
    /// When set, every `prov` and `ruleExec` insertion is additionally
    /// forwarded to this node, modelling *centralized* provenance (§3): the
    /// full provenance graph is mirrored at one server.
    pub centralize_at: Option<NodeId>,
}

/// Capitalizes the first character of a relation name (used to build the
/// generated event-relation names, e.g. `pathCost` → `ePathCostTemp`).
fn capitalize(name: &str) -> String {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

/// Name of the temporary local event for a derived relation.
fn temp_event_name(relation: &str) -> String {
    format!("e{}Temp", capitalize(relation))
}

/// Name of the cross-node derivation event for a derived relation.
fn send_event_name(relation: &str) -> String {
    format!("e{}Prov", capitalize(relation))
}

/// Applies the provenance rewrite to `program`.
///
/// The input program is normalized first (head expressions become explicit
/// assignments) so that every head argument is a plain term.
pub fn provenance_rewrite(program: &Program, options: RewriteOptions) -> Program {
    let program = program.normalize();
    let mut out = Program::new(format!("{}+prov", program.name));
    out.tables = program.tables.clone();
    // The provenance tables themselves (set semantics: one row per edge of
    // the provenance graph).
    out.tables.push(TableDecl::new("prov", 4));
    out.tables.push(TableDecl::new("ruleExec", 4));

    // Group non-aggregate rules by head relation so the four shared rules are
    // emitted once per relation.
    let mut heads: BTreeMap<RelId, usize> = BTreeMap::new();

    for rule in &program.rules {
        if rule.is_aggregate() {
            // Aggregates keep their original form; the engine maintains their
            // provenance natively (winning-tuple child, §4.2.2).
            out.rules.push(rule.clone());
            continue;
        }
        out.rules.push(derivation_rule(rule));
        heads
            .entry(rule.head.relation)
            .or_insert(rule.head.args.len());
    }

    for (relation, arity) in &heads {
        out.rules.extend(shared_rules(relation.as_str(), *arity));
    }

    // Base-tuple provenance entries (null RID).
    for base in program.base_relations() {
        if let Some(decl) = program.table(base.as_str()) {
            out.rules.push(base_prov_rule(base.as_str(), decl.arity));
        }
    }

    // Optional centralized mirroring.
    if let Some(server) = options.centralize_at {
        out.tables.push(TableDecl::new("provCentral", 5));
        out.tables.push(TableDecl::new("ruleExecCentral", 5));
        out.rules.push(Rule::new(
            "prov_central",
            RuleHead::new(
                "provCentral",
                Term::Const(Value::Node(server)),
                vec![
                    HeadArg::Term(Term::var("Loc")),
                    HeadArg::Term(Term::var("VID")),
                    HeadArg::Term(Term::var("RID")),
                    HeadArg::Term(Term::var("RLoc")),
                ],
            ),
            vec![BodyItem::Atom(Atom::new(
                "prov",
                Term::var("Loc"),
                vec![Term::var("VID"), Term::var("RID"), Term::var("RLoc")],
            ))],
        ));
        out.rules.push(Rule::new(
            "rule_exec_central",
            RuleHead::new(
                "ruleExecCentral",
                Term::Const(Value::Node(server)),
                vec![
                    HeadArg::Term(Term::var("RLoc")),
                    HeadArg::Term(Term::var("RID")),
                    HeadArg::Term(Term::var("R")),
                    HeadArg::Term(Term::var("List")),
                ],
            ),
            vec![BodyItem::Atom(Atom::new(
                "ruleExec",
                Term::var("RLoc"),
                vec![Term::var("RID"), Term::var("R"), Term::var("List")],
            ))],
        ));
    }

    out
}

/// Builds the per-rule derivation rule (the analogue of `r20` in §4.2.1).
fn derivation_rule(rule: &Rule) -> Rule {
    let body_atoms: Vec<&Atom> = rule.body_atoms().collect();
    let body_loc = body_atoms
        .first()
        .map(|a| a.location.clone())
        .expect("validated rules have at least one body atom");

    let mut body = rule.body.clone();

    // RLoc = <body location>, R = <rule label>.
    body.push(BodyItem::Assign(
        "ProvRLoc".into(),
        Expr::Term(body_loc.clone()),
    ));
    body.push(BodyItem::Assign("ProvR".into(), Expr::constant(rule.label)));

    // PID_i = f_sha1("t_i", loc, args…) for each body atom.
    let mut pid_vars = Vec::new();
    for (i, atom) in body_atoms.iter().enumerate() {
        let pid = Symbol::intern(&format!("ProvPid{i}"));
        let mut args = vec![
            Expr::constant(atom.relation),
            Expr::Term(atom.location.clone()),
        ];
        args.extend(atom.args.iter().map(|t| Expr::Term(t.clone())));
        body.push(BodyItem::Assign(pid, Expr::call("f_sha1", args)));
        pid_vars.push(pid);
    }

    // List = f_append(PID_1, …, PID_n); RID = f_sha1(R, RLoc, List).
    body.push(BodyItem::Assign(
        "ProvList".into(),
        Expr::call("f_append", pid_vars.iter().map(|p| Expr::var(*p)).collect()),
    ));
    body.push(BodyItem::Assign(
        "ProvRid".into(),
        Expr::call(
            "f_sha1",
            vec![
                Expr::var("ProvR"),
                Expr::var("ProvRLoc"),
                Expr::var("ProvList"),
            ],
        ),
    ));

    // Head: e<H>Temp(@RLoc, H1, …, Ho, RID, R, List).
    let mut args = vec![head_location_as_arg(rule)];
    args.extend(rule.head.args.iter().cloned());
    args.push(HeadArg::Term(Term::var("ProvRid")));
    args.push(HeadArg::Term(Term::var("ProvR")));
    args.push(HeadArg::Term(Term::var("ProvList")));

    Rule::new(
        format!("{}_prov", rule.label),
        RuleHead::new(
            temp_event_name(rule.head.relation.as_str()),
            Term::var("ProvRLoc"),
            args,
        ),
        body,
    )
}

/// The original head location, re-expressed as an ordinary argument of the
/// temporary event.
fn head_location_as_arg(rule: &Rule) -> HeadArg {
    HeadArg::Term(rule.head.location.clone())
}

/// Builds the four shared rules for one derived relation of arity
/// `1 + num_args` (location + `num_args` attributes).
fn shared_rules(relation: &str, num_args: usize) -> Vec<Rule> {
    let temp = temp_event_name(relation);
    let send = send_event_name(relation);
    // Variables H1 (head location) and A1..A<num_args>.
    let head_loc = Term::var("ProvH1");
    let arg_vars: Vec<Term> = (0..num_args)
        .map(|i| Term::var(format!("ProvA{i}")))
        .collect();

    // Body atom matching the temp event:
    //   e<H>Temp(@RLoc, H1, A…, RID, R, List)
    let temp_atom = |_with: ()| {
        let mut args = vec![head_loc.clone()];
        args.extend(arg_vars.iter().cloned());
        args.push(Term::var("ProvRid"));
        args.push(Term::var("ProvR"));
        args.push(Term::var("ProvList"));
        Atom::new(temp.clone(), Term::var("ProvRLoc"), args)
    };

    // Body atom matching the send event:
    //   e<H>Prov(@H1, A…, RID, RLoc)
    let send_atom = || {
        let mut args: Vec<Term> = arg_vars.clone();
        args.push(Term::var("ProvRid"));
        args.push(Term::var("ProvRLoc"));
        Atom::new(send.clone(), head_loc.clone(), args)
    };

    let mut rules = Vec::new();

    // ruleExec(@RLoc, RID, R, List) :- e<H>Temp(...).
    rules.push(Rule::new(
        format!("prov_{relation}_exec"),
        RuleHead::new(
            "ruleExec",
            Term::var("ProvRLoc"),
            vec![
                HeadArg::Term(Term::var("ProvRid")),
                HeadArg::Term(Term::var("ProvR")),
                HeadArg::Term(Term::var("ProvList")),
            ],
        ),
        vec![BodyItem::Atom(temp_atom(()))],
    ));

    // e<H>Prov(@H1, A…, RID, RLoc) :- e<H>Temp(...).
    let mut send_head_args: Vec<HeadArg> = arg_vars.iter().cloned().map(HeadArg::Term).collect();
    send_head_args.push(HeadArg::Term(Term::var("ProvRid")));
    send_head_args.push(HeadArg::Term(Term::var("ProvRLoc")));
    rules.push(Rule::new(
        format!("prov_{relation}_send"),
        RuleHead::new(send.clone(), head_loc.clone(), send_head_args),
        vec![BodyItem::Atom(temp_atom(()))],
    ));

    // h(@H1, A…) :- e<H>Prov(...).
    rules.push(Rule::new(
        format!("prov_{relation}_derive"),
        RuleHead::new(
            relation,
            head_loc.clone(),
            arg_vars.iter().cloned().map(HeadArg::Term).collect(),
        ),
        vec![BodyItem::Atom(send_atom())],
    ));

    // prov(@H1, VID, RID, RLoc) :- e<H>Prov(...), VID = f_sha1("h", H1, A…).
    let mut vid_args = vec![Expr::constant(relation), Expr::Term(head_loc.clone())];
    vid_args.extend(arg_vars.iter().map(|t| Expr::Term(t.clone())));
    rules.push(Rule::new(
        format!("prov_{relation}_prov"),
        RuleHead::new(
            "prov",
            head_loc.clone(),
            vec![
                HeadArg::Term(Term::var("ProvVid")),
                HeadArg::Term(Term::var("ProvRid")),
                HeadArg::Term(Term::var("ProvRLoc")),
            ],
        ),
        vec![
            BodyItem::Atom(send_atom()),
            BodyItem::Assign("ProvVid".into(), Expr::call("f_sha1", vid_args)),
        ],
    ));

    rules
}

/// Builds the base-relation provenance rule:
/// `prov(@X, VID, null, X) :- base(@X, A…), VID = f_sha1("base", X, A…).`
fn base_prov_rule(relation: &str, arity: usize) -> Rule {
    let num_args = arity.saturating_sub(1);
    let loc = Term::var("ProvX");
    let arg_vars: Vec<Term> = (0..num_args)
        .map(|i| Term::var(format!("ProvB{i}")))
        .collect();
    let mut vid_args = vec![Expr::constant(relation), Expr::Term(loc.clone())];
    vid_args.extend(arg_vars.iter().map(|t| Expr::Term(t.clone())));
    Rule::new(
        format!("prov_{relation}_base"),
        RuleHead::new(
            "prov",
            loc.clone(),
            vec![
                HeadArg::Term(Term::var("ProvVid")),
                HeadArg::Term(Term::Const(Value::Digest([0u8; 20]))),
                HeadArg::Term(loc.clone()),
            ],
        ),
        vec![
            BodyItem::Atom(Atom::new(relation, loc.clone(), arg_vars)),
            BodyItem::Assign("ProvVid".into(), Expr::call("f_sha1", vid_args)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_ndlog::programs;
    use exspan_ndlog::validate::validate_program;

    #[test]
    fn rewritten_mincost_validates_and_has_expected_structure() {
        let p = provenance_rewrite(&programs::mincost(), RewriteOptions::default());
        validate_program(&p).expect("rewritten program must validate");
        // sp1 and sp2 each get a derivation rule; sp3 (aggregate) is kept.
        assert!(p.rule("sp1_prov").is_some());
        assert!(p.rule("sp2_prov").is_some());
        assert!(p.rule("sp3").is_some());
        assert!(
            p.rule("sp1").is_none(),
            "original non-aggregate rules are subsumed"
        );
        // Shared rules exist once for pathCost.
        assert!(p.rule("prov_pathCost_exec").is_some());
        assert!(p.rule("prov_pathCost_send").is_some());
        assert!(p.rule("prov_pathCost_derive").is_some());
        assert!(p.rule("prov_pathCost_prov").is_some());
        // Base provenance for link.
        assert!(p.rule("prov_link_base").is_some());
        // prov / ruleExec tables are declared.
        assert!(p.table("prov").is_some());
        assert!(p.table("ruleExec").is_some());
    }

    #[test]
    fn derivation_rule_computes_rid_from_body_vids() {
        let p = provenance_rewrite(&programs::mincost(), RewriteOptions::default());
        let r = p.rule("sp2_prov").unwrap();
        // Two body atoms -> two PID assignments, plus RLoc, R, List, RID and
        // the original normalized C assignment.
        let assigns: Vec<&str> = r
            .body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Assign(v, _) => Some(v.as_str()),
                _ => None,
            })
            .collect();
        assert!(assigns.contains(&"ProvPid0"));
        assert!(assigns.contains(&"ProvPid1"));
        assert!(assigns.contains(&"ProvList"));
        assert!(assigns.contains(&"ProvRid"));
        assert!(assigns.contains(&"ProvRLoc"));
        assert!(assigns.contains(&"ProvR"));
        // The head is the temporary event at the rule location with
        // original-head-arity + 4 arguments (H1, D, C, RID, R, List).
        assert_eq!(r.head.relation, "ePathCostTemp");
        assert_eq!(r.head.args.len(), 3 + 3);
    }

    #[test]
    fn shared_rules_are_not_duplicated_per_source_rule() {
        // sp1 and sp2 both derive pathCost; the exec/send/derive/prov rules
        // must appear exactly once to avoid double derivations.
        let p = provenance_rewrite(&programs::mincost(), RewriteOptions::default());
        let count = |label: &str| p.rules.iter().filter(|r| r.label == label).count();
        assert_eq!(count("prov_pathCost_exec"), 1);
        assert_eq!(count("prov_pathCost_send"), 1);
        assert_eq!(count("prov_pathCost_derive"), 1);
        assert_eq!(count("prov_pathCost_prov"), 1);
    }

    #[test]
    fn rewritten_path_vector_and_packet_forward_validate() {
        for program in [programs::path_vector(), programs::packet_forward()] {
            let p = provenance_rewrite(&program, RewriteOptions::default());
            validate_program(&p)
                .unwrap_or_else(|e| panic!("rewrite of {} failed validation: {e:?}", program.name));
        }
    }

    #[test]
    fn centralized_option_adds_mirroring_rules() {
        let p = provenance_rewrite(
            &programs::mincost(),
            RewriteOptions {
                centralize_at: Some(0),
            },
        );
        assert!(p.rule("prov_central").is_some());
        assert!(p.rule("rule_exec_central").is_some());
        assert!(p.table("provCentral").is_some());
        validate_program(&p).expect("centralized rewrite must validate");
    }

    #[test]
    fn event_head_relations_are_rewritten_too() {
        // PACKETFORWARD's f1 rule derives the ePacket event; its rewrite must
        // produce a derivation rule and shared rules for ePacket.
        let p = provenance_rewrite(&programs::packet_forward(), RewriteOptions::default());
        assert!(p.rule("f1_prov").is_some());
        assert!(p.rule("prov_ePacket_derive").is_some());
    }

    #[test]
    fn rewritten_programs_compile_join_plans_with_index_demands() {
        // The derivation rules carry the original multi-atom bodies, so the
        // rewritten program must demand the same hot-path indexes as the
        // original — the provenance overhead must not reintroduce scans.
        use exspan_ndlog::plan::ProgramPlans;
        let original = ProgramPlans::compile(&programs::path_vector().normalize());
        let rewritten = ProgramPlans::compile(
            &provenance_rewrite(&programs::path_vector(), RewriteOptions::default()).normalize(),
        );
        let path = RelId::intern("path");
        let original_path = original.demands.get(&path).expect("path indexed");
        let rewritten_path = rewritten.demands.get(&path).expect("path still indexed");
        assert!(
            original_path.is_subset(rewritten_path),
            "rewrite lost index demands: {original_path:?} vs {rewritten_path:?}"
        );
        // The aggregate rules survive the rewrite untouched, so their group
        // re-enumeration plans are compiled for the rewritten program too.
        assert!(!rewritten.aggregates.is_empty());
        // And the same holds under centralized mirroring.
        let centralized = ProgramPlans::compile(
            &provenance_rewrite(
                &programs::path_vector(),
                RewriteOptions {
                    centralize_at: Some(0),
                },
            )
            .normalize(),
        );
        assert!(centralized.demands.contains_key(&path));
    }

    #[test]
    fn rewrite_preserves_analysis_verdict() {
        // Every analyzer-accepted builtin must stay error-free after the
        // provenance rewrite (reference and centralized): the rewrite runs
        // after analysis, so an error it introduced would mean deploying a
        // program the analyzer never accepted.
        for program in [
            programs::mincost(),
            programs::path_vector(),
            programs::packet_forward(),
        ] {
            assert!(!exspan_ndlog::analyze(&program).has_errors());
            for options in [
                RewriteOptions::default(),
                RewriteOptions {
                    centralize_at: Some(0),
                },
            ] {
                let rewritten = provenance_rewrite(&program, options);
                let analysis = exspan_ndlog::analyze(&rewritten);
                assert!(
                    !analysis.has_errors(),
                    "rewrite of {} introduced analysis errors:\n{}",
                    program.name,
                    analysis.diagnostics.render(None)
                );
            }
        }
    }

    #[test]
    fn capitalize_behaviour() {
        assert_eq!(capitalize("pathCost"), "PathCost");
        assert_eq!(capitalize("ePacket"), "EPacket");
        assert_eq!(capitalize(""), "");
        assert_eq!(temp_event_name("pathCost"), "ePathCostTemp");
        assert_eq!(send_event_name("bestPath"), "eBestPathProv");
    }
}
