//! Differential tests for incremental cache maintenance
//! (`CacheMaintenance::Incremental`, §6.1).
//!
//! The guarantee under test: after a base-tuple deletion, a cached query
//! session that *maintains* its entries in place returns exactly what an
//! invalidate-and-recompute session returns — at one shard and at four.
//! Polynomial results are compared as canonical monomial sets (the set of
//! derivations, each a sorted multiset of base-tuple VIDs), which is the
//! semantic content of a provenance polynomial and is insensitive to the
//! structural term ordering that recomputation may shuffle.  BDD results
//! are compared by evaluating both under a battery of trust assignments.

use exspan_core::{CacheMaintenance, Deployment, Exspan, ProvExpr, ProvenanceMode, Repr};
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::{Tuple, Vid};
use std::collections::BTreeSet;

fn deploy(shards: usize) -> Deployment {
    Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::testbed_ring(16, 5))
        .mode(ProvenanceMode::Reference)
        .shards(shards)
        .build()
        .expect("valid deployment")
}

/// Query targets with interesting provenance: every bestPathCost stored at
/// the first few nodes after the protocol converged.
fn targets(deployment: &Deployment) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = deployment
        .tuples_everywhere_shared("bestPathCost")
        .iter()
        .filter(|t| t.location < 6)
        .map(|t| (**t).clone())
        .collect();
    out.sort();
    out
}

/// Expands a polynomial into its canonical monomial set: one sorted VID list
/// per derivation.
fn monomials(e: &ProvExpr) -> BTreeSet<Vec<Vid>> {
    match e {
        ProvExpr::Base(v) => BTreeSet::from([vec![*v]]),
        ProvExpr::Sum { terms, .. } => terms.iter().flat_map(monomials).collect(),
        ProvExpr::Product { factors, .. } => {
            let mut acc: BTreeSet<Vec<Vid>> = BTreeSet::from([Vec::new()]);
            for f in factors {
                let fm = monomials(f);
                acc = acc
                    .iter()
                    .flat_map(|m| {
                        fm.iter().map(move |fm1| {
                            let mut combined = m.clone();
                            combined.extend(fm1.iter().copied());
                            combined.sort();
                            combined
                        })
                    })
                    .collect();
            }
            acc
        }
    }
}

/// One full scenario at a given shard count and maintenance policy:
/// converge, warm the cache, delete a ring link, re-converge, re-query.
/// Returns the canonical monomial sets of the second round of answers plus
/// the session's (maintained, invalidations) counters.
fn polynomial_round(
    shards: usize,
    maintenance: CacheMaintenance,
) -> (Vec<Option<BTreeSet<Vec<Vid>>>>, u64, u64) {
    let mut d = deploy(shards);
    d.run_to_fixpoint();
    let targets = targets(&d);
    assert!(!targets.is_empty(), "protocol produced no bestPathCost");
    for t in &targets {
        let _ = d
            .query(t)
            .repr(Repr::Polynomial)
            .cached(true)
            .maintenance(maintenance)
            .submit();
    }
    d.run_to_fixpoint();
    // Delete one ring link (both directions) and let retractions cascade.
    d.remove_link(2, 3);
    d.run_to_fixpoint();
    // Second round: same targets, answered from the maintained (or
    // recomputed) cache where entries survived.
    let mut handles = Vec::new();
    for t in &targets {
        handles.push(
            d.query(t)
                .repr(Repr::Polynomial)
                .cached(true)
                .maintenance(maintenance)
                .submit(),
        );
    }
    d.run_to_fixpoint();
    let answers = handles
        .iter()
        .map(|h| {
            d.outcome(*h)
                .and_then(|o| o.annotation.as_ref())
                .and_then(|a| a.as_expr())
                .map(monomials)
        })
        .collect();
    let stats = d.session(handles[0]).stats().clone();
    (answers, stats.cache_maintained, stats.invalidations)
}

#[test]
fn maintained_polynomials_match_recompute_at_one_and_four_shards() {
    let (oracle, zero_maintained, oracle_invalidations) =
        polynomial_round(1, CacheMaintenance::Invalidate);
    assert_eq!(
        zero_maintained, 0,
        "invalidate mode must never maintain in place"
    );
    assert!(
        oracle_invalidations > 0,
        "the deleted link must touch cached entries"
    );
    for shards in [1, 4] {
        let (maintained, maintained_count, _) =
            polynomial_round(shards, CacheMaintenance::Incremental);
        assert_eq!(
            oracle, maintained,
            "incremental maintenance diverged from invalidate-and-recompute at {shards} shard(s)"
        );
        assert!(
            maintained_count > 0,
            "incremental mode never exercised the maintenance path at {shards} shard(s)"
        );
    }
    // The invalidate oracle itself must be shard-count independent.
    let (oracle4, _, _) = polynomial_round(4, CacheMaintenance::Invalidate);
    assert_eq!(oracle, oracle4);
}

#[test]
fn maintained_bdd_answers_match_recompute_under_trust_assignments() {
    // Same scenario with the condensed (BDD) representation: compare the
    // two policies' answers semantically, by evaluating derivability under
    // a battery of trust assignments over base links.
    let run = |maintenance: CacheMaintenance| {
        let mut d = deploy(1);
        d.run_to_fixpoint();
        let targets = targets(&d);
        for t in &targets {
            let _ = d
                .query(t)
                .repr(Repr::Bdd)
                .cached(true)
                .maintenance(maintenance)
                .submit();
        }
        d.run_to_fixpoint();
        d.remove_link(2, 3);
        d.run_to_fixpoint();
        let mut handles = Vec::new();
        for t in &targets {
            handles.push(
                d.query(t)
                    .repr(Repr::Bdd)
                    .cached(true)
                    .maintenance(maintenance)
                    .submit(),
            );
        }
        d.run_to_fixpoint();
        // Distrust each node's outgoing links in turn, plus all-trusted.
        let link_vids_of = |node: u32, d: &Deployment| -> BTreeSet<Vid> {
            d.tuples_everywhere_shared("link")
                .iter()
                .filter(|t| t.location == node)
                .map(|t| t.vid())
                .collect()
        };
        let mut verdicts = Vec::new();
        for h in &handles {
            verdicts.push(d.derivable_under(*h, |_| true));
            for node in 0..8u32 {
                let distrusted = link_vids_of(node, &d);
                verdicts.push(d.derivable_under(*h, |v| !distrusted.contains(&v)));
            }
        }
        verdicts
    };
    let recomputed = run(CacheMaintenance::Invalidate);
    let maintained = run(CacheMaintenance::Incremental);
    assert!(recomputed.iter().any(Option::is_some));
    assert_eq!(recomputed, maintained);
}

#[test]
fn insertions_fall_back_to_invalidation() {
    // Incremental maintenance only prunes on deletion; an insertion must
    // invalidate exactly like the default policy — a cached annotation
    // cannot learn about derivations it has never seen.
    let mut d = deploy(1);
    d.run_to_fixpoint();
    let targets = targets(&d);
    let t = targets.first().expect("targets").clone();
    let h = d
        .query(&t)
        .repr(Repr::Polynomial)
        .cached(true)
        .maintenance(CacheMaintenance::Incremental)
        .submit();
    d.run_to_fixpoint();
    let before = d.session(h).cache_entries();
    assert!(before > 0);
    // Insert a brand-new link touching the cached path.
    d.add_link(
        2,
        9,
        exspan_netsim::LinkProps::from_class(exspan_netsim::LinkClass::Testbed),
    );
    d.run_to_fixpoint();
    let stats = d.session(h).stats().clone();
    assert_eq!(
        stats.cache_maintained, 0,
        "insertion must not take the maintenance path"
    );
    // And the query still answers correctly after the insertion.
    let h2 = d
        .query(&t)
        .repr(Repr::Polynomial)
        .cached(true)
        .maintenance(CacheMaintenance::Incremental)
        .submit();
    d.run_to_fixpoint();
    let ann = d.outcome(h2).and_then(|o| o.annotation.clone());
    assert!(
        ann.is_some(),
        "query after insertion produced no annotation"
    );
}
