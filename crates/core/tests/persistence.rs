//! Deployment-level persistence: WAL recovery, snapshots, spill, and the
//! determinism guarantees the store inherits from the runtime.
//!
//! The recovery oracle throughout is [`Deployment::state_digest`] — the SHA-1
//! of the canonical snapshot encoding, a pure function of logical state that
//! is independent of shard count, spill residency, and execution history.

use exspan_core::{Deployment, Exspan, ProvenanceMode};
use exspan_ndlog::programs;
use exspan_netsim::{LinkClass, LinkProps, Topology};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory (no `tempfile` dependency in this workspace).
/// Removed on drop; leaks only if the test panics, in which case the path
/// aids debugging.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "exspan-core-persist-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn builder(shards: usize) -> exspan_core::DeploymentBuilder {
    Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::testbed_ring(16, 7))
        .mode(ProvenanceMode::Reference)
        .shards(shards)
}

fn churn(d: &mut Deployment) {
    d.remove_link(0, 1);
    d.run_to_fixpoint();
    d.add_link(
        0,
        1,
        LinkProps {
            latency: 0.013,
            bandwidth: 80.0,
            cost: 2,
            class: LinkClass::Custom,
        },
    );
    d.run_to_fixpoint();
    d.remove_link(8, 9);
    d.run_to_fixpoint();
}

#[test]
fn reopen_recovers_identical_state_from_wal_only() {
    let scratch = Scratch::new("wal-only");
    let digest = {
        let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
        assert!(!d.recovered_from_store());
        d.run_to_fixpoint();
        churn(&mut d);
        let stats = d.storage_stats();
        assert!(stats.committed_batches > 0, "runs must commit WAL batches");
        assert!(stats.wal_bytes > 0);
        d.state_digest()
        // Dropped without checkpoint: recovery must come from the log alone.
    };
    let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
    assert!(d.recovered_from_store());
    assert!(d.storage_stats().recovered_batches > 0);
    assert_eq!(d.state_digest(), digest, "WAL replay diverged");
    // The recovered state is a quiescent fixpoint; running must not move it.
    d.run_to_fixpoint();
    assert_eq!(d.state_digest(), digest);
}

#[test]
fn checkpoint_makes_recovery_snapshot_only() {
    let scratch = Scratch::new("checkpoint");
    let digest = {
        let mut d = builder(2).data_dir(scratch.path()).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        d.checkpoint();
        assert!(d.storage_stats().snapshots_written >= 1);
        d.state_digest()
    };
    // After a checkpoint the log is truncated at the snapshot watermark, so
    // a reopen replays zero batches.
    let d = builder(2).data_dir(scratch.path()).build().unwrap();
    assert!(d.recovered_from_store());
    assert_eq!(d.storage_stats().recovered_batches, 0);
    assert_eq!(d.state_digest(), digest);
}

#[test]
fn recovered_deployment_continues_identically_to_uninterrupted_run() {
    // Oracle: one uninterrupted run.  Subject: same run split by a restart
    // in the middle.  Both must land on the same digest.
    let oracle = {
        let mut d = builder(1).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        d.remove_link(4, 5);
        d.run_to_fixpoint();
        d.state_digest()
    };
    let scratch = Scratch::new("resume");
    {
        let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
    }
    let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
    assert!(d.recovered_from_store());
    d.remove_link(4, 5);
    d.run_to_fixpoint();
    assert_eq!(d.state_digest(), oracle);
}

#[test]
fn snapshot_bytes_identical_across_shard_counts() {
    // Canonical snapshots are execution-independent *bytes*: the file a
    // 4-shard deployment writes is identical to the sequential engine's.
    let mut snapshots = Vec::new();
    for shards in [1usize, 4] {
        let scratch = Scratch::new("shardbytes");
        let mut d = builder(shards).data_dir(scratch.path()).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        d.checkpoint();
        snapshots.push(std::fs::read(scratch.path().join("snapshot.bin")).unwrap());
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "snapshot bytes depend on shard count"
    );
}

#[test]
fn spill_budget_preserves_observable_state() {
    let oracle = {
        let mut d = builder(1).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        (
            d.state_digest(),
            d.tuples_everywhere_shared("bestPathCost"),
            d.derivation_count(&d.tuples_everywhere_shared("bestPathCost")[0]),
        )
    };
    let scratch = Scratch::new("spill");
    let mut d = builder(1)
        .data_dir(scratch.path())
        .memory_budget_rows(32)
        .build()
        .unwrap();
    d.run_to_fixpoint();
    churn(&mut d);
    let stats = d.storage_stats();
    assert!(
        stats.tables_spilled > 0,
        "budget of 32 rows must force spill"
    );
    // Inspection APIs read spilled tables from disk without faulting them in.
    assert_eq!(d.tuples_everywhere_shared("bestPathCost"), oracle.1);
    assert_eq!(d.derivation_count(&oracle.1[0]), oracle.2);
    assert!(d.storage_stats().cold_reads > 0);
    // The digest is spill-independent.
    assert_eq!(d.state_digest(), oracle.0);
}

#[test]
fn spilled_store_recovers_after_restart() {
    let scratch = Scratch::new("spill-restart");
    let digest = {
        let mut d = builder(2)
            .data_dir(scratch.path())
            .memory_budget_rows(24)
            .build()
            .unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        assert!(d.storage_stats().tables_spilled > 0);
        d.state_digest()
    };
    // Spill files are a cache: recovery rebuilds from snapshot + WAL and the
    // stale spill files are discarded, budget enforcement then re-spills.
    let mut d = builder(2)
        .data_dir(scratch.path())
        .memory_budget_rows(24)
        .build()
        .unwrap();
    assert!(d.recovered_from_store());
    assert_eq!(d.state_digest(), digest);
    d.run_to_fixpoint();
    assert_eq!(d.state_digest(), digest);
}

#[test]
fn torn_wal_tail_recovers_cleanly_at_deployment_level() {
    use std::io::Write;
    let scratch = Scratch::new("torn");
    let digest = {
        let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
        d.run_to_fixpoint();
        churn(&mut d);
        d.state_digest()
    };
    // Simulate a crash mid-append: garbage past the last committed batch.
    let wal = scratch.path().join("wal.log");
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0x00, 0x00, 0x00, 0x2a, 0xde, 0xad, 0xbe])
        .unwrap();
    drop(f);
    let d = builder(1).data_dir(scratch.path()).build().unwrap();
    assert!(d.recovered_from_store());
    assert_eq!(d.state_digest(), digest, "torn tail corrupted recovery");
}

#[test]
fn node_count_mismatch_is_a_build_error() {
    let scratch = Scratch::new("mismatch");
    {
        let mut d = builder(1).data_dir(scratch.path()).build().unwrap();
        d.run_to_fixpoint();
        d.checkpoint();
    }
    let err = Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::testbed_ring(8, 3))
        .mode(ProvenanceMode::Reference)
        .data_dir(scratch.path())
        .build()
        .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("topology"), "unexpected error: {msg}");
}

#[test]
fn in_memory_default_reports_zero_storage_activity() {
    let mut d = builder(1).build().unwrap();
    d.run_to_fixpoint();
    let stats = d.storage_stats();
    assert_eq!(stats.committed_batches, 0);
    assert_eq!(stats.wal_bytes, 0);
    assert_eq!(stats.snapshots_written, 0);
    assert_eq!(stats.tables_spilled, 0);
}
