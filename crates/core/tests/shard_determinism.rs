//! Sharded-vs-sequential determinism at the `ProvenanceSystem` level.
//!
//! The tentpole guarantee of the sharded runtime is that every observable —
//! protocol state, per-node byte counters, the bandwidth time-series, and
//! (for value-based provenance) the annotation sizes that feed them — is
//! *bit-identical* to the sequential engine (`shards: 1`).  These tests pin
//! that guarantee for each provenance mode over topologies small enough for
//! debug-mode CI.

use exspan_core::{ProvenanceMode, ProvenanceSystem, SystemConfig};
use exspan_ndlog::ast::Program;
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::Tuple;

/// Everything a figure could observe about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    tuples: Vec<Tuple>,
    bytes_sent: Vec<u64>,
    total_bytes: u64,
    avg_comm_mb: f64,
    bandwidth: Vec<(f64, f64)>,
    fixpoint_time: f64,
}

fn run(program: &Program, mode: ProvenanceMode, shards: usize, churn: bool) -> Fingerprint {
    let topology = Topology::testbed_ring(32, 11);
    let mut system = ProvenanceSystem::new(
        program,
        topology,
        SystemConfig {
            mode,
            shards,
            ..Default::default()
        },
    );
    system.seed_links();
    let stats = system.run_to_fixpoint();
    if churn {
        // Fail a few ring edges and let the retractions cascade.
        for (a, b) in [(0u32, 1u32), (8, 9), (16, 17)] {
            system.remove_link(a, b);
        }
        system.run_to_fixpoint();
    }
    let engine = system.engine();
    let mut tuples = Vec::new();
    for rel in [
        "link",
        "pathCost",
        "bestPathCost",
        "bestPath",
        "prov",
        "ruleExec",
    ] {
        tuples.extend(engine.tuples_everywhere(rel));
    }
    let s = engine.stats();
    Fingerprint {
        tuples,
        bytes_sent: s.bytes_sent.clone(),
        total_bytes: s.total_bytes(),
        avg_comm_mb: system.avg_comm_mb(),
        bandwidth: system.avg_bandwidth_mbps(),
        fixpoint_time: stats.fixpoint_time,
    }
}

fn assert_modes_deterministic(program: &Program, churn: bool) {
    for mode in [
        ProvenanceMode::None,
        ProvenanceMode::Reference,
        ProvenanceMode::ValueBdd,
    ] {
        let oracle = run(program, mode, 1, churn);
        for shards in [2, 4] {
            let sharded = run(program, mode, shards, churn);
            assert_eq!(
                oracle, sharded,
                "{mode:?} with {shards} shards diverged from the sequential oracle (churn={churn})"
            );
        }
    }
}

#[test]
fn mincost_all_modes_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::mincost(), false);
}

#[test]
fn mincost_with_link_failures_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::mincost(), true);
}

#[test]
fn path_vector_all_modes_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::path_vector(), false);
}

#[test]
fn value_mode_annotations_identical_across_shard_counts() {
    // The value-based policy shares one hash-consed BDD manager between
    // shards; canonicity must make every stored annotation's size
    // independent of operation interleaving.
    let sizes = |shards: usize| {
        let mut system = ProvenanceSystem::new(
            &programs::mincost(),
            Topology::testbed_ring(24, 3),
            SystemConfig {
                mode: ProvenanceMode::ValueBdd,
                shards,
                ..Default::default()
            },
        );
        system.seed_links();
        system.run_to_fixpoint();
        let tuples = system.engine().tuples_everywhere("bestPathCost");
        let policy = system.value_provenance().expect("value mode");
        tuples
            .iter()
            .map(|t| (t.clone(), policy.annotation_size(t)))
            .collect::<Vec<_>>()
    };
    let oracle = sizes(1);
    assert!(!oracle.is_empty());
    assert_eq!(oracle, sizes(2));
    assert_eq!(oracle, sizes(4));
}
