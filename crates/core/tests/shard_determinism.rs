//! Sharded-vs-sequential determinism at the `Deployment` level.
//!
//! The tentpole guarantee of the sharded runtime is that every observable —
//! protocol state, per-node byte counters, the bandwidth time-series, and
//! (for value-based provenance) the annotation sizes that feed them — is
//! *bit-identical* to the sequential engine (`shards(1)`).  These tests pin
//! that guarantee for each provenance mode over topologies small enough for
//! debug-mode CI.

use exspan_core::{Deployment, Exspan, ProvenanceMode};
use exspan_ndlog::ast::Program;
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::Tuple;
use std::sync::Arc;

/// Everything a figure could observe about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    tuples: Vec<Arc<Tuple>>,
    bytes_sent: Vec<u64>,
    total_bytes: u64,
    avg_comm_mb: f64,
    bandwidth: Vec<(f64, f64)>,
    fixpoint_time: f64,
}

fn deploy(program: &Program, mode: ProvenanceMode, shards: usize) -> Deployment {
    Exspan::builder()
        .program(program.clone())
        .topology(Topology::testbed_ring(32, 11))
        .mode(mode)
        .shards(shards)
        .build()
        .expect("valid deployment")
}

fn run(program: &Program, mode: ProvenanceMode, shards: usize, churn: bool) -> Fingerprint {
    let mut deployment = deploy(program, mode, shards);
    let stats = deployment.run_to_fixpoint();
    if churn {
        // Fail a few ring edges and let the retractions cascade.
        for (a, b) in [(0u32, 1u32), (8, 9), (16, 17)] {
            deployment.remove_link(a, b);
        }
        deployment.run_to_fixpoint();
    }
    let mut tuples = Vec::new();
    for rel in [
        "link",
        "pathCost",
        "bestPathCost",
        "bestPath",
        "prov",
        "ruleExec",
    ] {
        tuples.extend(deployment.tuples_everywhere_shared(rel));
    }
    let s = deployment.engine().stats();
    Fingerprint {
        tuples,
        bytes_sent: s.bytes_sent.clone(),
        total_bytes: s.total_bytes(),
        avg_comm_mb: deployment.avg_comm_mb(),
        bandwidth: deployment.avg_bandwidth_mbps(),
        fixpoint_time: stats.fixpoint_time,
    }
}

fn assert_modes_deterministic(program: &Program, churn: bool) {
    for mode in [
        ProvenanceMode::None,
        ProvenanceMode::Reference,
        ProvenanceMode::ValueBdd,
    ] {
        let oracle = run(program, mode, 1, churn);
        for shards in [2, 4] {
            let sharded = run(program, mode, shards, churn);
            assert_eq!(
                oracle, sharded,
                "{mode:?} with {shards} shards diverged from the sequential oracle (churn={churn})"
            );
        }
    }
}

#[test]
fn mincost_all_modes_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::mincost(), false);
}

#[test]
fn mincost_with_link_failures_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::mincost(), true);
}

#[test]
fn path_vector_all_modes_bit_identical_across_shard_counts() {
    assert_modes_deterministic(&programs::path_vector(), false);
}

#[test]
fn value_mode_annotations_identical_across_shard_counts() {
    // The value-based policy shares one hash-consed BDD manager between
    // shards; canonicity must make every stored annotation's size
    // independent of operation interleaving.
    let sizes = |shards: usize| {
        let mut deployment = Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::testbed_ring(24, 3))
            .mode(ProvenanceMode::ValueBdd)
            .shards(shards)
            .build()
            .expect("valid deployment");
        deployment.run_to_fixpoint();
        let tuples = deployment.tuples_everywhere_shared("bestPathCost");
        deployment
            .with_value_provenance(|policy| {
                tuples
                    .iter()
                    .map(|t| ((**t).clone(), policy.annotation_size(t)))
                    .collect::<Vec<_>>()
            })
            .expect("value mode")
    };
    let oracle = sizes(1);
    assert!(!oracle.is_empty());
    assert_eq!(oracle, sizes(2));
    assert_eq!(oracle, sizes(4));
}

#[test]
fn interning_order_does_not_change_canonical_state_or_traffic() {
    // The interned hot path orders symbols by *content*, so pre-populating
    // the global interner with the protocol's vocabulary in scrambled order
    // (and with a pile of unrelated symbols in between) must not move a
    // single tuple in canonical scan order, a single byte in the traffic
    // counters, or a single sample in the bandwidth series.
    let program = programs::path_vector();
    let oracle = run(&program, ProvenanceMode::ValueBdd, 1, true);
    let mut vocabulary: Vec<String> = ["bestPath", "path", "link", "prov", "ruleExec"]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    vocabulary.extend((0..64).map(|i| format!("zz_unrelated_{i}")));
    vocabulary.sort();
    for name in vocabulary.iter().rev() {
        exspan_types::Symbol::intern(name);
    }
    for shards in [1, 4] {
        let replay = run(&program, ProvenanceMode::ValueBdd, shards, true);
        assert_eq!(
            oracle, replay,
            "scrambled interning order changed observable state at {shards} shard(s)"
        );
    }
}
