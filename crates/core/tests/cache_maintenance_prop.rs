//! Randomized differential test for incremental cache maintenance: over
//! random testbed topologies and random link deletions, a session that
//! maintains its cached annotations in place must answer every re-query
//! exactly like the invalidate-and-recompute oracle.
//!
//! Complements `cache_maintenance.rs` (which pins one scenario at 1 and 4
//! shards, plus BDD answers and insertion fallback) with topology and
//! deletion diversity at a case count small enough for CI — each case runs
//! two full converge/warm/delete/re-query rounds.

use exspan_core::{CacheMaintenance, Deployment, Exspan, ProvExpr, ProvenanceMode, Repr};
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::{Tuple, Vid};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn deploy(nodes: usize, seed: u64) -> Deployment {
    Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::testbed_ring(nodes, seed))
        .mode(ProvenanceMode::Reference)
        .shards(1)
        .build()
        .expect("valid deployment")
}

fn targets(deployment: &Deployment) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = deployment
        .tuples_everywhere_shared("bestPathCost")
        .iter()
        .filter(|t| t.location < 6)
        .map(|t| (**t).clone())
        .collect();
    out.sort();
    out
}

fn monomials(e: &ProvExpr) -> BTreeSet<Vec<Vid>> {
    match e {
        ProvExpr::Base(v) => BTreeSet::from([vec![*v]]),
        ProvExpr::Sum { terms, .. } => terms.iter().flat_map(monomials).collect(),
        ProvExpr::Product { factors, .. } => {
            let mut acc: BTreeSet<Vec<Vid>> = BTreeSet::from([Vec::new()]);
            for f in factors {
                let fm = monomials(f);
                acc = acc
                    .iter()
                    .flat_map(|m| {
                        fm.iter().map(move |fm1| {
                            let mut combined = m.clone();
                            combined.extend(fm1.iter().copied());
                            combined.sort();
                            combined
                        })
                    })
                    .collect();
            }
            acc
        }
    }
}

/// Converge, warm the cache, delete the ring link `(a, a+1)`, re-converge,
/// re-query.  Returns the canonical monomial sets of the second round.
fn round(
    nodes: usize,
    seed: u64,
    deleted: (u32, u32),
    maintenance: CacheMaintenance,
) -> Vec<Option<BTreeSet<Vec<Vid>>>> {
    let mut d = deploy(nodes, seed);
    d.run_to_fixpoint();
    let targets = targets(&d);
    assert!(!targets.is_empty(), "protocol produced no bestPathCost");
    for t in &targets {
        let _ = d
            .query(t)
            .repr(Repr::Polynomial)
            .cached(true)
            .maintenance(maintenance)
            .submit();
    }
    d.run_to_fixpoint();
    d.remove_link(deleted.0, deleted.1);
    d.run_to_fixpoint();
    let mut handles = Vec::new();
    for t in &targets {
        handles.push(
            d.query(t)
                .repr(Repr::Polynomial)
                .cached(true)
                .maintenance(maintenance)
                .submit(),
        );
    }
    d.run_to_fixpoint();
    handles
        .iter()
        .map(|h| {
            d.outcome(*h)
                .and_then(|o| o.annotation.as_ref())
                .and_then(|a| a.as_expr())
                .map(monomials)
        })
        .collect()
}

proptest! {
    // Each case is two full protocol runs; eight cases keep the test under
    // the tier-1 budget while still varying topology, seed and deletion.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn maintained_answers_match_oracle_on_random_scenarios(
        nodes in 8usize..16,
        seed in 0u64..1024,
        edge in 0u32..16,
    ) {
        // Delete one ring edge (always present by construction).
        let a = edge % nodes as u32;
        let b = (a + 1) % nodes as u32;
        let oracle = round(nodes, seed, (a, b), CacheMaintenance::Invalidate);
        let maintained = round(nodes, seed, (a, b), CacheMaintenance::Incremental);
        prop_assert_eq!(oracle, maintained);
    }
}
