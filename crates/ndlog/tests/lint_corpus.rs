//! Golden tests over the negative lint corpus: every `tests/lint_corpus/*.ndl`
//! program is analyzed with full span information and the rendered
//! diagnostics must match the committed `.expected` file byte-for-byte —
//! including the `file:line:col` locations and caret snippets.
//!
//! Regenerate goldens after an intentional diagnostics change with:
//!
//! ```text
//! BLESS=1 cargo test -p exspan-ndlog --test lint_corpus
//! ```

use exspan_ndlog::{analyze_with_source, parse_program_spanned};
use std::path::Path;

fn render(name: &str, source: &str) -> String {
    match parse_program_spanned(name, source) {
        Ok((program, map)) => {
            let analysis = analyze_with_source(&program, Some(&map));
            if analysis.diagnostics.is_empty() {
                "no diagnostics\n".to_string()
            } else {
                format!("{}\n", analysis.diagnostics.render(Some(&map)))
            }
        }
        Err(e) => {
            let (line, col) = exspan_ndlog::diag::line_col_of(source, e.offset);
            format!("parse error: {name}:{line}:{col}: {}\n", e.message)
        }
    }
}

#[test]
fn corpus_matches_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut cases: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ndl"))
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 15,
        "the corpus must hold at least 15 programs, found {}",
        cases.len()
    );

    let bless = std::env::var_os("BLESS").is_some();
    let mut failures = Vec::new();
    for case in &cases {
        let name = case.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(case).expect("corpus source");
        let got = render(&name, &source);

        // Malformed programs (everything not named `ok_*`) must produce at
        // least one diagnostic — an accidentally-clean corpus entry tests
        // nothing.
        if !name.starts_with("ok_") {
            assert_ne!(
                got, "no diagnostics\n",
                "{name}: corpus program produced no diagnostics"
            );
        }

        let golden = case.with_extension("expected");
        if bless {
            std::fs::write(&golden, &got).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
            panic!("{name}: missing golden {golden:?}; regenerate with BLESS=1")
        });
        if got != expected {
            failures.push(format!(
                "=== {name}: diagnostics changed ===\n--- expected ---\n{expected}\n--- got ---\n{got}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus golden(s) out of date (regenerate with BLESS=1):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn goldens_carry_source_locations() {
    // The acceptance criterion for the diagnostics infrastructure: rendered
    // corpus output points into the source with `name:line:col` locations.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let golden = dir.join("e001_duplicate_label.expected");
    let text = std::fs::read_to_string(golden).expect("golden present");
    assert!(
        text.contains("e001_duplicate_label:2:1"),
        "expected a line:col location in:\n{text}"
    );
    assert!(text.contains("E001"), "{text}");
    assert!(text.contains('^'), "caret snippet missing:\n{text}");
}
