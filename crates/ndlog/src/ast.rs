//! Abstract syntax for NDlog programs.
//!
//! Every identifier the evaluator touches per rule firing — relation names,
//! rule labels, variable names, built-in function names — is an interned
//! [`Symbol`] (see [`exspan_types::symbol`]): `Copy`, pointer-equality, and
//! content ordering.  Construction sites still accept plain string literals
//! (`Term::var("S")`, `Atom::new("link", …)`) and intern transparently.

use exspan_types::{RelId, Symbol, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term: either a variable (names start with an uppercase letter) or a
/// constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, e.g. `S`, `Cost`.
    Var(Symbol),
    /// A constant, e.g. `5`, `"sp2"`.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(name.into())
    }

    /// Shorthand for a constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Returns the variable name if this term is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary comparison operators usable in rule-body constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// An expression appearing in assignments, constraints, or (before
/// normalization) head arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A term (variable or constant).
    Term(Term),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// A call to a built-in function, e.g. `f_sha1("link", X, Y)`.
    Call(Symbol, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a variable expression.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Term(Term::Var(name.into()))
    }

    /// Shorthand for a constant expression.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Term(Term::Const(v.into()))
    }

    /// Shorthand for a function call.
    pub fn call(name: impl Into<Symbol>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Collects the names of all variables referenced by this expression.
    pub fn variables(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                out.insert(*v);
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::Arith(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Arith(op, a, b) => write!(f, "({a}{op}{b})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An atom: a predicate with a location specifier and argument terms,
/// appearing in rule bodies, e.g. `link(@Z,S,C1)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Interned relation (predicate) identifier.
    pub relation: RelId,
    /// The location specifier term (the `@` attribute).
    pub location: Term,
    /// Remaining argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<RelId>, location: Term, args: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            location,
            args,
        }
    }

    /// All variables appearing in the atom (location included).
    pub fn variables(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        if let Term::Var(v) = &self.location {
            out.insert(*v);
        }
        for t in &self.args {
            if let Term::Var(v) = t {
                out.insert(*v);
            }
        }
        out
    }

    /// Total arity including the location attribute.
    pub fn arity(&self) -> usize {
        self.args.len() + 1
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{}", self.relation, self.location)?;
        for a in &self.args {
            write!(f, ",{a}")?;
        }
        write!(f, ")")
    }
}

/// Aggregate functions supported in rule heads.
///
/// The paper restricts the provenance rewrite to MIN and MAX (§4.2.2); COUNT
/// is additionally supported by the engine because the provenance *query*
/// rules use `COUNT<*>` (rule `c0` of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `min<X>`
    Min,
    /// `max<X>`
    Max,
    /// `count<*>` or `count<X>`
    Count,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
        };
        write!(f, "{s}")
    }
}

/// A single head argument: a plain term, an expression to be computed, or an
/// aggregate over a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeadArg {
    /// A term copied from the body bindings.
    Term(Term),
    /// An expression computed from body bindings (normalized away by
    /// [`Program::normalize`]).
    Expr(Expr),
    /// An aggregate, e.g. `min<C>`.  `None` means `count<*>`.
    Aggregate(AggFunc, Option<Symbol>),
}

impl fmt::Display for HeadArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadArg::Term(t) => write!(f, "{t}"),
            HeadArg::Expr(e) => write!(f, "{e}"),
            HeadArg::Aggregate(func, Some(v)) => write!(f, "{func}<{v}>"),
            HeadArg::Aggregate(func, None) => write!(f, "{func}<*>"),
        }
    }
}

/// The head of a rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleHead {
    /// Interned relation derived by the rule.
    pub relation: RelId,
    /// Location specifier of the derived tuple.
    pub location: Term,
    /// Head arguments.
    pub args: Vec<HeadArg>,
}

impl RuleHead {
    /// Creates a head whose arguments are all plain terms.
    pub fn new(relation: impl Into<RelId>, location: Term, args: Vec<HeadArg>) -> Self {
        RuleHead {
            relation: relation.into(),
            location,
            args,
        }
    }

    /// Returns the aggregate (function, grouped variable, argument index) if
    /// this head contains one.
    pub fn aggregate(&self) -> Option<(AggFunc, Option<Symbol>, usize)> {
        self.args.iter().enumerate().find_map(|(i, a)| match a {
            HeadArg::Aggregate(f, v) => Some((*f, *v, i)),
            _ => None,
        })
    }
}

impl fmt::Display for RuleHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{}", self.relation, self.location)?;
        for a in &self.args {
            write!(f, ",{a}")?;
        }
        write!(f, ")")
    }
}

/// A single element of a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodyItem {
    /// A predicate atom.
    Atom(Atom),
    /// A constraint, e.g. `Z != Y` or `C <= Threshold`.
    Constraint(CmpOp, Expr, Expr),
    /// An assignment binding a fresh variable, e.g. `C = C1 + C2`.
    Assign(Symbol, Expr),
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Atom(a) => write!(f, "{a}"),
            BodyItem::Constraint(op, a, b) => write!(f, "{a}{op}{b}"),
            BodyItem::Assign(v, e) => write!(f, "{v}={e}"),
        }
    }
}

/// An NDlog rule: `label head :- body.`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Interned rule label, e.g. `sp2`.  Used in provenance RIDs.
    pub label: Symbol,
    /// Rule head.
    pub head: RuleHead,
    /// Rule body items.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(label: impl Into<Symbol>, head: RuleHead, body: Vec<BodyItem>) -> Self {
        Rule {
            label: label.into(),
            head,
            body,
        }
    }

    /// Body atoms only, in order.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|b| match b {
            BodyItem::Atom(a) => Some(a),
            _ => None,
        })
    }

    /// Returns `true` if this rule's head contains an aggregate.
    pub fn is_aggregate(&self) -> bool {
        self.head.aggregate().is_some()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} :- ", self.label, self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A materialized-table declaration: relation name, arity (including the
/// location attribute) and primary-key attribute positions (0 = location).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDecl {
    /// Interned relation name.
    pub relation: RelId,
    /// Arity including the location attribute.
    pub arity: usize,
    /// Primary-key positions (0-based over the full attribute list, position
    /// 0 being the location).  Empty means the whole tuple is the key.
    pub keys: Vec<usize>,
}

impl TableDecl {
    /// Creates a declaration with whole-tuple key.
    pub fn new(relation: impl Into<RelId>, arity: usize) -> Self {
        TableDecl {
            relation: relation.into(),
            arity,
            keys: Vec::new(),
        }
    }

    /// Creates a declaration with an explicit key.
    pub fn with_keys(relation: impl Into<RelId>, arity: usize, keys: Vec<usize>) -> Self {
        TableDecl {
            relation: relation.into(),
            arity,
            keys,
        }
    }
}

/// A complete NDlog program: table declarations plus rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name (e.g. `"MINCOST"`).
    pub name: String,
    /// Materialized table declarations.
    pub tables: Vec<TableDecl>,
    /// Rules in declaration order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            tables: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Adds a table declaration (builder style).
    pub fn with_table(mut self, decl: TableDecl) -> Self {
        self.tables.push(decl);
        self
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Looks up a table declaration by relation name.
    pub fn table(&self, relation: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.relation == relation)
    }

    /// Returns the rule with the given label, if any.
    pub fn rule(&self, label: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.label == label)
    }

    /// The set of relations that appear in some rule head (derived relations).
    pub fn derived_relations(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.relation).collect()
    }

    /// The set of relations that only appear in rule bodies (base relations).
    pub fn base_relations(&self) -> BTreeSet<RelId> {
        let derived = self.derived_relations();
        self.rules
            .iter()
            .flat_map(Rule::body_atoms)
            .map(|a| a.relation)
            .filter(|r| !derived.contains(r))
            .collect()
    }

    /// Rewrites head-argument expressions into explicit body assignments with
    /// fresh variables, producing the *localized canonical form* assumed by
    /// the provenance rewrite (paper §4.2.2 writes `C = C1 + C2` explicitly).
    ///
    /// For example `pathCost(@S,D,C1+C2) :- …` becomes
    /// `pathCost(@S,D,Gen0) :- …, Gen0 = C1+C2`.
    pub fn normalize(&self) -> Program {
        let mut fresh = 0usize;
        let rules = self
            .rules
            .iter()
            .map(|r| {
                let mut body = r.body.clone();
                let args = r
                    .head
                    .args
                    .iter()
                    .map(|a| match a {
                        HeadArg::Expr(Expr::Term(t)) => HeadArg::Term(t.clone()),
                        HeadArg::Expr(e) => {
                            let name = Symbol::intern(&format!("NormGen{fresh}"));
                            fresh += 1;
                            body.push(BodyItem::Assign(name, e.clone()));
                            HeadArg::Term(Term::Var(name))
                        }
                        other => other.clone(),
                    })
                    .collect();
                Rule {
                    label: r.label,
                    head: RuleHead {
                        relation: r.head.relation,
                        location: r.head.location.clone(),
                        args,
                    },
                    body,
                }
            })
            .collect();
        Program {
            name: self.name.clone(),
            tables: self.tables.clone(),
            rules,
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// program {}", self.name)?;
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rule() -> Rule {
        // sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2.
        Rule::new(
            "sp2",
            RuleHead::new(
                "pathCost",
                Term::var("S"),
                vec![HeadArg::Term(Term::var("D")), HeadArg::Term(Term::var("C"))],
            ),
            vec![
                BodyItem::Atom(Atom::new(
                    "link",
                    Term::var("Z"),
                    vec![Term::var("S"), Term::var("C1")],
                )),
                BodyItem::Atom(Atom::new(
                    "bestPathCost",
                    Term::var("Z"),
                    vec![Term::var("D"), Term::var("C2")],
                )),
                BodyItem::Assign(
                    "C".into(),
                    Expr::Arith(
                        ArithOp::Add,
                        Box::new(Expr::var("C1")),
                        Box::new(Expr::var("C2")),
                    ),
                ),
            ],
        )
    }

    #[test]
    fn display_round_trips_shape() {
        let r = sample_rule();
        let s = r.to_string();
        assert!(s.starts_with("sp2 pathCost(@S,D,C) :- link(@Z,S,C1)"));
        assert!(s.ends_with("."));
        assert!(s.contains("C=(C1+C2)"));
    }

    #[test]
    fn atom_variables_and_arity() {
        let r = sample_rule();
        let atoms: Vec<&Atom> = r.body_atoms().collect();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].arity(), 3);
        let vars = atoms[0].variables();
        assert!(vars.contains("Z") && vars.contains("S") && vars.contains("C1"));
    }

    #[test]
    fn derived_and_base_relations() {
        let p = Program::new("test")
            .with_rule(sample_rule())
            .with_rule(Rule::new(
                "sp3",
                RuleHead::new(
                    "bestPathCost",
                    Term::var("S"),
                    vec![
                        HeadArg::Term(Term::var("D")),
                        HeadArg::Aggregate(AggFunc::Min, Some("C".into())),
                    ],
                ),
                vec![BodyItem::Atom(Atom::new(
                    "pathCost",
                    Term::var("S"),
                    vec![Term::var("D"), Term::var("C")],
                ))],
            ));
        let derived = p.derived_relations();
        assert!(derived.contains("pathCost") && derived.contains("bestPathCost"));
        let base = p.base_relations();
        assert_eq!(base.into_iter().collect::<Vec<_>>(), vec!["link"]);
    }

    #[test]
    fn aggregate_detection() {
        let head = RuleHead::new(
            "bestPathCost",
            Term::var("S"),
            vec![
                HeadArg::Term(Term::var("D")),
                HeadArg::Aggregate(AggFunc::Min, Some("C".into())),
            ],
        );
        let (func, var, idx) = head.aggregate().unwrap();
        assert_eq!(func, AggFunc::Min);
        assert_eq!(var.map(Symbol::as_str), Some("C"));
        assert_eq!(idx, 1);
    }

    #[test]
    fn normalize_extracts_head_expressions() {
        // pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
        let rule = Rule::new(
            "sp2",
            RuleHead::new(
                "pathCost",
                Term::var("S"),
                vec![
                    HeadArg::Term(Term::var("D")),
                    HeadArg::Expr(Expr::Arith(
                        ArithOp::Add,
                        Box::new(Expr::var("C1")),
                        Box::new(Expr::var("C2")),
                    )),
                ],
            ),
            vec![
                BodyItem::Atom(Atom::new(
                    "link",
                    Term::var("Z"),
                    vec![Term::var("S"), Term::var("C1")],
                )),
                BodyItem::Atom(Atom::new(
                    "bestPathCost",
                    Term::var("Z"),
                    vec![Term::var("D"), Term::var("C2")],
                )),
            ],
        );
        let p = Program::new("t").with_rule(rule).normalize();
        let r = &p.rules[0];
        // Head arg became a fresh variable and the body gained an assignment.
        assert!(
            matches!(&r.head.args[1], HeadArg::Term(Term::Var(v)) if v.as_str().starts_with("NormGen"))
        );
        assert!(r
            .body
            .iter()
            .any(|b| matches!(b, BodyItem::Assign(v, _) if v.as_str().starts_with("NormGen"))));
        // Trivial Expr::Term head args become plain terms.
        let rule2 = Rule::new(
            "x",
            RuleHead::new("out", Term::var("S"), vec![HeadArg::Expr(Expr::var("D"))]),
            vec![BodyItem::Atom(Atom::new(
                "in",
                Term::var("S"),
                vec![Term::var("D")],
            ))],
        );
        let p2 = Program::new("t2").with_rule(rule2).normalize();
        assert!(matches!(
            &p2.rules[0].head.args[0],
            HeadArg::Term(Term::Var(v)) if v == "D"
        ));
    }

    #[test]
    fn program_lookup_helpers() {
        let p = Program::new("t")
            .with_table(TableDecl::with_keys("bestPathCost", 3, vec![0, 1]))
            .with_rule(sample_rule());
        assert!(p.table("bestPathCost").is_some());
        assert!(p.table("nope").is_none());
        assert!(p.rule("sp2").is_some());
        assert!(p.rule("sp9").is_none());
    }
}
