//! Static well-formedness checks for NDlog programs.
//!
//! The distributed engine (and the provenance rewrite of §4.2.2) assumes
//! programs are in *localized form*: every body predicate of a rule is
//! located at the same variable, and the head location either equals it or is
//! bound by some body attribute (so the derivation can be shipped in a single
//! message).  These checks reject programs the engine could not execute
//! faithfully, with actionable error messages.

use crate::ast::{BodyItem, HeadArg, Program, Rule, Term};
use exspan_types::Symbol;
use std::collections::BTreeSet;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Label of the offending rule (empty for program-level errors).
    pub rule: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.rule.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "rule {}: {}", self.rule, self.message)
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates every rule of `program`, returning all problems found.
pub fn validate_program(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let mut seen_labels = BTreeSet::new();
    for rule in &program.rules {
        if !seen_labels.insert(rule.label) {
            errors.push(ValidationError {
                rule: rule.label.as_str().to_string(),
                message: "duplicate rule label".into(),
            });
        }
        validate_rule(rule, &mut errors);
    }
    for decl in &program.tables {
        for &k in &decl.keys {
            if k >= decl.arity {
                errors.push(ValidationError {
                    rule: String::new(),
                    message: format!(
                        "table {} declares key position {k} but has arity {}",
                        decl.relation, decl.arity
                    ),
                });
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_rule(rule: &Rule, errors: &mut Vec<ValidationError>) {
    let mut err = |message: String| {
        errors.push(ValidationError {
            rule: rule.label.as_str().to_string(),
            message,
        })
    };

    let atoms: Vec<_> = rule.body_atoms().collect();
    if atoms.is_empty() {
        err("rule body contains no predicate atom".into());
        return;
    }

    // Localized form: all body atoms share one location variable (or equal
    // constants).
    let first_loc = &atoms[0].location;
    for a in &atoms[1..] {
        if a.location != *first_loc {
            err(format!(
                "body is not localized: {} is at @{} but {} is at @{}",
                atoms[0].relation, first_loc, a.relation, a.location
            ));
            break;
        }
    }

    // Collect variables bound by body atoms, then by assignments (in order).
    let mut bound: BTreeSet<Symbol> = BTreeSet::new();
    for a in &atoms {
        bound.extend(a.variables());
    }
    for item in &rule.body {
        match item {
            BodyItem::Assign(v, e) => {
                let mut used = BTreeSet::new();
                e.variables(&mut used);
                for u in &used {
                    if !bound.contains(u) {
                        err(format!(
                            "assignment {v} uses variable {u} that is not bound earlier"
                        ));
                    }
                }
                bound.insert(*v);
            }
            BodyItem::Constraint(_, a, b) => {
                let mut used = BTreeSet::new();
                a.variables(&mut used);
                b.variables(&mut used);
                for u in &used {
                    if !bound.contains(u) {
                        err(format!("constraint uses unbound variable {u}"));
                    }
                }
            }
            BodyItem::Atom(_) => {}
        }
    }

    // Range restriction: every head variable must be bound by the body.
    if let Term::Var(v) = &rule.head.location {
        if !bound.contains(v) {
            err(format!(
                "head location variable {v} is not bound by the body"
            ));
        }
    }
    for arg in &rule.head.args {
        let mut used = BTreeSet::new();
        match arg {
            HeadArg::Term(Term::Var(v)) => {
                used.insert(*v);
            }
            HeadArg::Term(Term::Const(_)) => {}
            HeadArg::Expr(e) => e.variables(&mut used),
            HeadArg::Aggregate(_, Some(v)) => {
                used.insert(*v);
            }
            HeadArg::Aggregate(_, None) => {}
        }
        for u in used {
            if !bound.contains(&u) {
                err(format!("head variable {u} is not bound by the body"));
            }
        }
    }

    // At most one aggregate per head, and aggregate rules must keep the head
    // at the body location (aggregation is a local operation in NDlog).
    let agg_count = rule
        .head
        .args
        .iter()
        .filter(|a| matches!(a, HeadArg::Aggregate(_, _)))
        .count();
    if agg_count > 1 {
        err("at most one aggregate is allowed per rule head".into());
    }
    if agg_count == 1 && rule.head.location != *first_loc {
        err("aggregate rules must derive at the same location as their body".into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::programs;

    #[test]
    fn builtin_programs_validate() {
        for p in [
            programs::mincost(),
            programs::path_vector(),
            programs::packet_forward(),
        ] {
            let normalized = p.normalize();
            assert!(
                validate_program(&normalized).is_ok(),
                "program {} failed validation",
                p.name
            );
        }
    }

    #[test]
    fn rejects_unlocalized_rule() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y), b(@Y,X).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not localized")));
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let p = parse_program("bad", "r1 out(@X,Z) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("Z")));
    }

    #[test]
    fn rejects_unbound_head_location() {
        let p = parse_program("bad", "r1 out(@W,Y) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("head location variable W")));
    }

    #[test]
    fn rejects_duplicate_labels_and_bodyless_rules() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y). r1 out2(@X,Y) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate")));
    }

    #[test]
    fn rejects_unbound_constraint_and_assignment_vars() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y), Z!=3.").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("unbound variable Z")));

        let p = parse_program("bad", "r1 out(@X,V) :- a(@X,Y), V=W+1.").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not bound earlier")));
    }

    #[test]
    fn rejects_remote_aggregate_and_bad_table_keys() {
        let p = parse_program("bad", "r1 out(@Y,min<C>) :- a(@X,Y,C).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("aggregate rules must derive")));

        let mut p2 = parse_program("bad2", "r1 out(@X,C) :- a(@X,C).").unwrap();
        p2.tables
            .push(crate::ast::TableDecl::with_keys("out", 2, vec![5]));
        let errs = validate_program(&p2).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("key position 5")));
    }

    #[test]
    fn error_display() {
        let e = ValidationError {
            rule: "r1".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rule r1: boom");
        let e2 = ValidationError {
            rule: String::new(),
            message: "prog".into(),
        };
        assert_eq!(e2.to_string(), "prog");
    }
}
