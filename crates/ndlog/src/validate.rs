//! Static well-formedness checks for NDlog programs.
//!
//! The distributed engine (and the provenance rewrite of §4.2.2) assumes
//! programs are in *localized form*: every body predicate of a rule is
//! located at the same variable, and the head location either equals it or is
//! bound by some body attribute (so the derivation can be shipped in a single
//! message).  These checks reject programs the engine could not execute
//! faithfully, with actionable error messages.
//!
//! This module is the structural half of the static-analysis suite: the
//! deeper passes (schema inference, aggregate stratification, reachability,
//! distribution lints) live in [`mod@crate::analyze`] and run on top of the same
//! [`Diagnostics`] infrastructure.  [`validate_program`] remains the stable
//! entry point for structural checks alone.

use crate::ast::{BodyItem, HeadArg, Program, Rule, Term};
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap, Span};
use exspan_types::Symbol;
use std::collections::BTreeSet;

/// A validation failure: the legacy rule-label + message surface over a
/// span-carrying [`Diagnostic`].
///
/// [`std::error::Error::source`] exposes the underlying diagnostic, and
/// [`ValidationError::span`] the source span (populated when the program was
/// parsed with [`crate::parser::parse_program_spanned`] and validated through
/// [`validate_program_spanned`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Label of the offending rule (empty for program-level errors).
    pub rule: String,
    /// Human-readable description of the problem.
    pub message: String,
    diagnostic: Diagnostic,
}

impl ValidationError {
    /// The underlying diagnostic (lint code, severity, span).
    pub fn diagnostic(&self) -> &Diagnostic {
        &self.diagnostic
    }

    /// The stable lint code, e.g. `"E004"`.
    pub fn code(&self) -> &'static str {
        self.diagnostic.code
    }

    /// Source span of the offending construct, when known.
    pub fn span(&self) -> Option<Span> {
        self.diagnostic.span
    }
}

impl From<Diagnostic> for ValidationError {
    fn from(diagnostic: Diagnostic) -> Self {
        ValidationError {
            rule: diagnostic
                .rule
                .map(|r| r.as_str().to_string())
                .unwrap_or_default(),
            message: diagnostic.message.clone(),
            diagnostic,
        }
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.rule.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "rule {}: {}", self.rule, self.message)
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.diagnostic)
    }
}

/// Validates every rule of `program`, returning all problems found.
pub fn validate_program(program: &Program) -> Result<(), Vec<ValidationError>> {
    validate_program_spanned(program, None)
}

/// Like [`validate_program`], but attaches source spans from `source` (as
/// produced by [`crate::parser::parse_program_spanned`]) so errors render
/// `program:line:col` locations.
pub fn validate_program_spanned(
    program: &Program,
    source: Option<&SourceMap>,
) -> Result<(), Vec<ValidationError>> {
    let mut diags = Diagnostics::new();
    validate_into(program, source, &mut diags);
    if diags.is_empty() {
        Ok(())
    } else {
        diags.sort();
        Err(diags.into_iter().map(ValidationError::from).collect())
    }
}

/// Runs the structural checks, pushing diagnostics into `out`.  Used by
/// [`crate::analyze::analyze`] so all passes share one collection.
pub(crate) fn validate_into(program: &Program, source: Option<&SourceMap>, out: &mut Diagnostics) {
    let mut seen_labels = BTreeSet::new();
    for (idx, rule) in program.rules.iter().enumerate() {
        if !seen_labels.insert(rule.label) {
            out.push(
                Diagnostic::new(
                    "E001",
                    Severity::Error,
                    Some(rule.label),
                    "duplicate rule label",
                )
                .with_span(source.and_then(|m| m.rule(idx).map(|r| r.label))),
            );
        }
        validate_rule(idx, rule, source, out);
    }
    for (idx, decl) in program.tables.iter().enumerate() {
        for &k in &decl.keys {
            if k >= decl.arity {
                out.push(
                    Diagnostic::new(
                        "E007",
                        Severity::Error,
                        None,
                        format!(
                            "table {} declares key position {k} but has arity {}",
                            decl.relation, decl.arity
                        ),
                    )
                    .with_span(source.and_then(|m| m.tables.get(idx).copied())),
                );
            }
        }
    }
}

fn validate_rule(idx: usize, rule: &Rule, source: Option<&SourceMap>, out: &mut Diagnostics) {
    let head_span = source.and_then(|m| m.rule(idx).map(|r| r.head));
    let full_span = source.and_then(|m| m.rule(idx).map(|r| r.full));

    let atoms: Vec<_> = rule.body_atoms().collect();
    if atoms.is_empty() {
        out.push(
            Diagnostic::new(
                "E002",
                Severity::Error,
                Some(rule.label),
                "rule body contains no predicate atom",
            )
            .with_span(full_span),
        );
        return;
    }

    // Localized form: all body atoms share one location variable (or equal
    // constants).
    let first_loc = &atoms[0].location;
    for a in &atoms[1..] {
        if a.location != *first_loc {
            let item = rule
                .body
                .iter()
                .position(|b| matches!(b, BodyItem::Atom(x) if std::ptr::eq(x, *a)));
            out.push(
                Diagnostic::new(
                    "E003",
                    Severity::Error,
                    Some(rule.label),
                    format!(
                        "body is not localized: {} is at @{} but {} is at @{}",
                        atoms[0].relation, first_loc, a.relation, a.location
                    ),
                )
                .with_span(item.and_then(|i| source.and_then(|m| m.body_item(idx, i)))),
            );
            break;
        }
    }

    // Collect variables bound by body atoms, then by assignments (in order).
    let mut bound: BTreeSet<Symbol> = BTreeSet::new();
    for a in &atoms {
        bound.extend(a.variables());
    }
    for (item_idx, item) in rule.body.iter().enumerate() {
        let item_span = source.and_then(|m| m.body_item(idx, item_idx));
        match item {
            BodyItem::Assign(v, e) => {
                let mut used = BTreeSet::new();
                e.variables(&mut used);
                for u in &used {
                    if !bound.contains(u) {
                        out.push(
                            Diagnostic::new(
                                "E004",
                                Severity::Error,
                                Some(rule.label),
                                format!(
                                    "assignment {v} uses variable {u} that is not bound earlier"
                                ),
                            )
                            .with_span(item_span),
                        );
                    }
                }
                bound.insert(*v);
            }
            BodyItem::Constraint(_, a, b) => {
                let mut used = BTreeSet::new();
                a.variables(&mut used);
                b.variables(&mut used);
                for u in &used {
                    if !bound.contains(u) {
                        out.push(
                            Diagnostic::new(
                                "E004",
                                Severity::Error,
                                Some(rule.label),
                                format!("constraint uses unbound variable {u}"),
                            )
                            .with_span(item_span),
                        );
                    }
                }
            }
            BodyItem::Atom(_) => {}
        }
    }

    // Range restriction: every head variable must be bound by the body.
    if let Term::Var(v) = &rule.head.location {
        if !bound.contains(v) {
            out.push(
                Diagnostic::new(
                    "E004",
                    Severity::Error,
                    Some(rule.label),
                    format!("head location variable {v} is not bound by the body"),
                )
                .with_span(head_span),
            );
        }
    }
    for (arg_idx, arg) in rule.head.args.iter().enumerate() {
        let mut used = BTreeSet::new();
        match arg {
            HeadArg::Term(Term::Var(v)) => {
                used.insert(*v);
            }
            HeadArg::Term(Term::Const(_)) => {}
            HeadArg::Expr(e) => e.variables(&mut used),
            HeadArg::Aggregate(_, Some(v)) => {
                used.insert(*v);
            }
            HeadArg::Aggregate(_, None) => {}
        }
        for u in used {
            if !bound.contains(&u) {
                out.push(
                    Diagnostic::new(
                        "E004",
                        Severity::Error,
                        Some(rule.label),
                        format!("head variable {u} is not bound by the body"),
                    )
                    .with_span(source.and_then(|m| m.head_arg(idx, arg_idx))),
                );
            }
        }
    }

    // At most one aggregate per head, and aggregate rules must keep the head
    // at the body location (aggregation is a local operation in NDlog).
    let agg_count = rule
        .head
        .args
        .iter()
        .filter(|a| matches!(a, HeadArg::Aggregate(_, _)))
        .count();
    if agg_count > 1 {
        out.push(
            Diagnostic::new(
                "E005",
                Severity::Error,
                Some(rule.label),
                "at most one aggregate is allowed per rule head",
            )
            .with_span(head_span),
        );
    }
    if agg_count == 1 && rule.head.location != *first_loc {
        out.push(
            Diagnostic::new(
                "E006",
                Severity::Error,
                Some(rule.label),
                "aggregate rules must derive at the same location as their body",
            )
            .with_span(head_span),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_program_spanned};
    use crate::programs;

    #[test]
    fn builtin_programs_validate() {
        for p in [
            programs::mincost(),
            programs::path_vector(),
            programs::packet_forward(),
        ] {
            let normalized = p.normalize();
            assert!(
                validate_program(&normalized).is_ok(),
                "program {} failed validation",
                p.name
            );
        }
    }

    #[test]
    fn rejects_unlocalized_rule() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y), b(@Y,X).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not localized")));
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let p = parse_program("bad", "r1 out(@X,Z) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("Z")));
    }

    #[test]
    fn rejects_unbound_head_location() {
        let p = parse_program("bad", "r1 out(@W,Y) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("head location variable W")));
    }

    #[test]
    fn rejects_duplicate_labels_and_bodyless_rules() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y). r1 out2(@X,Y) :- a(@X,Y).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate")));
    }

    #[test]
    fn rejects_unbound_constraint_and_assignment_vars() {
        let p = parse_program("bad", "r1 out(@X,Y) :- a(@X,Y), Z!=3.").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("unbound variable Z")));

        let p = parse_program("bad", "r1 out(@X,V) :- a(@X,Y), V=W+1.").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not bound earlier")));
    }

    #[test]
    fn rejects_remote_aggregate_and_bad_table_keys() {
        let p = parse_program("bad", "r1 out(@Y,min<C>) :- a(@X,Y,C).").unwrap();
        let errs = validate_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("aggregate rules must derive")));

        let mut p2 = parse_program("bad2", "r1 out(@X,C) :- a(@X,C).").unwrap();
        p2.tables
            .push(crate::ast::TableDecl::with_keys("out", 2, vec![5]));
        let errs = validate_program(&p2).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("key position 5")));
    }

    #[test]
    fn spanned_validation_carries_line_col() {
        let src = "r1 out(@X,Z) :- a(@X,Y).\n";
        let (p, map) = parse_program_spanned("bad", src).unwrap();
        let errs = validate_program_spanned(&p, Some(&map)).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("head variable Z"))
            .expect("unbound head variable error");
        assert_eq!(e.code(), "E004");
        let span = e.span().expect("span recorded");
        assert_eq!(map.line_col(span.start), (1, 11)); // the `Z` head argument
                                                       // Error::source exposes the diagnostic.
        let src_err = std::error::Error::source(e).expect("source");
        assert!(src_err.to_string().contains("E004"), "{src_err}");
        // Unspanned validation keeps spans empty.
        let errs2 = validate_program(&p).unwrap_err();
        assert!(errs2.iter().all(|e| e.span().is_none()));
    }

    #[test]
    fn error_display() {
        let e = ValidationError::from(Diagnostic::new(
            "E004",
            Severity::Error,
            Some(Symbol::intern("r1")),
            "boom",
        ));
        assert_eq!(e.to_string(), "rule r1: boom");
        let e2 = ValidationError::from(Diagnostic::new("E007", Severity::Error, None, "prog"));
        assert_eq!(e2.to_string(), "prog");
    }
}
