//! Recursive-descent parser for the NDlog concrete syntax.
//!
//! The grammar matches the paper's notation:
//!
//! ```text
//! program    := (table_decl | rule)*
//! table_decl := "materialize" "(" ident "," int "," "keys" "(" int ("," int)* ")" ")" "."
//! rule       := label head ":-" body "."
//! head       := ident "(" "@" term ("," head_arg)* ")"
//! head_arg   := agg | expr
//! agg        := ("min"|"max"|"count") "<" (var | "*") ">"
//! body       := body_item ("," body_item)*
//! body_item  := atom | var "=" expr | expr cmp expr | var ":=" expr
//! atom       := ident "(" "@" term ("," term)* ")"
//! ```
//!
//! Identifiers beginning with an uppercase letter are variables; everything
//! else is a predicate/function name or constant.  String literals use
//! double quotes.  Comments run from `//` to end of line.

use crate::ast::{
    AggFunc, ArithOp, Atom, BodyItem, CmpOp, Expr, HeadArg, Program, Rule, RuleHead, TableDecl,
    Term,
};
use crate::diag::{RuleSpans, SourceMap, Span};
use exspan_types::{Symbol, Value};

/// A parse failure, with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the error occurred.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete NDlog program.
///
/// ```
/// use exspan_ndlog::parse_program;
/// let p = parse_program("MINCOST", r#"
///     sp1 pathCost(@S,D,C) :- link(@S,D,C).
///     sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
/// "#).unwrap();
/// assert_eq!(p.rules.len(), 2);
/// ```
pub fn parse_program(name: &str, source: &str) -> Result<Program, ParseError> {
    parse_program_spanned(name, source).map(|(p, _)| p)
}

/// Parses a complete NDlog program, additionally returning a [`SourceMap`]
/// recording the byte span of every table declaration, rule, head argument
/// and body item — index-aligned with the returned [`Program`] — so
/// diagnostics can render `program:line:col` locations with caret snippets.
pub fn parse_program_spanned(name: &str, source: &str) -> Result<(Program, SourceMap), ParseError> {
    let mut parser = Parser::new(source);
    let mut program = Program::new(name);
    let mut map = SourceMap {
        file: name.to_string(),
        source: source.to_string(),
        rules: Vec::new(),
        tables: Vec::new(),
    };
    loop {
        parser.skip_ws();
        if parser.at_end() {
            break;
        }
        if parser.peek_keyword("materialize") {
            let start = parser.pos;
            program.tables.push(parser.table_decl()?);
            map.tables.push(Span::new(start, parser.pos));
        } else {
            let (rule, spans) = parser.rule()?;
            program.rules.push(rule);
            map.rules.push(spans);
        }
    }
    Ok((program, map))
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        loop {
            while let Some(c) = self.peek() {
                if c.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            // Line comments.
            if self.src[self.pos..].starts_with("//") {
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        let rest = &self.src[self.pos..];
        rest.starts_with(kw)
            && rest[kw.len()..]
                .chars()
                .next()
                .map_or(true, |c| !c.is_alphanumeric() && c != '_')
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            self.err(format!(
                "expected '{token}', found '{}'",
                &self.src[self.pos..self.src.len().min(self.pos + 12)]
            ))
        }
    }

    fn try_consume(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected identifier");
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return self.err("expected number");
        }
        self.src[start..self.pos].parse().map_err(|e| ParseError {
            offset: start,
            message: format!("invalid number: {e}"),
        })
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let s = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        self.err("unterminated string literal")
    }

    fn is_variable(name: &str) -> bool {
        name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    }

    fn table_decl(&mut self) -> Result<TableDecl, ParseError> {
        self.expect("materialize")?;
        self.expect("(")?;
        let relation = self.identifier()?;
        self.expect(",")?;
        let arity = self.number()? as usize;
        self.expect(",")?;
        self.expect("keys")?;
        self.expect("(")?;
        let mut keys = Vec::new();
        loop {
            keys.push(self.number()? as usize);
            if !self.try_consume(",") {
                break;
            }
        }
        self.expect(")")?;
        self.expect(")")?;
        self.expect(".")?;
        Ok(TableDecl {
            relation: Symbol::intern(&relation),
            arity,
            keys,
        })
    }

    fn rule(&mut self) -> Result<(Rule, RuleSpans), ParseError> {
        self.skip_ws();
        let start = self.pos;
        let label = self.identifier()?;
        let label_span = Span::new(start, self.pos);
        let (head, head_span, head_args) = self.head()?;
        self.expect(":-")?;
        let mut body = Vec::new();
        let mut body_spans = Vec::new();
        loop {
            self.skip_ws();
            let item_start = self.pos;
            body.push(self.body_item()?);
            body_spans.push(Span::new(item_start, self.pos));
            if !self.try_consume(",") {
                break;
            }
        }
        self.expect(".")?;
        let rule = Rule {
            label: Symbol::intern(&label),
            head,
            body,
        };
        let spans = RuleSpans {
            full: Span::new(start, self.pos),
            label: label_span,
            head: head_span,
            head_args,
            body: body_spans,
        };
        Ok((rule, spans))
    }

    fn head(&mut self) -> Result<(RuleHead, Span, Vec<Span>), ParseError> {
        self.skip_ws();
        let start = self.pos;
        let relation = self.identifier()?;
        self.expect("(")?;
        self.expect("@")?;
        let location = self.term()?;
        let mut args = Vec::new();
        let mut arg_spans = Vec::new();
        while self.try_consume(",") {
            self.skip_ws();
            let arg_start = self.pos;
            args.push(self.head_arg()?);
            arg_spans.push(Span::new(arg_start, self.pos));
        }
        self.expect(")")?;
        let head = RuleHead {
            relation: Symbol::intern(&relation),
            location,
            args,
        };
        Ok((head, Span::new(start, self.pos), arg_spans))
    }

    fn head_arg(&mut self) -> Result<HeadArg, ParseError> {
        self.skip_ws();
        // Aggregate?  min<C> / max<C> / count<*>
        for (kw, func) in [
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
            ("count", AggFunc::Count),
            ("MIN", AggFunc::Min),
            ("MAX", AggFunc::Max),
            ("COUNT", AggFunc::Count),
        ] {
            if self.peek_keyword(kw) {
                let save = self.pos;
                self.pos += kw.len();
                if self.try_consume("<") {
                    let var = if self.try_consume("*") {
                        None
                    } else {
                        Some(Symbol::intern(&self.identifier()?))
                    };
                    self.expect(">")?;
                    return Ok(HeadArg::Aggregate(func, var));
                }
                self.pos = save;
            }
        }
        let e = self.expr()?;
        Ok(match e {
            Expr::Term(t) => HeadArg::Term(t),
            other => HeadArg::Expr(other),
        })
    }

    fn body_item(&mut self) -> Result<BodyItem, ParseError> {
        self.skip_ws();
        let save = self.pos;
        // Try an atom: ident '(' '@' ...
        if let Ok(ident) = self.identifier() {
            if !Self::is_variable(&ident) && self.try_consume("(") && self.try_consume("@") {
                let location = self.term()?;
                let mut args = Vec::new();
                while self.try_consume(",") {
                    args.push(self.term()?);
                }
                self.expect(")")?;
                return Ok(BodyItem::Atom(Atom {
                    relation: Symbol::intern(&ident),
                    location,
                    args,
                }));
            }
        }
        self.pos = save;
        // Otherwise: assignment (Var = expr, where Var is currently unbound —
        // syntactically we accept Var = expr and distinguish `==` from `=`)
        // or a constraint expr CMP expr.
        let lhs = self.expr()?;
        self.skip_ws();
        let ops = [
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ];
        for (tok, op) in ops {
            if self.try_consume(tok) {
                let rhs = self.expr()?;
                return Ok(BodyItem::Constraint(op, lhs, rhs));
            }
        }
        if self.try_consume(":=") || self.try_consume("=") {
            let rhs = self.expr()?;
            return match lhs {
                Expr::Term(Term::Var(v)) => Ok(BodyItem::Assign(v, rhs)),
                // `f(X) = value` is a constraint in the paper's style
                // (e.g. `f_inPath(P2,S) = false`): treat as equality.
                other => Ok(BodyItem::Constraint(CmpOp::Eq, other, rhs)),
            };
        }
        self.err("expected atom, assignment or constraint")
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Term::Const(Value::from(self.string_literal()?))),
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                Ok(Term::Const(Value::Int(self.number()?)))
            }
            _ => {
                let ident = self.identifier()?;
                if Self::is_variable(&ident) {
                    Ok(Term::Var(Symbol::intern(&ident)))
                } else if ident == "true" {
                    Ok(Term::Const(Value::Bool(true)))
                } else if ident == "false" {
                    Ok(Term::Const(Value::Bool(false)))
                } else if ident == "null" {
                    Ok(Term::Const(Value::Digest([0u8; 20])))
                } else {
                    // Lowercase bare identifier: a symbolic constant (string).
                    Ok(Term::Const(Value::from(ident)))
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        // expr := factor (('+'|'-') factor)*
        let mut lhs = self.expr_factor()?;
        loop {
            self.skip_ws();
            // Careful not to swallow the ":-" of a following rule; '-' is only
            // an operator when not followed by a digit-starting negative
            // literal already consumed by `number`.
            if self.try_consume("+") {
                let rhs = self.expr_factor()?;
                lhs = Expr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.peek() == Some(b'-') && !self.src[self.pos..].starts_with("->") {
                self.pos += 1;
                let rhs = self.expr_factor()?;
                lhs = Expr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn expr_factor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_atom()?;
        loop {
            if self.try_consume("*") {
                let rhs = self.expr_atom()?;
                lhs = Expr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.try_consume("/") {
                let rhs = self.expr_atom()?;
                lhs = Expr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn expr_atom(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.try_consume("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        match self.peek() {
            Some(b'"') => Ok(Expr::Term(Term::Const(Value::from(self.string_literal()?)))),
            Some(c) if c.is_ascii_digit() => {
                Ok(Expr::Term(Term::Const(Value::Int(self.number()?))))
            }
            _ => {
                let save = self.pos;
                let ident = self.identifier()?;
                // Function call?
                if !Self::is_variable(&ident) && self.try_consume("(") {
                    let mut args = Vec::new();
                    if !self.try_consume(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.try_consume(",") {
                                break;
                            }
                        }
                        self.expect(")")?;
                    }
                    return Ok(Expr::Call(Symbol::intern(&ident), args));
                }
                self.pos = save;
                let t = self.term()?;
                Ok(Expr::Term(t))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mincost_from_paper() {
        let src = r#"
            // Figure 1: the MINCOST program.
            sp1 pathCost(@S,D,C) :- link(@S,D,C).
            sp2 pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
            sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
        "#;
        let p = parse_program("MINCOST", src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].label, "sp1");
        assert_eq!(p.rules[1].head.relation, "pathCost");
        // sp2's head third argument is the expression C1+C2.
        assert!(matches!(p.rules[1].head.args[1], HeadArg::Expr(_)));
        // sp3 carries a min aggregate.
        assert!(p.rules[2].is_aggregate());
        let (f, v, _) = p.rules[2].head.aggregate().unwrap();
        assert_eq!(f, AggFunc::Min);
        assert_eq!(v.map(Symbol::as_str), Some("C"));
    }

    #[test]
    fn parses_packet_forward_event_rule() {
        let src = r#"
            f1 ePacket(@Next,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload),
               bestHop(@N,Dst,Next).
        "#;
        let p = parse_program("PACKETFORWARD", src).unwrap();
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.head.relation, "ePacket");
        assert_eq!(r.body_atoms().count(), 2);
        assert_eq!(r.head.location, Term::var("Next"));
    }

    #[test]
    fn parses_materialize_declaration() {
        let src = r#"
            materialize(bestPathCost, 3, keys(0,1)).
            sp1 pathCost(@S,D,C) :- link(@S,D,C).
        "#;
        let p = parse_program("t", src).unwrap();
        assert_eq!(p.tables.len(), 1);
        assert_eq!(p.tables[0].relation, "bestPathCost");
        assert_eq!(p.tables[0].arity, 3);
        assert_eq!(p.tables[0].keys, vec![0, 1]);
    }

    #[test]
    fn parses_assignments_constraints_and_calls() {
        let src = r#"
            r20 ePathCostTemp(@RLoc,S,D,C,RID,R,List) :- link(@Z,S,C1),
                bestPathCost(@Z,D,C2), C=C1+C2, Z!=Y,
                RLoc=Z, R="sp2", PID1=f_sha1("link",Z,S,C1),
                PID2=f_sha1("bestPathCost",Z,D,C2),
                List=f_append(PID1,PID2), RID=f_sha1(R,RLoc,List).
        "#;
        let p = parse_program("rewritten", src).unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body_atoms().count(), 2);
        let assigns = r
            .body
            .iter()
            .filter(|b| matches!(b, BodyItem::Assign(_, _)))
            .count();
        assert_eq!(assigns, 7);
        let constraints = r
            .body
            .iter()
            .filter(|b| matches!(b, BodyItem::Constraint(_, _, _)))
            .count();
        assert_eq!(constraints, 1);
        // The f_sha1 call parsed as a Call expression.
        assert!(r.body.iter().any(|b| matches!(
            b,
            BodyItem::Assign(v, Expr::Call(f, args)) if v == "PID1" && f == "f_sha1" && args.len() == 4
        )));
    }

    #[test]
    fn parses_function_equality_constraint() {
        let src = r#"
            pv2 path(@S,D,P,C) :- link(@S,Z,C1), bestPath(@Z,D,P2,C2),
                C=C1+C2, f_inPath(P2,S)==false, P=f_prepend(S,P2).
        "#;
        let p = parse_program("pv", src).unwrap();
        let r = &p.rules[0];
        assert!(r.body.iter().any(|b| matches!(
            b,
            BodyItem::Constraint(CmpOp::Eq, Expr::Call(f, _), Expr::Term(Term::Const(Value::Bool(false)))) if f == "f_inPath"
        )));
    }

    #[test]
    fn symbolic_constants_strings_numbers() {
        let src = r#"r1 out(@X,Y) :- in(@X,Y), Y!=5, X!="hello", Y!=abc."#;
        let p = parse_program("t", src).unwrap();
        let constraint_rhs: Vec<_> = p.rules[0]
            .body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Constraint(_, _, Expr::Term(Term::Const(c))) => Some(c.clone()),
                _ => None,
            })
            .collect();
        assert!(constraint_rhs.contains(&Value::Int(5)));
        assert!(constraint_rhs.contains(&Value::Str("hello".into())));
        assert!(constraint_rhs.contains(&Value::Str("abc".into())));
    }

    #[test]
    fn operator_precedence() {
        let src = r#"r1 out(@X,V) :- in(@X,A,B,C), V=A+B*C."#;
        let p = parse_program("t", src).unwrap();
        let assign = p.rules[0]
            .body
            .iter()
            .find_map(|b| match b {
                BodyItem::Assign(v, e) if v == "V" => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        // Should parse as A + (B*C).
        assert!(matches!(
            assign,
            Expr::Arith(ArithOp::Add, _, ref rhs) if matches!(**rhs, Expr::Arith(ArithOp::Mul, _, _))
        ));
    }

    #[test]
    fn count_star_aggregate() {
        let src = r#"c0 numChild(@X,VID,count<*>) :- prov(@X,VID,RID,RLoc)."#;
        let p = parse_program("q", src).unwrap();
        let (f, v, idx) = p.rules[0].head.aggregate().unwrap();
        assert_eq!(f, AggFunc::Count);
        assert_eq!(v, None);
        assert_eq!(idx, 1);
    }

    #[test]
    fn reports_errors_with_offsets() {
        let err = parse_program("bad", "r1 foo(@X :- bar(@X).").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        assert!(parse_program("bad", "r1 foo(@X,Y) :- bar(@X,Y)").is_err()); // missing dot
        assert!(parse_program("bad", "r1 foo(@X,Y) bar(@X,Y).").is_err()); // missing :-
        assert!(parse_program("bad", r#"r1 foo(@X) :- bar(@X), Y="unterminated."#).is_err());
    }

    #[test]
    fn source_map_records_rule_and_body_spans() {
        let src = "materialize(link, 3, keys(0,1)).\n\
                   sp1 pathCost(@S,D,C) :- link(@S,D,C), C<10.\n";
        let (p, map) = parse_program_spanned("MINCOST", src).unwrap();
        assert_eq!(map.tables.len(), p.tables.len());
        assert_eq!(map.rules.len(), p.rules.len());
        let r = &map.rules[0];
        assert_eq!(&src[r.label.start..r.label.end], "sp1");
        assert_eq!(&src[r.head.start..r.head.end], "pathCost(@S,D,C)");
        assert_eq!(r.body.len(), 2);
        assert_eq!(&src[r.body[0].start..r.body[0].end], "link(@S,D,C)");
        assert_eq!(&src[r.body[1].start..r.body[1].end], "C<10");
        assert_eq!(r.head_args.len(), 2);
        assert_eq!(&src[r.head_args[1].start..r.head_args[1].end], "C");
        // The rule span starts on line 2.
        assert_eq!(map.line_col(r.full.start), (2, 1));
        // Out-of-range body lookups (normalization appendices) fall back to
        // the head span.
        assert_eq!(map.body_item(0, 7), Some(r.head));
        assert_eq!(map.head_arg(0, 9), Some(r.head));
    }

    #[test]
    fn round_trip_display_reparse() {
        let src = r#"
            sp1 pathCost(@S,D,C) :- link(@S,D,C).
            sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C), C<100, D!=S.
        "#;
        let p = parse_program("t", src).unwrap();
        let printed = p.to_string();
        let reparsed = parse_program("t", &printed).unwrap();
        assert_eq!(p.rules, reparsed.rules);
    }
}
