//! `ndlog-lint` — static analysis driver for NDlog programs.
//!
//! Runs the full [`mod@exspan_ndlog::analyze`] pipeline (validation, schema and
//! type inference, safety and stratification, liveness, distribution notes)
//! over NDlog source files and/or the built-in programs, rendering every
//! diagnostic with `file:line:col` locations and caret snippets.
//!
//! ```text
//! ndlog-lint [OPTIONS] [FILES...]
//!
//!   --builtins        lint the built-in programs (MINCOST, PATHVECTOR,
//!                     PACKETFORWARD); the default when no FILES are given
//!   --deny-warnings   exit non-zero on warnings, not just errors
//!   --quiet           print nothing but the final summary line
//!   --help            this message
//! ```
//!
//! Exit status: `0` when no diagnostic at or above the failure threshold was
//! produced, `1` otherwise, `2` on usage or I/O errors.  Notes (severity
//! below warning) never affect the exit status.

use exspan_ndlog::diag::Severity;
use exspan_ndlog::parser::parse_program_spanned;
use exspan_ndlog::{analyze_with_source, programs};
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    quiet: bool,
    builtins: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: ndlog-lint [--builtins] [--deny-warnings] [--quiet] [FILES...]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        quiet: false,
        builtins: false,
        files: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" => opts.quiet = true,
            "--builtins" => opts.builtins = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}\n{USAGE}"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        opts.builtins = true;
    }
    Ok(opts)
}

/// Outcome counters for one linted program.
#[derive(Default)]
struct Totals {
    errors: usize,
    warnings: usize,
    notes: usize,
    failed_to_parse: usize,
}

fn lint_source(name: &str, source: &str, opts: &Options, totals: &mut Totals) {
    let (program, map) = match parse_program_spanned(name, source) {
        Ok(ok) => ok,
        Err(e) => {
            totals.failed_to_parse += 1;
            let (line, col) = exspan_ndlog::diag::line_col_of(source, e.offset);
            if !opts.quiet {
                eprintln!("error: {name}:{line}:{col}: {}", e.message);
            }
            return;
        }
    };
    let analysis = analyze_with_source(&program, Some(&map));
    for d in analysis.diagnostics.iter() {
        match d.severity {
            Severity::Error => totals.errors += 1,
            Severity::Warning => totals.warnings += 1,
            Severity::Note => totals.notes += 1,
        }
        if !opts.quiet {
            println!("{}\n", d.render(Some(&map)));
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut totals = Totals::default();
    if opts.builtins {
        for (name, source) in programs::builtin_sources() {
            lint_source(name, &source, &opts, &mut totals);
        }
    }
    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        lint_source(file, &source, &opts, &mut totals);
    }

    println!(
        "{} error(s), {} warning(s), {} note(s)",
        totals.errors + totals.failed_to_parse,
        totals.warnings,
        totals.notes
    );
    let failed =
        totals.errors + totals.failed_to_parse > 0 || (opts.deny_warnings && totals.warnings > 0);
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
