//! The built-in declarative networking programs used as workloads by the
//! evaluation (paper §7, "Applications"):
//!
//! * [`mincost`] — Figure 1 of the paper: computes the best (least-cost) path
//!   cost between every pair of nodes.
//! * [`path_vector`] — extends MINCOST so each node also discovers the best
//!   path itself, transmitted as a vector of nodes.
//! * [`packet_forward`] — the data-plane application: forwards `ePacket`
//!   events hop-by-hop along the previously discovered best paths
//!   (Figure 2 of the paper), layered on top of PATHVECTOR.

use crate::ast::Program;
use crate::parser::parse_program;

/// The maximum path cost MINCOST will propagate.  Like the "infinity" bound
/// of distance-vector protocols (e.g. RIP's 16), this keeps incremental
/// deletion from counting to infinity when a destination becomes unreachable;
/// it is far above any real path cost in the evaluation topologies.
pub const MINCOST_INFINITY: i64 = 64;

/// The MINCOST program (paper Figure 1).
///
/// ```text
/// sp1 pathCost(@S,D,C) :- link(@S,D,C).
/// sp2 pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
/// sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
/// ```
///
/// Rule `sp2` additionally carries the bound `C < MINCOST_INFINITY` (see
/// [`MINCOST_INFINITY`]); the paper elides it, but without an infinity bound
/// any distance-vector computation counts to infinity under link deletions.
pub fn mincost() -> Program {
    parse_program("MINCOST", &mincost_source())
        .expect("MINCOST program must parse")
        .normalize()
}

/// The NDlog source text of [`mincost`] (pre-normalization), for spanned
/// linting by `ndlog-lint --builtins`.
pub fn mincost_source() -> String {
    format!(
        r#"
        materialize(link, 3, keys(0,1)).
        materialize(pathCost, 3, keys(0,1,2)).
        materialize(bestPathCost, 3, keys(0,1)).

        sp1 pathCost(@S,D,C) :- link(@S,D,C).
        sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2,
                                C<{MINCOST_INFINITY}.
        sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
        "#
    )
}

/// The PATHVECTOR program: best paths as node vectors.
///
/// A `path(@S,D,P,C)` tuple records a loop-free path `P` (a list of nodes
/// starting at `S` and ending at `D`) of cost `C`; `bestPath` keeps the one
/// achieving the minimal cost.  Loop freedom is enforced by the `f_inPath`
/// check, as in standard declarative path-vector formulations.
pub fn path_vector() -> Program {
    parse_program("PATHVECTOR", PATH_VECTOR_SOURCE)
        .expect("PATHVECTOR program must parse")
        .normalize()
}

const PATH_VECTOR_SOURCE: &str = r#"
        materialize(link, 3, keys(0,1)).
        materialize(path, 4, keys(0,1,2,3)).
        materialize(bestPathCost, 3, keys(0,1)).
        materialize(bestPath, 4, keys(0,1)).

        pv1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).
        pv2 path(@S,D,P,C) :- link(@Z,S,C1), bestPath(@Z,D,P2,C2), C=C1+C2,
                              f_inPath(P2,S)==false, P=f_prepend(S,P2).
        pv3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        pv4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        "#;

/// The NDlog source text of [`path_vector`] (pre-normalization).
pub fn path_vector_source() -> String {
    PATH_VECTOR_SOURCE.to_string()
}

/// The PACKETFORWARD program (paper Figure 2), layered on PATHVECTOR.
///
/// `bestHop` is derived from the best path's second element; an `ePacket`
/// event is relayed to the next hop until it reaches its destination, where a
/// `recvPacket` tuple is materialized.
pub fn packet_forward() -> Program {
    parse_program("PACKETFORWARD", &packet_forward_source())
        .expect("PACKETFORWARD program must parse")
        .normalize()
}

const FORWARDING_SOURCE: &str = r#"
        materialize(bestHop, 3, keys(0,1)).
        materialize(recvPacket, 4, keys(0,1,2,3)).

        bh1 bestHop(@S,D,NH) :- bestPath(@S,D,P,C), NH=f_nextHop(P).
        f1 ePacket(@Next,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload),
                                             bestHop(@N,Dst,Next), N!=Dst.
        f2 recvPacket(@N,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload), N==Dst.
        "#;

/// The NDlog source text of [`packet_forward`] (pre-normalization): the
/// PATHVECTOR control plane followed by the forwarding data plane.
pub fn packet_forward_source() -> String {
    format!("{PATH_VECTOR_SOURCE}\n{FORWARDING_SOURCE}")
}

/// `(name, source)` pairs for every built-in program, in a stable order.
/// `ndlog-lint --builtins` lints these with full span information.
pub fn builtin_sources() -> Vec<(&'static str, String)> {
    vec![
        ("MINCOST", mincost_source()),
        ("PATHVECTOR", path_vector_source()),
        ("PACKETFORWARD", packet_forward_source()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_program;

    #[test]
    fn mincost_structure_matches_paper() {
        let p = mincost();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rule("sp1").unwrap().head.relation, "pathCost");
        assert!(p.rule("sp3").unwrap().is_aggregate());
        assert_eq!(
            p.base_relations().into_iter().collect::<Vec<_>>(),
            vec!["link"]
        );
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn path_vector_structure() {
        let p = path_vector();
        assert_eq!(p.rules.len(), 4);
        assert!(p.derived_relations().contains("bestPath"));
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn packet_forward_includes_control_and_data_plane() {
        let p = packet_forward();
        assert!(p.rule("pv2").is_some(), "control plane rules present");
        assert!(p.rule("f1").is_some(), "data plane rules present");
        assert!(p.table("bestHop").is_some());
        assert!(validate_program(&p).is_ok());
        // ePacket is an event predicate, so it must not be materialized.
        assert!(p.table("ePacket").is_none());
        assert!(crate::is_event_predicate("ePacket"));
    }

    #[test]
    fn normalization_removed_head_expressions() {
        // sp2's head expression C1+C2 must have been normalized into an
        // assignment so the provenance rewrite can treat all head args as
        // plain terms.
        let p = mincost();
        for rule in &p.rules {
            for arg in &rule.head.args {
                assert!(
                    !matches!(arg, crate::ast::HeadArg::Expr(_)),
                    "rule {} still has an expression head argument",
                    rule.label
                );
            }
        }
    }
}
