//! Pass 3 — reachability and liveness warnings.
//!
//! Computes the set of *derivable* relations by fixpoint: base relations
//! (never the head of any rule — seeded externally, like the topology's
//! `link` table or a test's injected deltas) and event predicates (injected
//! by workloads) start derivable; a rule whose body atoms are all derivable
//! makes its head derivable.  Anything left over is dead weight:
//!
//! * `W001` — a derived relation that can never actually be derived (its
//!   rules all depend, directly or transitively, on underivable state).
//! * `W002` — a rule that can never fire because a body atom is underivable.
//! * `W003` — a `materialize` declaration no rule reads *or* writes
//!   (write-only tables are fine: they are a program's outputs).

use crate::ast::{BodyItem, Program};
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap};
use exspan_types::RelId;
use std::collections::BTreeSet;

/// Runs the pass, pushing diagnostics into `out`.
pub(crate) fn check(program: &Program, source: Option<&SourceMap>, out: &mut Diagnostics) {
    let heads: BTreeSet<RelId> = program.rules.iter().map(|r| r.head.relation).collect();

    // Seeds: base relations (mentioned anywhere but never derived) and event
    // predicates (injected by the workload even when rules also derive them).
    let mut derivable: BTreeSet<RelId> = BTreeSet::new();
    let mut mentioned: BTreeSet<RelId> = heads.clone();
    for table in &program.tables {
        mentioned.insert(table.relation);
    }
    for rule in &program.rules {
        for atom in rule.body_atoms() {
            mentioned.insert(atom.relation);
        }
    }
    for &rel in &mentioned {
        if !heads.contains(&rel) || crate::is_event_predicate(rel.as_str()) {
            derivable.insert(rel);
        }
    }

    // Fixpoint.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if derivable.contains(&rule.head.relation) {
                continue;
            }
            if rule.body_atoms().all(|a| derivable.contains(&a.relation)) {
                derivable.insert(rule.head.relation);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // W001: derived-but-underivable relations, reported at their first
    // body occurrence (that is where the dead dependency bites).
    let mut reported: BTreeSet<RelId> = BTreeSet::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        for (bi, item) in rule.body.iter().enumerate() {
            let BodyItem::Atom(a) = item else { continue };
            if derivable.contains(&a.relation) || !reported.insert(a.relation) {
                continue;
            }
            let span = source.and_then(|m| m.body_item(ri, bi));
            let msg = format!(
                "{} can never be derived: every rule deriving it depends on underivable state",
                a.relation
            );
            out.push(Diagnostic::new("W001", Severity::Warning, None, msg).with_span(span));
        }
    }

    // W002: rules that can never fire.
    for (ri, rule) in program.rules.iter().enumerate() {
        let dead = rule.body_atoms().find(|a| !derivable.contains(&a.relation));
        if let Some(atom) = dead {
            let span = source.and_then(|m| m.rule(ri).map(|r| r.full));
            let msg = format!(
                "rule can never fire: body atom {} is never derivable",
                atom.relation
            );
            out.push(
                Diagnostic::new("W002", Severity::Warning, Some(rule.label), msg).with_span(span),
            );
        }
    }

    // W003: declared tables neither read nor written.
    let mut read: BTreeSet<RelId> = BTreeSet::new();
    for rule in &program.rules {
        for atom in rule.body_atoms() {
            read.insert(atom.relation);
        }
    }
    for (ti, table) in program.tables.iter().enumerate() {
        if read.contains(&table.relation) || heads.contains(&table.relation) {
            continue;
        }
        // The engine seeds `link` from the topology even when no rule
        // derives it, so a declared-but-unread link table is still unused.
        let span = source.and_then(|m| m.tables.get(ti).copied());
        let msg = format!(
            "table {} is declared but no rule reads or writes it",
            table.relation
        );
        out.push(Diagnostic::new("W003", Severity::Warning, None, msg).with_span(span));
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze;
    use crate::parser::parse_program;

    fn warning_codes(src: &str) -> Vec<&'static str> {
        let p = parse_program("t", src).unwrap();
        analyze(&p).warnings().map(|d| d.code).collect()
    }

    #[test]
    fn underivable_relation_warns() {
        // ghost is derived only from itself: no base case.
        let codes = warning_codes(
            "g1 ghost(@S,X) :- ghost(@S,X).\n\
             r1 out(@S,X) :- ghost(@S,X).\n",
        );
        assert!(codes.contains(&"W001"), "{codes:?}");
        assert!(codes.contains(&"W002"), "{codes:?}");
    }

    #[test]
    fn event_predicates_are_externally_injectable() {
        let codes = warning_codes(
            "f1 ePacket(@N,D) :- ePacket(@S,D), hop(@S,N).\n\
             f2 got(@S,D) :- ePacket(@S,D).\n",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn unused_table_warns_but_write_only_does_not() {
        let codes = warning_codes(
            "materialize(orphan, 2, keys(0)).\n\
             materialize(sink, 2, keys(0)).\n\
             r1 sink(@S,X) :- a(@S,X).\n",
        );
        assert_eq!(codes, vec!["W003"], "{codes:?}");
    }

    #[test]
    fn builtins_have_no_liveness_warnings() {
        for p in [
            crate::programs::mincost(),
            crate::programs::path_vector(),
            crate::programs::packet_forward(),
        ] {
            let a = analyze(&p);
            assert!(
                !a.diagnostics.has_warnings(),
                "{}: {}",
                p.name,
                a.diagnostics.render(None)
            );
        }
    }
}
