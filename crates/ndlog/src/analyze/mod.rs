//! Static analysis of NDlog programs: everything that can be checked at
//! load time, before a program reaches the provenance rewrite or the
//! distributed engine.
//!
//! [`analyze`] runs four passes over the shared [`Diagnostics`]
//! infrastructure of [`crate::diag`], after the structural checks of
//! [`crate::validate`]:
//!
//! 1. [`schema`] — per-column type inference and arity checking: every
//!    relation's column types are inferred from constants, arithmetic,
//!    built-in function signatures and location positions, then unified
//!    across all rules and [`crate::ast::TableDecl`]s.  Catches swapped
//!    columns, arity mismatches, unknown built-ins and impossible
//!    comparisons.
//! 2. [`safety`] — aggregate stratification and constraint satisfiability:
//!    recursion through an aggregate must be the sanctioned monotone
//!    pattern (`min`/`max` with a bounding constraint somewhere on every
//!    cycle, like MINCOST's `C < ∞` bound); constraints that can never hold
//!    are rejected.
//! 3. [`reachability`] — liveness warnings: relations never derivable from
//!    base tables or events, rules that can never fire, and declared tables
//!    no rule reads or writes.
//! 4. [`distribution`] — deployment-shape notes: rules that ship every
//!    derivation across the network into an aggregate group, plus an
//!    index-demand report explaining which secondary indexes the join
//!    planner ([`crate::plan`]) materializes and which joins fall back to
//!    scans.
//!
//! Severities gate differently: [`Severity::Error`] fails
//! `Exspan::builder().build()`; [`Severity::Warning`] additionally fails
//! `ndlog-lint --deny-warnings`; [`Severity::Note`] is purely informational
//! and never fails anything.  The full code catalog is documented at the
//! crate root.

pub mod distribution;
pub mod reachability;
pub mod safety;
pub mod schema;

use crate::ast::Program;
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap};
use crate::validate::validate_into;

pub use schema::{ColType, RelSchema, Schema};

/// The result of analyzing a program: all diagnostics (stably ordered) plus
/// the inferred relation schemas.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every finding, sorted errors-first (see [`Diagnostics::sort`]).
    pub diagnostics: Diagnostics,
    /// Inferred per-relation column types (index 0 is the location).
    pub schema: Schema,
}

impl Analysis {
    /// Whether any [`Severity::Error`] diagnostic was produced; such
    /// programs must not be deployed.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.has_errors()
    }

    /// Error diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.of_severity(Severity::Error)
    }

    /// Warning diagnostics only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.of_severity(Severity::Warning)
    }

    /// Note diagnostics only.
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.of_severity(Severity::Note)
    }
}

/// Analyzes `program` without source spans (for programs built directly from
/// the AST).  Equivalent to [`analyze_with_source`]`(program, None)`.
pub fn analyze(program: &Program) -> Analysis {
    analyze_with_source(program, None)
}

/// Analyzes `program`, attaching source spans from `source` (as produced by
/// [`crate::parser::parse_program_spanned`]) so diagnostics render
/// `program:line:col` locations with caret snippets.
pub fn analyze_with_source(program: &Program, source: Option<&SourceMap>) -> Analysis {
    let mut out = Diagnostics::new();
    validate_into(program, source, &mut out);
    let schema = schema::infer(program, source, &mut out);
    safety::check(program, source, &mut out);
    reachability::check(program, source, &mut out);
    distribution::check(program, source, &mut out);
    out.sort();
    Analysis {
        diagnostics: out,
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program_spanned;
    use crate::programs;

    #[test]
    fn builtin_programs_analyze_without_errors_or_warnings() {
        for p in [
            programs::mincost(),
            programs::path_vector(),
            programs::packet_forward(),
        ] {
            let a = analyze(&p);
            assert!(
                !a.diagnostics.has_warnings(),
                "program {} produced errors/warnings:\n{}",
                p.name,
                a.diagnostics.render(None)
            );
        }
    }

    #[test]
    fn analysis_verdict_is_stable_under_normalization() {
        // The deployment path analyzes the program it was handed but executes
        // the normalized form: both must agree on acceptance.
        let (p, map) =
            parse_program_spanned("t", "r1 out(@S,C1+C2) :- a(@S,C1), b(@S,C2).\n").unwrap();
        assert!(!analyze_with_source(&p, Some(&map)).has_errors());
        assert!(!analyze(&p.normalize()).has_errors());
    }

    #[test]
    fn mincost_schema_is_inferred() {
        let a = analyze(&programs::mincost());
        let link = a.schema.get(&exspan_types::RelId::intern("link")).unwrap();
        assert_eq!(link.cols[0], ColType::Node);
        assert_eq!(link.cols[1], ColType::Node);
        assert_eq!(link.cols[2], ColType::Int);
        let best = a
            .schema
            .get(&exspan_types::RelId::intern("bestPathCost"))
            .unwrap();
        assert_eq!(best.cols, vec![ColType::Node, ColType::Node, ColType::Int]);
    }
}
