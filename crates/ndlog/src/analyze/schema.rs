//! Pass 1 — schema and type inference.
//!
//! Infers a per-column type for every relation from the evidence a program
//! carries statically: location positions are node ids, constants have
//! manifest types, arithmetic produces integers, and every built-in function
//! has a known signature (`f_sha1 → digest`, `f_inPath → bool`, …).  Types
//! flow through rule variables in both directions — from stored columns into
//! head derivations and back — until a fixpoint, then every atom is checked
//! against the result.
//!
//! The engine-provided base relation `link` (seeded from the topology as
//! `link(@src, dst, cost)`) contributes its runtime schema
//! `(node, node, int)` whenever the program uses it at arity 3; all other
//! base tables start untyped and concretize only through use.
//!
//! Codes: `E008` (arity mismatch), `E009` (type mismatch), `E010` (unknown
//! built-in), `E011` (built-in arity), and `E013` for equality constraints
//! between provably different types (the constraint can never hold).

use crate::ast::{BodyItem, CmpOp, Expr, HeadArg, Program, Rule, Term};
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap, Span};
use exspan_types::{RelId, Symbol, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The inferred type of one relation column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ColType {
    /// No evidence either way (compatible with everything).
    Unknown,
    /// A node address (every location column, `@X`).
    Node,
    /// A signed integer (costs, counts, sizes).
    Int,
    /// A string (rule names, symbolic constants).
    Str,
    /// A boolean.
    Bool,
    /// A list (path vectors, VID lists).
    List,
    /// A 20-byte digest (VIDs, RIDs).
    Digest,
    /// An opaque packet payload.
    Payload,
}

impl ColType {
    /// Whether evidence has pinned this column to a concrete type.
    pub fn is_concrete(self) -> bool {
        self != ColType::Unknown
    }

    fn of_value(v: &Value) -> ColType {
        match v {
            Value::Node(_) => ColType::Node,
            Value::Int(_) => ColType::Int,
            Value::Str(_) => ColType::Str,
            Value::Bool(_) => ColType::Bool,
            Value::List(_) => ColType::List,
            Value::Digest(_) => ColType::Digest,
            Value::Payload(_) => ColType::Payload,
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColType::Unknown => "unknown",
            ColType::Node => "node",
            ColType::Int => "int",
            ColType::Str => "string",
            ColType::Bool => "bool",
            ColType::List => "list",
            ColType::Digest => "digest",
            ColType::Payload => "payload",
        };
        write!(f, "{s}")
    }
}

/// The inferred schema of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    /// Attribute count including the location (column 0).
    pub arity: usize,
    /// Whether a `materialize` declaration exists for the relation.
    pub declared: bool,
    /// Column types, index 0 being the location (always [`ColType::Node`]).
    pub cols: Vec<ColType>,
    /// Where the arity was first established (a declaration or a rule).
    arity_origin: String,
    /// Where each column's concrete type was first established.
    origins: Vec<Option<String>>,
}

impl RelSchema {
    fn new(arity: usize, declared: bool, arity_origin: String) -> RelSchema {
        let mut cols = vec![ColType::Unknown; arity];
        let mut origins = vec![None; arity];
        if arity > 0 {
            cols[0] = ColType::Node;
            origins[0] = Some("the location attribute".to_string());
        }
        RelSchema {
            arity,
            declared,
            cols,
            arity_origin,
            origins,
        }
    }
}

/// Inferred schemas for every relation a program mentions, keyed by relation.
pub type Schema = BTreeMap<RelId, RelSchema>;

/// Runs the pass, pushing diagnostics into `out` and returning the inferred
/// schema.
pub(crate) fn infer(
    program: &Program,
    source: Option<&SourceMap>,
    out: &mut Diagnostics,
) -> Schema {
    let mut infer = Infer {
        source,
        schema: Schema::new(),
        reported: BTreeSet::new(),
        out,
        changed: false,
    };
    infer.arities(program);
    infer.seed_link();
    // Monotone fixpoint: columns only move Unknown → concrete (conflicts
    // keep the first type), so this terminates; diagnostics deduplicate via
    // `reported`, making re-running each rule idempotent.
    loop {
        infer.changed = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            infer.rule(ri, rule);
        }
        if !infer.changed {
            break;
        }
    }
    infer.schema
}

/// Signature of a built-in function: exact arity (None = variadic), expected
/// argument types ([`ColType::Unknown`] = any), and return type.
struct FuncSig {
    exact_arity: Option<usize>,
    args: &'static [ColType],
    ret: ColType,
}

fn func_sig(name: &str) -> Option<FuncSig> {
    use ColType::*;
    let sig = |exact_arity, args, ret| FuncSig {
        exact_arity,
        args,
        ret,
    };
    Some(match name {
        "f_sha1" => sig(None, &[], Digest),
        "f_append" | "f_concat" => sig(None, &[], List),
        "f_empty" => sig(Some(0), &[], List),
        "f_size" => sig(Some(1), &[List], Int),
        "f_init" => sig(Some(2), &[Unknown, Unknown], List),
        "f_prepend" | "f_concatPath" => sig(Some(2), &[Unknown, List], List),
        "f_inPath" => sig(Some(2), &[List, Unknown], Bool),
        "f_first" | "f_last" | "f_nextHop" => sig(Some(1), &[List], Unknown),
        "f_item" => sig(Some(2), &[List, Int], Unknown),
        _ => return None,
    })
}

/// A variable's inferred type and the evidence that established it.
type VarTypes = BTreeMap<Symbol, (ColType, String)>;

struct Infer<'a> {
    source: Option<&'a SourceMap>,
    schema: Schema,
    reported: BTreeSet<(&'static str, String)>,
    out: &'a mut Diagnostics,
    changed: bool,
}

impl Infer<'_> {
    fn emit(
        &mut self,
        code: &'static str,
        severity: Severity,
        rule: Option<Symbol>,
        span: Option<Span>,
        message: String,
    ) {
        let key = (
            code,
            format!(
                "{}:{message}",
                rule.map_or("", exspan_types::Symbol::as_str)
            ),
        );
        if self.reported.insert(key) {
            self.out
                .push(Diagnostic::new(code, severity, rule, message).with_span(span));
        }
    }

    /// Establishes or checks the arity of every relation occurrence.
    fn arities(&mut self, program: &Program) {
        for (ti, decl) in program.tables.iter().enumerate() {
            let span = self.source.and_then(|m| m.tables.get(ti).copied());
            match self.schema.get(&decl.relation) {
                None => {
                    self.schema.insert(
                        decl.relation,
                        RelSchema::new(decl.arity, true, "its materialize declaration".into()),
                    );
                }
                Some(existing) if existing.arity != decl.arity => {
                    let msg = format!(
                        "table {} is declared with arity {} but an earlier declaration gives arity {}",
                        decl.relation, decl.arity, existing.arity
                    );
                    self.emit("E008", Severity::Error, None, span, msg);
                }
                Some(_) => {
                    if let Some(s) = self.schema.get_mut(&decl.relation) {
                        s.declared = true;
                    }
                }
            }
        }
        for (ri, rule) in program.rules.iter().enumerate() {
            let head_span = self.source.and_then(|m| m.rule(ri).map(|r| r.head));
            self.occurrence(
                rule.head.relation,
                rule.head.args.len() + 1,
                format!("the head of rule {}", rule.label),
                Some(rule.label),
                head_span,
            );
            for (bi, item) in rule.body.iter().enumerate() {
                if let BodyItem::Atom(a) = item {
                    let span = self.source.and_then(|m| m.body_item(ri, bi));
                    self.occurrence(
                        a.relation,
                        a.arity(),
                        format!("rule {}", rule.label),
                        Some(rule.label),
                        span,
                    );
                }
            }
        }
    }

    fn occurrence(
        &mut self,
        relation: RelId,
        arity: usize,
        where_str: String,
        rule: Option<Symbol>,
        span: Option<Span>,
    ) {
        match self.schema.get(&relation) {
            None => {
                self.schema
                    .insert(relation, RelSchema::new(arity, false, where_str));
            }
            Some(existing) if existing.arity != arity => {
                let msg = format!(
                    "{relation} is used with arity {arity} here but {} {} arity {}",
                    existing.arity_origin,
                    if existing.declared {
                        "declares"
                    } else {
                        "uses"
                    },
                    existing.arity
                );
                self.emit("E008", Severity::Error, rule, span, msg);
            }
            Some(_) => {}
        }
    }

    /// The engine seeds `link(@src, dst, cost)` from the topology; give the
    /// relation its runtime schema when the program uses it compatibly.
    fn seed_link(&mut self) {
        let link = RelId::intern("link");
        if let Some(s) = self.schema.get_mut(&link) {
            if s.arity == 3 {
                for (col, ty) in [(1, ColType::Node), (2, ColType::Int)] {
                    s.cols[col] = ty;
                    s.origins[col] = Some("the topology's link seeds".to_string());
                }
            }
        }
    }

    fn col_type(&self, relation: RelId, col: usize) -> ColType {
        self.schema
            .get(&relation)
            .and_then(|s| s.cols.get(col))
            .copied()
            .unwrap_or(ColType::Unknown)
    }

    /// Merges `ty` into `relation`'s column `col`, reporting a conflict if a
    /// different concrete type was already established.
    fn merge_col(
        &mut self,
        relation: RelId,
        col: usize,
        ty: ColType,
        origin: String,
        rule: Option<Symbol>,
        span: Option<Span>,
    ) {
        if !ty.is_concrete() {
            return;
        }
        let Some(s) = self.schema.get_mut(&relation) else {
            return;
        };
        let Some(slot) = s.cols.get_mut(col) else {
            return; // arity mismatch, already reported
        };
        if !slot.is_concrete() {
            *slot = ty;
            s.origins[col] = Some(origin);
            self.changed = true;
        } else if *slot != ty {
            let existing = *slot;
            let prior = s.origins[col]
                .clone()
                .unwrap_or_else(|| "earlier use".into());
            let msg = format!(
                "column {col} of {relation} is {existing} (from {prior}) but {ty} (from {origin})"
            );
            self.emit("E009", Severity::Error, rule, span, msg);
        }
    }

    /// Merges `ty` into a rule-local variable, reporting a conflict if the
    /// variable already has a different concrete type.
    fn set_var(
        &mut self,
        vars: &mut VarTypes,
        label: Symbol,
        span: Option<Span>,
        v: Symbol,
        ty: ColType,
        origin: String,
    ) {
        if !ty.is_concrete() {
            vars.entry(v).or_insert((ColType::Unknown, origin));
            return;
        }
        match vars.get(&v) {
            Some((existing, prior)) if existing.is_concrete() => {
                if *existing != ty {
                    let msg = format!(
                        "variable {v} is {existing} (from {prior}) but {ty} (from {origin})"
                    );
                    self.emit("E009", Severity::Error, Some(label), span, msg);
                }
            }
            _ => {
                vars.insert(v, (ty, origin));
            }
        }
    }

    fn var_type(vars: &VarTypes, v: Symbol) -> ColType {
        vars.get(&v).map_or(ColType::Unknown, |(t, _)| *t)
    }

    /// Infers the type of an expression, checking built-in calls and
    /// arithmetic, and back-inferring operand variable types where the
    /// context pins them (arith operands are ints, `f_size`'s argument is a
    /// list, …).
    fn expr(
        &mut self,
        e: &Expr,
        vars: &mut VarTypes,
        label: Symbol,
        span: Option<Span>,
    ) -> ColType {
        match e {
            Expr::Term(Term::Var(v)) => Self::var_type(vars, *v),
            Expr::Term(Term::Const(c)) => ColType::of_value(c),
            Expr::Arith(op, a, b) => {
                for operand in [a, b] {
                    let ty = self.expr(operand, vars, label, span);
                    if ty.is_concrete() && ty != ColType::Int {
                        let msg = format!("arithmetic ({op}) on a {ty} value");
                        self.emit("E009", Severity::Error, Some(label), span, msg);
                    } else if let Expr::Term(Term::Var(v)) = operand.as_ref() {
                        self.set_var(
                            vars,
                            label,
                            span,
                            *v,
                            ColType::Int,
                            format!("arithmetic in rule {label}"),
                        );
                    }
                }
                ColType::Int
            }
            Expr::Call(name, args) => {
                let Some(sig) = func_sig(name.as_str()) else {
                    let msg = format!("unknown built-in function {name}");
                    self.emit("E010", Severity::Error, Some(label), span, msg);
                    for a in args {
                        self.expr(a, vars, label, span);
                    }
                    return ColType::Unknown;
                };
                if let Some(exact) = sig.exact_arity {
                    if args.len() != exact {
                        let msg = format!("{name} expects {exact} argument(s), got {}", args.len());
                        self.emit("E011", Severity::Error, Some(label), span, msg);
                    }
                }
                for (i, a) in args.iter().enumerate() {
                    let ty = self.expr(a, vars, label, span);
                    let expected = sig.args.get(i).copied().unwrap_or(ColType::Unknown);
                    if !expected.is_concrete() {
                        continue;
                    }
                    if !ty.is_concrete() {
                        if let Expr::Term(Term::Var(v)) = a {
                            self.set_var(
                                vars,
                                label,
                                span,
                                *v,
                                expected,
                                format!("argument {} of {name}", i + 1),
                            );
                        }
                    } else if ty != expected {
                        let msg = format!(
                            "argument {} of {name} must be a {expected}, got a {ty} value",
                            i + 1
                        );
                        self.emit("E009", Severity::Error, Some(label), span, msg);
                    }
                }
                sig.ret
            }
        }
    }

    fn rule(&mut self, ri: usize, rule: &Rule) {
        let label = rule.label;
        let mut vars = VarTypes::new();
        let head_span = self.source.and_then(|m| m.rule(ri).map(|r| r.head));

        // Seed variable types from stored columns and location positions.
        for (bi, item) in rule.body.iter().enumerate() {
            let BodyItem::Atom(a) = item else { continue };
            let span = self.source.and_then(|m| m.body_item(ri, bi));
            if let Term::Var(v) = &a.location {
                self.set_var(
                    &mut vars,
                    label,
                    span,
                    *v,
                    ColType::Node,
                    format!("the @ location of {}", a.relation),
                );
            }
            for (i, t) in a.args.iter().enumerate() {
                let col = i + 1;
                match t {
                    Term::Var(v) => {
                        let ty = self.col_type(a.relation, col);
                        self.set_var(
                            &mut vars,
                            label,
                            span,
                            *v,
                            ty,
                            format!("column {col} of {}", a.relation),
                        );
                    }
                    Term::Const(c) => {
                        self.merge_col(
                            a.relation,
                            col,
                            ColType::of_value(c),
                            format!("a constant in rule {label}"),
                            Some(label),
                            span,
                        );
                    }
                }
            }
        }
        if let Term::Var(v) = &rule.head.location {
            self.set_var(
                &mut vars,
                label,
                head_span,
                *v,
                ColType::Node,
                "the head location".to_string(),
            );
        }

        // Assignments (binding order) and constraint typing.
        for (bi, item) in rule.body.iter().enumerate() {
            let span = self.source.and_then(|m| m.body_item(ri, bi));
            match item {
                BodyItem::Assign(v, e) => {
                    let ty = self.expr(e, &mut vars, label, span);
                    self.set_var(
                        &mut vars,
                        label,
                        span,
                        *v,
                        ty,
                        format!("an assignment in rule {label}"),
                    );
                }
                BodyItem::Constraint(op, a, b) => {
                    let ta = self.expr(a, &mut vars, label, span);
                    let tb = self.expr(b, &mut vars, label, span);
                    if !ta.is_concrete() || !tb.is_concrete() {
                        continue;
                    }
                    match op {
                        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                            let ordered = (ta == ColType::Int && tb == ColType::Int)
                                || (ta == ColType::Node && tb == ColType::Node);
                            if !ordered {
                                let msg = format!(
                                    "ordering comparison between {ta} and {tb} values can never succeed"
                                );
                                self.emit("E009", Severity::Error, Some(label), span, msg);
                            }
                        }
                        CmpOp::Eq => {
                            if ta != tb {
                                let msg = format!(
                                    "equality between {ta} and {tb} values is always false"
                                );
                                self.emit("E013", Severity::Error, Some(label), span, msg);
                            }
                        }
                        CmpOp::Ne => {}
                    }
                }
                BodyItem::Atom(_) => {}
            }
        }

        // Write variable types back into stored columns.
        for (bi, item) in rule.body.iter().enumerate() {
            let BodyItem::Atom(a) = item else { continue };
            let span = self.source.and_then(|m| m.body_item(ri, bi));
            for (i, t) in a.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    let ty = Self::var_type(&vars, *v);
                    self.merge_col(
                        a.relation,
                        i + 1,
                        ty,
                        format!("rule {label}"),
                        Some(label),
                        span,
                    );
                }
            }
        }

        // Head derivation types.
        for (ai, arg) in rule.head.args.iter().enumerate() {
            let span = self.source.and_then(|m| m.head_arg(ri, ai));
            let ty = match arg {
                HeadArg::Term(Term::Var(v)) => Self::var_type(&vars, *v),
                HeadArg::Term(Term::Const(c)) => ColType::of_value(c),
                HeadArg::Expr(e) => self.expr(e, &mut vars, label, span),
                HeadArg::Aggregate(crate::ast::AggFunc::Count, _) => ColType::Int,
                HeadArg::Aggregate(_, Some(v)) => Self::var_type(&vars, *v),
                HeadArg::Aggregate(_, None) => ColType::Unknown,
            };
            self.merge_col(
                rule.head.relation,
                ai + 1,
                ty,
                format!("the head of rule {label}"),
                Some(label),
                span,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<String> {
        let p = parse_program("t", src).unwrap();
        analyze(&p)
            .errors()
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect()
    }

    #[test]
    fn arity_mismatch_against_declaration_is_an_error() {
        // The pre-analysis validator only checked key positions; this is the
        // regression test for the closed hole.
        let errs = errors_of(
            "materialize(out, 2, keys(0)).\n\
             r1 out(@X,Y,Z) :- a(@X,Y,Z).\n",
        );
        assert!(
            errs.iter()
                .any(|e| e.starts_with("E008") && e.contains("out")),
            "{errs:?}"
        );
    }

    #[test]
    fn arity_mismatch_across_rules_is_an_error() {
        let errs = errors_of(
            "r1 out(@X,Y) :- a(@X,Y).\n\
             r2 out(@X,Y,Y) :- a(@X,Y).\n",
        );
        assert!(errs.iter().any(|e| e.starts_with("E008")), "{errs:?}");
    }

    #[test]
    fn swapped_columns_are_a_type_conflict() {
        // r1 derives out(loc, node, int); r2 swaps the columns.
        let errs = errors_of(
            "r1 out(@S,D,C) :- link(@S,D,C).\n\
             r2 out(@S,C,D) :- link(@S,D,C).\n",
        );
        assert!(errs.iter().any(|e| e.starts_with("E009")), "{errs:?}");
    }

    #[test]
    fn unknown_function_and_bad_function_arity() {
        let errs = errors_of("r1 out(@X,V) :- a(@X,Y), V=f_bogus(Y).\n");
        assert!(errs.iter().any(|e| e.starts_with("E010")), "{errs:?}");
        let errs = errors_of("r1 out(@X,V) :- a(@X,Y), V=f_size(Y,Y).\n");
        assert!(errs.iter().any(|e| e.starts_with("E011")), "{errs:?}");
    }

    #[test]
    fn arithmetic_on_lists_is_an_error() {
        let errs = errors_of("r1 out(@X,V) :- a(@X,Y), P=f_init(X,Y), V=P+1.\n");
        assert!(errs.iter().any(|e| e.starts_with("E009")), "{errs:?}");
    }

    #[test]
    fn cross_type_equality_is_statically_false() {
        // X is a location (node); comparing it with a string can never hold.
        let errs = errors_of("r1 out(@X,Y) :- a(@X,Y), X==\"name\".\n");
        assert!(errs.iter().any(|e| e.starts_with("E013")), "{errs:?}");
    }

    #[test]
    fn link_seed_types_flow_through_mincost() {
        let p = crate::programs::mincost();
        let a = analyze(&p);
        assert!(!a.has_errors(), "{}", a.diagnostics.render(None));
        let path_cost = a.schema.get(&RelId::intern("pathCost")).unwrap();
        assert_eq!(
            path_cost.cols,
            vec![ColType::Node, ColType::Node, ColType::Int]
        );
    }

    #[test]
    fn clean_programs_stay_clean() {
        let errs = errors_of(
            "pv1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).\n\
             pv3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }
}
