//! Pass 4 — distribution-shape notes.
//!
//! Nothing here is wrong, exactly — these notes explain what a program will
//! *cost* when deployed, using the same compiled plans the engine executes
//! ([`crate::plan::ProgramPlans`] over the normalized program, so the report
//! matches runtime behavior exactly):
//!
//! * `N001` — a rule with a remote head (`head(@Z, …) :- body(@S, …)`)
//!   derives into a relation consumed by an aggregate: every candidate
//!   derivation crosses the network just to lose the `min`/`max`/`count`
//!   race at the destination.  (This is the per-derivation traffic the
//!   paper's MINCOST evaluation measures.)
//! * `N002` — a secondary index the delta-join planner maintains.
//! * `N003` — a (rule, trigger) join level that probes no index and falls
//!   back to a full table scan.
//! * `N004` — a trigger whose plan joins a transient event predicate:
//!   transient state is never materialized, so the trigger is dead weight.

use crate::ast::{BodyItem, Program, Term};
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap};
use crate::plan::ProgramPlans;
use exspan_types::RelId;

/// Runs the pass, pushing diagnostics into `out`.
pub(crate) fn check(program: &Program, source: Option<&SourceMap>, out: &mut Diagnostics) {
    remote_feeds_into_aggregates(program, source, out);

    // Plans are compiled over the normalized program — the form the engine
    // executes.  `normalize` preserves rule order and count, so rule indexes
    // (and therefore spans) stay aligned with the source.
    let norm = program.normalize();
    let plans = ProgramPlans::compile(&norm);

    for (rel, keys) in &plans.demands {
        let span = table_span(program, source, *rel);
        for key in keys {
            let cols: Vec<String> = key.iter().map(|c| format!("col{c}")).collect();
            let msg = format!(
                "the delta-join planner maintains a secondary index on {rel}({})",
                cols.join(", ")
            );
            out.push(Diagnostic::new("N002", Severity::Note, None, msg).with_span(span));
        }
    }

    let mut triggers: Vec<_> = plans.triggers.iter().collect();
    triggers.sort_by_key(|((ri, ai), _)| (*ri, *ai));
    for ((ri, ai), plan) in triggers {
        let rule = &norm.rules[*ri];
        let span = source.and_then(|m| m.rule(*ri).map(|r| r.full));
        let BodyItem::Atom(trigger) = &rule.body[*ai] else {
            continue;
        };
        if plan.dead {
            let msg = format!(
                "when triggered by {}, this rule joins a transient event predicate \
                 that is never materialized; the trigger can produce no results",
                trigger.relation
            );
            out.push(
                Diagnostic::new("N004", Severity::Note, Some(rule.label), msg).with_span(span),
            );
            continue;
        }
        for level in &plan.levels {
            if !level.probes() {
                let msg = format!(
                    "when triggered by {}, the join probes no index for {} and \
                     falls back to a full scan",
                    trigger.relation, level.relation
                );
                out.push(
                    Diagnostic::new("N003", Severity::Note, Some(rule.label), msg).with_span(span),
                );
            }
        }
    }
}

/// `N001`: remote-headed rules deriving into an aggregate's input.
fn remote_feeds_into_aggregates(
    program: &Program,
    source: Option<&SourceMap>,
    out: &mut Diagnostics,
) {
    for (ri, rule) in program.rules.iter().enumerate() {
        let Some(first) = rule.body_atoms().next() else {
            continue;
        };
        let remote = match (&rule.head.location, &first.location) {
            (Term::Var(h), Term::Var(b)) => h != b,
            // A constant head location is a fixed destination: remote from
            // every other node.
            (Term::Const(_), _) => true,
            _ => false,
        };
        if !remote {
            continue;
        }
        for agg_rule in &program.rules {
            let Some((func, _, _)) = agg_rule.head.aggregate() else {
                continue;
            };
            if !agg_rule
                .body_atoms()
                .any(|a| a.relation == rule.head.relation)
            {
                continue;
            }
            let span = source.and_then(|m| m.rule(ri).map(|r| r.full));
            let msg = format!(
                "every derivation of {} is sent across the network into the {func} \
                 aggregate of rule {}; most arrivals lose the aggregate race",
                rule.head.relation, agg_rule.label
            );
            out.push(
                Diagnostic::new("N001", Severity::Note, Some(rule.label), msg).with_span(span),
            );
        }
    }
}

fn table_span(
    program: &Program,
    source: Option<&SourceMap>,
    rel: RelId,
) -> Option<crate::diag::Span> {
    let map = source?;
    let ti = program.tables.iter().position(|t| t.relation == rel)?;
    map.tables.get(ti).copied()
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze;
    use crate::parser::parse_program;

    fn note_codes(src: &str) -> Vec<&'static str> {
        let p = parse_program("t", src).unwrap();
        analyze(&p).notes().map(|d| d.code).collect()
    }

    #[test]
    fn mincost_reports_remote_feed_and_index_demands() {
        let a = analyze(&crate::programs::mincost());
        let notes: Vec<_> = a.notes().map(|d| d.code).collect();
        assert!(notes.contains(&"N001"), "{notes:?}");
        assert!(notes.contains(&"N002"), "{notes:?}");
    }

    #[test]
    fn local_rules_produce_no_remote_feed_note() {
        let codes = note_codes(
            "a1 pathCost(@S,D,C) :- link(@S,D,C).\n\
             a2 best(@S,D,min<C>) :- pathCost(@S,D,C).\n",
        );
        assert!(!codes.contains(&"N001"), "{codes:?}");
    }

    #[test]
    fn event_join_trigger_is_flagged_dead() {
        // Triggered by hop, the plan must join the transient ePing — dead.
        let codes = note_codes("f1 out(@N,D) :- ePing(@S,D), hop(@S,N).\n");
        assert!(codes.contains(&"N004"), "{codes:?}");
    }

    #[test]
    fn location_only_joins_fall_back_to_scans() {
        let codes = note_codes("j1 out(@S,X,Y) :- a(@S,X), b(@S,Y).\n");
        assert!(codes.contains(&"N003"), "{codes:?}");
    }
}
