//! Pass 2 — safety: aggregate stratification and constraint satisfiability.
//!
//! NDlog permits recursion *through* a `min`/`max` aggregate only in the
//! sanctioned monotone pattern of the paper's MINCOST program: every cycle
//! that re-derives the aggregate's input must pass through a rule carrying a
//! bounding constraint (MINCOST's `C < 64` horizon), so the recursion
//! converges instead of oscillating.  Formally, within each strongly
//! connected component of the relation-dependency graph that contains an
//! aggregate head: the subgraph of edges contributed by *unguarded* rules
//! (rules with no constraint in their body) must be acyclic.  `count`
//! aggregates are never monotone under churn and may not participate in
//! recursion at all.  Violations are `E012`.
//!
//! The pass also rejects constraints that can never hold (`E013`): constant
//! comparisons that fold to `false`, and per-variable integer bound sets
//! that are mutually contradictory (`C < 3, C > 5`).

use crate::ast::{AggFunc, BodyItem, CmpOp, Expr, Program, Term};
use crate::diag::{Diagnostic, Diagnostics, Severity, SourceMap};
use crate::eval::{Bindings, FuncRegistry};
use exspan_types::{RelId, Symbol, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Runs the pass, pushing diagnostics into `out`.
pub(crate) fn check(program: &Program, source: Option<&SourceMap>, out: &mut Diagnostics) {
    check_aggregate_recursion(program, source, out);
    for (ri, rule) in program.rules.iter().enumerate() {
        check_satisfiability(program, ri, rule, source, out);
    }
}

// ---------------------------------------------------------------------------
// Aggregate stratification (E012)
// ---------------------------------------------------------------------------

fn check_aggregate_recursion(program: &Program, source: Option<&SourceMap>, out: &mut Diagnostics) {
    let sccs = relation_sccs(program);
    for (ri, rule) in program.rules.iter().enumerate() {
        let Some((func, _, _)) = rule.head.aggregate() else {
            continue;
        };
        let head = rule.head.relation;
        let Some(scc) = sccs.iter().find(|s| s.contains(&head)) else {
            continue;
        };
        if !scc_is_cyclic(program, scc) {
            continue;
        }
        let span = source.and_then(|m| m.rule(ri).map(|r| r.full));
        match func {
            AggFunc::Count => {
                let msg = format!(
                    "count aggregate over {head} participates in recursion; \
                     count is not monotone under churn and cannot be maintained on a cycle"
                );
                out.push(
                    Diagnostic::new("E012", Severity::Error, Some(rule.label), msg).with_span(span),
                );
            }
            AggFunc::Min | AggFunc::Max => {
                if unguarded_subgraph_is_cyclic(program, scc) {
                    let msg = format!(
                        "recursion through the {func} aggregate over {head} has a cycle with no \
                         bounding constraint; add a guard (like MINCOST's cost horizon) so the \
                         recursion converges"
                    );
                    out.push(
                        Diagnostic::new("E012", Severity::Error, Some(rule.label), msg)
                            .with_span(span),
                    );
                }
            }
        }
    }
}

/// Strongly connected components of the relation-dependency graph
/// (edge: body relation → head relation), via Kosaraju.
fn relation_sccs(program: &Program) -> Vec<BTreeSet<RelId>> {
    let mut rels: BTreeSet<RelId> = BTreeSet::new();
    let mut fwd: BTreeMap<RelId, BTreeSet<RelId>> = BTreeMap::new();
    let mut rev: BTreeMap<RelId, BTreeSet<RelId>> = BTreeMap::new();
    for rule in &program.rules {
        rels.insert(rule.head.relation);
        for atom in rule.body_atoms() {
            rels.insert(atom.relation);
            fwd.entry(atom.relation)
                .or_default()
                .insert(rule.head.relation);
            rev.entry(rule.head.relation)
                .or_default()
                .insert(atom.relation);
        }
    }
    let mut order = Vec::new();
    let mut seen = BTreeSet::new();
    for &r in &rels {
        post_order(r, &fwd, &mut seen, &mut order);
    }
    let mut sccs = Vec::new();
    let mut assigned = BTreeSet::new();
    for &r in order.iter().rev() {
        if assigned.contains(&r) {
            continue;
        }
        let mut scc = BTreeSet::new();
        collect_scc(r, &rev, &mut assigned, &mut scc);
        sccs.push(scc);
    }
    sccs
}

fn post_order(
    r: RelId,
    edges: &BTreeMap<RelId, BTreeSet<RelId>>,
    seen: &mut BTreeSet<RelId>,
    order: &mut Vec<RelId>,
) {
    if !seen.insert(r) {
        return;
    }
    if let Some(next) = edges.get(&r) {
        for &n in next {
            post_order(n, edges, seen, order);
        }
    }
    order.push(r);
}

fn collect_scc(
    r: RelId,
    edges: &BTreeMap<RelId, BTreeSet<RelId>>,
    assigned: &mut BTreeSet<RelId>,
    scc: &mut BTreeSet<RelId>,
) {
    if !assigned.insert(r) {
        return;
    }
    scc.insert(r);
    if let Some(next) = edges.get(&r) {
        for &n in next {
            collect_scc(n, edges, assigned, scc);
        }
    }
}

/// A component is a real cycle when it has more than one relation, or a
/// single relation some rule derives directly from itself.
fn scc_is_cyclic(program: &Program, scc: &BTreeSet<RelId>) -> bool {
    if scc.len() > 1 {
        return true;
    }
    program.rules.iter().any(|rule| {
        scc.contains(&rule.head.relation)
            && rule.body_atoms().any(|a| a.relation == rule.head.relation)
    })
}

/// Whether the SCC-internal edges contributed by rules carrying *no*
/// constraint still form a cycle.  If every cycle passes through at least
/// one constrained rule, the recursion is bounded and sanctioned.
fn unguarded_subgraph_is_cyclic(program: &Program, scc: &BTreeSet<RelId>) -> bool {
    let mut edges: BTreeMap<RelId, BTreeSet<RelId>> = BTreeMap::new();
    for rule in &program.rules {
        if !scc.contains(&rule.head.relation) {
            continue;
        }
        let guarded = rule
            .body
            .iter()
            .any(|i| matches!(i, BodyItem::Constraint(..)));
        if guarded {
            continue;
        }
        for atom in rule.body_atoms() {
            if scc.contains(&atom.relation) {
                edges
                    .entry(atom.relation)
                    .or_default()
                    .insert(rule.head.relation);
            }
        }
    }
    // DFS cycle detection over the (tiny) subgraph.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Active,
        Done,
    }
    fn dfs(
        r: RelId,
        edges: &BTreeMap<RelId, BTreeSet<RelId>>,
        marks: &mut BTreeMap<RelId, Mark>,
    ) -> bool {
        match marks.get(&r) {
            Some(Mark::Active) => return true,
            Some(Mark::Done) => return false,
            None => {}
        }
        marks.insert(r, Mark::Active);
        if let Some(next) = edges.get(&r) {
            for &n in next {
                if dfs(n, edges, marks) {
                    return true;
                }
            }
        }
        marks.insert(r, Mark::Done);
        false
    }
    let mut marks = BTreeMap::new();
    scc.iter().any(|&r| dfs(r, &edges, &mut marks))
}

// ---------------------------------------------------------------------------
// Constraint satisfiability (E013)
// ---------------------------------------------------------------------------

/// Accumulated integer constraints on one variable, normalized to closed
/// bounds.
#[derive(Default)]
struct IntBounds {
    lo: Option<i64>,
    hi: Option<i64>,
    eq: Option<i64>,
    ne: BTreeSet<i64>,
}

fn check_satisfiability(
    _program: &Program,
    ri: usize,
    rule: &crate::ast::Rule,
    source: Option<&SourceMap>,
    out: &mut Diagnostics,
) {
    let funcs = FuncRegistry::new();
    let empty = Bindings::new();
    let mut bounds: BTreeMap<Symbol, IntBounds> = BTreeMap::new();
    for (bi, item) in rule.body.iter().enumerate() {
        let BodyItem::Constraint(op, lhs, rhs) = item else {
            continue;
        };
        let span = source.and_then(|m| m.body_item(ri, bi));
        let l = fold(lhs, &funcs, &empty);
        let r = fold(rhs, &funcs, &empty);
        match (l, r) {
            (Folded::Const(a), Folded::Const(b))
                if crate::eval::eval_cmp(*op, &a, &b) == Ok(false) =>
            {
                let msg = format!("constraint is always false ({a:?} {op} {b:?})");
                out.push(
                    Diagnostic::new("E013", Severity::Error, Some(rule.label), msg).with_span(span),
                );
            }
            (Folded::Var(v), Folded::Const(Value::Int(k))) => {
                record_bound(&mut bounds, v, *op, k);
            }
            (Folded::Const(Value::Int(k)), Folded::Var(v)) => {
                record_bound(&mut bounds, v, flip(*op), k);
            }
            _ => {}
        }
    }
    let span = source.and_then(|m| m.rule(ri).map(|r| r.full));
    for (v, b) in &bounds {
        if let Some(reason) = contradiction(b) {
            let msg = format!("constraints on {v} can never all hold ({reason})");
            out.push(
                Diagnostic::new("E013", Severity::Error, Some(rule.label), msg).with_span(span),
            );
        }
    }
}

enum Folded {
    Const(Value),
    Var(Symbol),
    Opaque,
}

/// Folds an expression that references no variables down to its value.
fn fold(e: &Expr, funcs: &FuncRegistry, empty: &Bindings) -> Folded {
    if let Expr::Term(Term::Var(v)) = e {
        return Folded::Var(*v);
    }
    match crate::eval::eval_expr(e, empty, funcs) {
        Ok(v) => Folded::Const(v),
        Err(_) => Folded::Opaque,
    }
}

/// Mirrors a comparison so the variable sits on the left: `3 < V` ⇒ `V > 3`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

fn record_bound(bounds: &mut BTreeMap<Symbol, IntBounds>, v: Symbol, op: CmpOp, k: i64) {
    let b = bounds.entry(v).or_default();
    match op {
        CmpOp::Lt => b.hi = Some(b.hi.map_or(k - 1, |h| h.min(k - 1))),
        CmpOp::Le => b.hi = Some(b.hi.map_or(k, |h| h.min(k))),
        CmpOp::Gt => b.lo = Some(b.lo.map_or(k + 1, |l| l.max(k + 1))),
        CmpOp::Ge => b.lo = Some(b.lo.map_or(k, |l| l.max(k))),
        CmpOp::Eq => {
            if let Some(prev) = b.eq {
                if prev != k {
                    // Two different required values: force the lo>hi check to
                    // trip by narrowing to an empty interval.
                    b.lo = Some(prev.max(k));
                    b.hi = Some(prev.min(k));
                }
            }
            b.eq = Some(k);
        }
        CmpOp::Ne => {
            b.ne.insert(k);
        }
    }
}

fn contradiction(b: &IntBounds) -> Option<String> {
    if let (Some(lo), Some(hi)) = (b.lo, b.hi) {
        if lo > hi {
            return Some(format!("requires both >= {lo} and <= {hi}"));
        }
    }
    if let Some(eq) = b.eq {
        if b.lo.is_some_and(|lo| eq < lo) || b.hi.is_some_and(|hi| eq > hi) {
            return Some(format!("== {eq} lies outside the bounded range"));
        }
        if b.ne.contains(&eq) {
            return Some(format!("requires both == {eq} and != {eq}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze;
    use crate::parser::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let p = parse_program("t", src).unwrap();
        analyze(&p).errors().map(|d| d.code).collect()
    }

    #[test]
    fn mincost_min_recursion_is_sanctioned() {
        let a = analyze(&crate::programs::mincost());
        assert!(
            !a.errors().any(|d| d.code == "E012"),
            "{}",
            a.diagnostics.render(None)
        );
    }

    #[test]
    fn unguarded_min_recursion_is_rejected() {
        // MINCOST minus its cost horizon: the min aggregate feeds itself
        // with no bounding constraint anywhere on the cycle.
        let codes = codes(
            "sp1 pathCost(@S,D,C) :- link(@S,D,C).\n\
             sp2 pathCost(@S,D,C1+C2) :- link(@S,Z,C1), bestPathCost(@S,D,C2).\n\
             sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).\n",
        );
        assert!(codes.contains(&"E012"), "{codes:?}");
    }

    #[test]
    fn count_recursion_is_always_rejected() {
        let codes = codes(
            "c1 total(@S,count<*>) :- item(@S,X).\n\
             c2 item(@S,N) :- total(@S,N), N < 5.\n",
        );
        assert!(codes.contains(&"E012"), "{codes:?}");
    }

    #[test]
    fn non_recursive_aggregates_are_fine() {
        let codes = codes(
            "a1 pathCost(@S,D,C) :- link(@S,D,C).\n\
             a2 best(@S,D,min<C>) :- pathCost(@S,D,C).\n",
        );
        assert!(!codes.contains(&"E012"), "{codes:?}");
    }

    #[test]
    fn contradictory_bounds_are_unsatisfiable() {
        let codes = codes("r1 out(@S,C) :- link(@S,D,C), C < 3, C > 5.\n");
        assert!(codes.contains(&"E013"), "{codes:?}");
    }

    #[test]
    fn constant_false_constraint_is_unsatisfiable() {
        let codes = codes("r1 out(@S,C) :- link(@S,D,C), 1 == 2.\n");
        assert!(codes.contains(&"E013"), "{codes:?}");
    }

    #[test]
    fn satisfiable_bounds_pass() {
        let codes = codes("r1 out(@S,C) :- link(@S,D,C), C > 0, C < 64, C != 7.\n");
        assert!(!codes.contains(&"E013"), "{codes:?}");
    }
}
