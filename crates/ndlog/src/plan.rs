//! Compile-time join planning: turning rule bodies into indexed probe plans.
//!
//! The engine evaluates a rule body by joining the trigger delta against the
//! stored tables of the remaining body atoms.  Done naïvely, every level of
//! that join scans a whole table and unifies against every row — O(|table|)
//! per atom and O(|table|^k) per trigger for a k-atom body.  This module
//! compiles, once at program-load time, a [`JoinPlan`] for every
//! `(rule, trigger atom)` pair (and, for aggregate rules, for the group
//! re-enumeration) that the runtime executes instead:
//!
//! * For each remaining body atom, given the variables bound so far, the plan
//!   records which argument positions are **bound** — the probe key — and how
//!   to obtain each key value at runtime (a term to evaluate, or the
//!   evaluating node for the localized location attribute).
//! * Atoms are ordered **greedily**: at each level the planner picks the atom
//!   with the most bound positions, so the most selective probes run first
//!   and the intermediate result stays small.
//! * The union of `(relation, key columns)` pairs appearing in any plan is
//!   the program's [index demand](ProgramPlans::demands): the storage layer
//!   maintains exactly those secondary indexes, nothing more.
//!
//! Planning is purely syntactic — it looks only at the AST — so the executor
//! still unifies every probed candidate: a probe narrows the candidate set
//! (always to a superset of the matching rows), it never replaces the match.
//! Determinism contract: the storage layer guarantees `probe()` yields
//! candidates in the same canonical order as `scan()`, and the executor
//! restores body-atom enumeration order for reordered plans, so a planned run
//! is bit-identical to the naïve scan evaluation.

use crate::ast::{Atom, BodyItem, HeadArg, Program, Rule, Term};
use crate::is_event_predicate;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use exspan_types::{RelId, Symbol};

/// How one probe-key value is obtained at execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// Evaluate this term under the current bindings (a constant, or a
    /// variable the plan proved is bound by the time this level runs).
    Term(Term),
    /// The location attribute equals the node the rule is evaluated at.
    /// Used by the aggregate re-enumeration paths, which restrict every
    /// candidate to the local node regardless of variable bindings.
    CurrentNode,
}

/// One level of a join plan: the body atom joined at this depth and the
/// columns (over the full attribute list, 0 = location) that are bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinLevel {
    /// Index of this atom within the rule body (`Rule::body`).
    pub body_idx: usize,
    /// Relation joined at this level.
    pub relation: RelId,
    /// Bound columns forming the probe key, ascending.  Empty means no
    /// selective position is bound: the executor falls back to a full scan.
    pub cols: Vec<usize>,
    /// How to compute each key value, parallel to `cols`.
    pub sources: Vec<KeySource>,
}

impl JoinLevel {
    /// Whether this level probes an index (vs. scanning the table).
    pub fn probes(&self) -> bool {
        !self.cols.is_empty()
    }
}

/// A compiled join order for one rule evaluation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Join levels in execution order (greedy most-bound-first).
    pub levels: Vec<JoinLevel>,
    /// Whether execution order equals body-atom order.  When true the
    /// executor's result sequence is already canonical and the
    /// order-restoring sort can be skipped.
    pub in_body_order: bool,
    /// True when some joined atom is an event predicate: transient state is
    /// never materialized, so the join can produce no results at all.
    pub dead: bool,
}

impl JoinPlan {
    /// The `(relation, key columns)` secondary indexes this plan probes.
    pub fn index_demands(&self) -> impl Iterator<Item = (RelId, &[usize])> {
        self.levels
            .iter()
            .filter(|l| l.probes())
            .map(|l| (l.relation, l.cols.as_slice()))
    }
}

/// Computes the probe columns of `atom` given the statically-bound variable
/// set.  `loc_is_node` marks the aggregate evaluation contexts, where every
/// candidate is filtered to the evaluating node before unification.
fn bound_cols(atom: &Atom, bound: &BTreeSet<Symbol>, loc_is_node: bool) -> JoinLevel {
    let mut cols = Vec::new();
    let mut sources = Vec::new();
    if loc_is_node {
        cols.push(0);
        sources.push(KeySource::CurrentNode);
    } else {
        let loc_bound = match &atom.location {
            Term::Var(v) => bound.contains(v),
            // Only node-valued constants can match a location; anything else
            // never unifies, which the per-candidate check handles.
            Term::Const(c) => c.as_node().is_ok() || c.as_int().is_ok(),
        };
        if loc_bound {
            cols.push(0);
            sources.push(KeySource::Term(atom.location.clone()));
        }
    }
    for (i, term) in atom.args.iter().enumerate() {
        let is_bound = match term {
            Term::Var(v) => bound.contains(v),
            Term::Const(_) => true,
        };
        if is_bound {
            cols.push(i + 1);
            sources.push(KeySource::Term(term.clone()));
        }
    }
    // A location-only key is not selective: tables are already partitioned
    // per (node, relation), so probing on the location alone would win
    // nothing over a scan while still costing index maintenance.
    if cols == [0] {
        cols.clear();
        sources.clear();
    }
    JoinLevel {
        body_idx: 0, // caller fills in
        relation: atom.relation,
        cols,
        sources,
    }
}

/// Greedily orders `atoms` (pairs of body index and atom), starting from the
/// `bound` variable set, and compiles the probe spec of every level.
fn greedy_levels(
    atoms: &[(usize, &Atom)],
    mut bound: BTreeSet<Symbol>,
    loc_is_node: bool,
) -> Vec<JoinLevel> {
    let mut remaining: Vec<(usize, &Atom)> = atoms.to_vec();
    let mut levels = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Score = number of bound non-location positions; ties resolve to the
        // earliest body atom so planning is deterministic.
        let mut best = 0usize;
        let mut best_score: Option<usize> = None;
        for (i, (_, atom)) in remaining.iter().enumerate() {
            let level = bound_cols(atom, &bound, loc_is_node);
            let score = level.cols.iter().filter(|&&c| c > 0).count();
            let improves = match best_score {
                None => true,
                Some(b) => score > b,
            };
            if improves {
                best = i;
                best_score = Some(score);
            }
        }
        let (body_idx, atom) = remaining.remove(best);
        let mut level = bound_cols(atom, &bound, loc_is_node);
        level.body_idx = body_idx;
        bound.extend(atom.variables());
        levels.push(level);
    }
    levels
}

fn finish_plan(levels: Vec<JoinLevel>, atoms: &[(usize, &Atom)]) -> JoinPlan {
    let in_body_order = levels.windows(2).all(|w| w[0].body_idx < w[1].body_idx);
    let dead = atoms
        .iter()
        .any(|(_, a)| is_event_predicate(a.relation.as_str()));
    JoinPlan {
        levels,
        in_body_order,
        dead,
    }
}

/// Compiles the join plan for `rule` when a delta arrives at body atom
/// `trigger_idx`: the trigger's variables (location included) are bound by
/// unification before any stored table is touched.
pub fn compile_trigger_plan(rule: &Rule, trigger_idx: usize) -> JoinPlan {
    let bound = match &rule.body[trigger_idx] {
        BodyItem::Atom(a) => a.variables(),
        _ => BTreeSet::new(),
    };
    let atoms: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, item)| match item {
            BodyItem::Atom(a) if i != trigger_idx => Some((i, a)),
            _ => None,
        })
        .collect();
    let levels = greedy_levels(&atoms, bound, false);
    finish_plan(levels, &atoms)
}

/// Compiles the full-body evaluation plan used by the aggregate paths, with
/// `initially_bound` variables pre-bound (the group key for a group
/// recomputation, nothing for the all-groups enumeration).  Every candidate
/// in these contexts is restricted to the evaluating node, so the location
/// column is always probeable.
pub fn compile_body_plan(rule: &Rule, initially_bound: &BTreeSet<Symbol>) -> JoinPlan {
    let atoms: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, item)| match item {
            BodyItem::Atom(a) => Some((i, a)),
            _ => None,
        })
        .collect();
    let levels = greedy_levels(&atoms, initially_bound.clone(), true);
    finish_plan(levels, &atoms)
}

/// The variables an aggregate rule's group key binds before re-enumeration:
/// the head location variable plus every non-aggregate head argument
/// variable (see the runtime's `group_bindings`).
pub fn group_bound_vars(rule: &Rule) -> BTreeSet<Symbol> {
    let mut bound = BTreeSet::new();
    let Some((_, _, agg_pos)) = rule.head.aggregate() else {
        return bound;
    };
    if let Term::Var(v) = &rule.head.location {
        bound.insert(*v);
    }
    for (i, arg) in rule.head.args.iter().enumerate() {
        if i == agg_pos {
            continue;
        }
        if let HeadArg::Term(Term::Var(v)) = arg {
            bound.insert(*v);
        }
    }
    bound
}

/// The head-table columns identifying one aggregate group's output row: the
/// location plus every non-aggregate argument position.  Used to look up the
/// currently stored output with one keyed probe instead of a scan.
pub fn group_output_cols(rule: &Rule) -> Vec<usize> {
    let Some((_, _, agg_pos)) = rule.head.aggregate() else {
        return Vec::new();
    };
    let mut cols = vec![0];
    for i in 0..rule.head.args.len() {
        if i != agg_pos {
            cols.push(i + 1);
        }
    }
    cols
}

/// The compiled plans of an aggregate rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRulePlans {
    /// Re-enumeration of one group (group-key variables pre-bound).
    pub group: JoinPlan,
    /// Enumeration of every group at a node (nothing pre-bound).
    pub all_groups: JoinPlan,
    /// Probe columns locating the group's stored output in the head table
    /// (empty when the head has no non-aggregate structure beyond the
    /// location, in which case the executor scans).
    pub output_cols: Vec<usize>,
}

/// Every compiled plan of a program, plus the union of index demands.
#[derive(Debug, Clone, Default)]
pub struct ProgramPlans {
    /// `(rule index, trigger body-atom index)` → plan, for non-aggregate
    /// rules.
    pub triggers: HashMap<(usize, usize), JoinPlan>,
    /// Rule index → aggregate plans, for aggregate rules.
    pub aggregates: HashMap<usize, AggRulePlans>,
    /// Relation → set of demanded secondary-index column lists.
    pub demands: BTreeMap<RelId, BTreeSet<Vec<usize>>>,
}

impl ProgramPlans {
    /// Compiles plans for every `(rule, trigger atom)` pair and every
    /// aggregate rule of `program`, collecting the index demands.
    pub fn compile(program: &Program) -> Self {
        let mut out = ProgramPlans::default();
        for (ri, rule) in program.rules.iter().enumerate() {
            if rule.is_aggregate() {
                let group = compile_body_plan(rule, &group_bound_vars(rule));
                let all_groups = compile_body_plan(rule, &BTreeSet::new());
                let output_cols = group_output_cols(rule);
                // A location-only output key degenerates to a scan (cf.
                // `bound_cols`).
                let output_cols = if output_cols.len() > 1 {
                    out.demand(rule.head.relation, output_cols.clone());
                    output_cols
                } else {
                    Vec::new()
                };
                out.collect_demands(&group);
                out.collect_demands(&all_groups);
                out.aggregates.insert(
                    ri,
                    AggRulePlans {
                        group,
                        all_groups,
                        output_cols,
                    },
                );
            } else {
                for (ai, item) in rule.body.iter().enumerate() {
                    if !matches!(item, BodyItem::Atom(_)) {
                        continue;
                    }
                    let plan = compile_trigger_plan(rule, ai);
                    out.collect_demands(&plan);
                    out.triggers.insert((ri, ai), plan);
                }
            }
        }
        out
    }

    /// Builds scan-only plans in body-atom order: execution is byte-identical
    /// to the historical nested-loop evaluation, and no index is maintained.
    /// This is the oracle side of the differential tests.
    pub fn disabled(program: &Program) -> Self {
        let mut out = ProgramPlans::default();
        for (ri, rule) in program.rules.iter().enumerate() {
            if rule.is_aggregate() {
                out.aggregates.insert(
                    ri,
                    AggRulePlans {
                        group: scan_only_body_plan(rule),
                        all_groups: scan_only_body_plan(rule),
                        output_cols: Vec::new(),
                    },
                );
            } else {
                for (ai, item) in rule.body.iter().enumerate() {
                    if !matches!(item, BodyItem::Atom(_)) {
                        continue;
                    }
                    out.triggers
                        .insert((ri, ai), scan_only_trigger_plan(rule, ai));
                }
            }
        }
        out
    }

    fn demand(&mut self, relation: RelId, cols: Vec<usize>) {
        self.demands.entry(relation).or_default().insert(cols);
    }

    fn collect_demands(&mut self, plan: &JoinPlan) {
        if plan.dead {
            return;
        }
        let demands: Vec<(RelId, Vec<usize>)> =
            plan.index_demands().map(|(r, c)| (r, c.to_vec())).collect();
        for (relation, cols) in demands {
            self.demand(relation, cols);
        }
    }
}

fn strip_probes(mut plan: JoinPlan) -> JoinPlan {
    for level in &mut plan.levels {
        level.cols.clear();
        level.sources.clear();
    }
    plan.levels.sort_by_key(|l| l.body_idx);
    plan.in_body_order = true;
    plan
}

fn scan_only_trigger_plan(rule: &Rule, trigger_idx: usize) -> JoinPlan {
    strip_probes(compile_trigger_plan(rule, trigger_idx))
}

fn scan_only_body_plan(rule: &Rule) -> JoinPlan {
    strip_probes(compile_body_plan(rule, &BTreeSet::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    fn rule<'a>(p: &'a Program, label: &str) -> (usize, &'a Rule) {
        p.rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.label == label)
            .unwrap_or_else(|| panic!("no rule {label}"))
    }

    #[test]
    fn trigger_plan_probes_fully_bound_atom() {
        // pv4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        let p = programs::path_vector();
        let (_, pv4) = rule(&p, "pv4");
        // Triggered by bestPathCost (atom 0): S, D, C bound -> probe path on
        // location, destination and cost (columns 0, 1, 3; P at 2 is free).
        let plan = compile_trigger_plan(pv4, 0);
        assert_eq!(plan.levels.len(), 1);
        assert_eq!(plan.levels[0].cols, vec![0, 1, 3]);
        assert!(plan.levels[0].probes());
        assert!(plan.in_body_order);
        assert!(!plan.dead);
        // Triggered by path (atom 1): bestPathCost fully bound.
        let plan = compile_trigger_plan(pv4, 1);
        assert_eq!(plan.levels[0].cols, vec![0, 1, 2]);
    }

    #[test]
    fn location_only_keys_degenerate_to_scans() {
        // sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), ...
        // Triggered by link, only Z is bound in bestPathCost -> scan.
        let p = programs::mincost();
        let (_, sp2) = rule(&p, "sp2");
        let plan = compile_trigger_plan(sp2, 0);
        assert_eq!(plan.levels.len(), 1);
        assert!(!plan.levels[0].probes());
    }

    #[test]
    fn aggregate_group_plan_probes_group_columns() {
        // pv3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C): the group key binds
        // S and D, so re-enumeration probes path on (location, D).
        let p = programs::path_vector();
        let (_, pv3) = rule(&p, "pv3");
        let bound = group_bound_vars(pv3);
        assert!(bound.contains("S") && bound.contains("D"));
        let plan = compile_body_plan(pv3, &bound);
        assert_eq!(plan.levels[0].cols, vec![0, 1]);
        assert_eq!(plan.levels[0].sources[0], KeySource::CurrentNode);
        // With nothing pre-bound the location-only key degenerates to a scan.
        let all = compile_body_plan(pv3, &BTreeSet::new());
        assert!(!all.levels[0].probes());
        // The stored output of a group is located by (location, D).
        assert_eq!(group_output_cols(pv3), vec![0, 1]);
    }

    #[test]
    fn program_plans_collect_demands() {
        let plans = ProgramPlans::compile(&programs::path_vector());
        let path = RelId::intern("path");
        let demands = plans.demands.get(&path).expect("path must be indexed");
        assert!(demands.contains(&vec![0, 1])); // pv3 group re-enumeration
        assert!(demands.contains(&vec![0, 1, 3])); // pv4 probe from bestPathCost
        let best = RelId::intern("bestPathCost");
        assert!(plans.demands.contains_key(&best));
        // Aggregate rules appear in `aggregates`, not `triggers`.
        let (pv3_idx, _) = programs::path_vector()
            .rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.label == "pv3")
            .map(|(i, r)| (i, r.clone()))
            .unwrap();
        assert!(plans.aggregates.contains_key(&pv3_idx));
    }

    #[test]
    fn disabled_plans_are_scan_only_in_body_order() {
        let p = programs::path_vector();
        let plans = ProgramPlans::disabled(&p);
        assert!(plans.demands.is_empty());
        for plan in plans.triggers.values() {
            assert!(plan.in_body_order);
            assert!(plan.levels.iter().all(|l| !l.probes()));
        }
        for agg in plans.aggregates.values() {
            assert!(agg.group.in_body_order && agg.output_cols.is_empty());
        }
    }

    #[test]
    fn event_predicate_atoms_mark_the_plan_dead() {
        // f1 ePacket(@Next,...) :- ePacket(@N,...), bestHop(@N,Dst,Next), ...
        let p = programs::packet_forward();
        let (_, f1) = rule(&p, "f1");
        // Triggered by bestHop, the remaining atom is the transient ePacket:
        // nothing is ever materialized to join against.
        let plan = compile_trigger_plan(f1, 1);
        assert!(plan.dead);
    }

    #[test]
    fn greedy_order_prefers_most_bound_atoms() {
        // r out(@S,A,B) :- t1(@S,A), t2(@S,A,B), t3(@S,B,C).
        // Triggered by t1 (binds S, A): t2 has one bound arg (A), t3 none ->
        // t2 first; after t2 binds B, t3 has one bound arg.
        let text = r#"
            materialize(t1, 2, keys(0,1)).
            materialize(t2, 3, keys(0,1,2)).
            materialize(t3, 3, keys(0,1,2)).
            r1 out(@S,A,B) :- t1(@S,A), t3(@S,B,C), t2(@S,A,B).
        "#;
        let p = crate::parse_program("greedy", text).unwrap();
        let plan = compile_trigger_plan(&p.rules[0], 0);
        // t2 (body idx 2) is more bound than t3 (body idx 1): plan reorders.
        assert_eq!(plan.levels[0].body_idx, 2);
        assert_eq!(plan.levels[0].cols, vec![0, 1]);
        assert_eq!(plan.levels[1].body_idx, 1);
        assert_eq!(plan.levels[1].cols, vec![0, 1]);
        assert!(!plan.in_body_order);
    }
}
