//! Span-carrying diagnostics shared by the validator, the static-analysis
//! passes of [`mod@crate::analyze`] and the `ndlog-lint` driver.
//!
//! A [`Diagnostic`] records a lint code (see the crate-level *Diagnostics
//! catalog*), a [`Severity`], the offending rule label and an optional byte
//! [`Span`] into the program source.  When the program was produced by
//! [`crate::parser::parse_program_spanned`], the accompanying [`SourceMap`]
//! turns spans into `program:line:col` locations with a caret snippet, in the
//! style of rustc:
//!
//! ```text
//! error[E001]: rule r1: atom bar(...) has arity 3 but table bar declares arity 2
//!   --> bad.ndl:2:18
//!    |
//!  2 | r1 out(@X,Y) :- bar(@X,Y,Z).
//!    |                 ^^^^^^^^^^^
//! ```
//!
//! Programs built directly from the AST (no source text) still get fully
//! descriptive diagnostics — only the location trailer is omitted.

use exspan_types::Symbol;
use std::fmt;

/// A half-open byte range `[start, end)` into a program's source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `offset`.
    pub fn point(offset: usize) -> Span {
        Span::new(offset, offset)
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// How serious a diagnostic is.
///
/// The ordering is by increasing severity (`Note < Warning < Error`), so the
/// maximum severity of a collection is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational output (e.g. index-demand reports).  Never fails a
    /// build, even under `--deny-warnings`.
    Note,
    /// Suspicious but executable (e.g. a rule that can never fire).  Fails
    /// `ndlog-lint --deny-warnings` but not [`crate::analyze::analyze`]-gated
    /// builds.
    Warning,
    /// The program cannot execute faithfully; deployment builds fail.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// One finding of the validator or an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`E…`/`W…`/`N…`), listed in the crate-level
    /// *Diagnostics catalog*.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Label of the offending rule, if the finding is rule-scoped.
    pub rule: Option<Symbol>,
    /// Source span, when the program came from
    /// [`crate::parser::parse_program_spanned`].
    pub span: Option<Span>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic without a span (attachable later via
    /// [`Diagnostic::with_span`]).
    pub fn new(
        code: &'static str,
        severity: Severity,
        rule: Option<Symbol>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            rule,
            span: None,
            message: message.into(),
        }
    }

    /// Attaches a source span (builder style).  `None` leaves the diagnostic
    /// unchanged, so call sites can pass through an optional lookup.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        if span.is_some() {
            self.span = span;
        }
        self
    }

    /// Renders the one-line header, e.g. `error[E001]: rule sp2: …`.
    fn header(&self) -> String {
        match self.rule {
            Some(r) => format!(
                "{}[{}]: rule {}: {}",
                self.severity, self.code, r, self.message
            ),
            None => format!("{}[{}]: {}", self.severity, self.code, self.message),
        }
    }

    /// Renders the diagnostic against an optional source map: the header
    /// plus, when a span and source are available, a `file:line:col` trailer
    /// and a caret snippet.
    pub fn render(&self, source: Option<&SourceMap>) -> String {
        let mut out = self.header();
        if let (Some(span), Some(map)) = (self.span, source) {
            let (line, col) = map.line_col(span.start);
            out.push_str(&format!("\n  --> {}:{line}:{col}", map.file));
            if let Some(snippet) = map.snippet(span) {
                out.push('\n');
                out.push_str(&snippet);
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.header())
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics with stable rendering order:
/// severity (errors first), then span start, then code, then message —
/// independent of the order the passes ran in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Adds every diagnostic of `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates in stable order (call [`Diagnostics::sort`] first if items
    /// were pushed out of order; `analyze` returns pre-sorted collections).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether any diagnostic is a [`Severity::Warning`] or worse.
    pub fn has_warnings(&self) -> bool {
        self.items.iter().any(|d| d.severity >= Severity::Warning)
    }

    /// All diagnostics of exactly `severity`.
    pub fn of_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(move |d| d.severity == severity)
    }

    /// Sorts into the stable rendering order: errors before warnings before
    /// notes; within a severity by span start (spanless last), then code,
    /// then rule, then message.
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| {
                    let ka = a.span.map_or(usize::MAX, |s| s.start);
                    let kb = b.span.map_or(usize::MAX, |s| s.start);
                    ka.cmp(&kb)
                })
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| {
                    let ra = a.rule.map_or("", exspan_types::Symbol::as_str);
                    let rb = b.rule.map_or("", exspan_types::Symbol::as_str);
                    ra.cmp(rb)
                })
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Renders every diagnostic (one blank line between entries) against an
    /// optional source map.
    pub fn render(&self, source: Option<&SourceMap>) -> String {
        self.items
            .iter()
            .map(|d| d.render(source))
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Consumes the collection, yielding the diagnostics in current order.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

/// Source spans recorded by the parser for one rule, index-aligned with the
/// [`crate::ast::Rule`] it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, label through final `.`.
    pub full: Span,
    /// The rule label.
    pub label: Span,
    /// The head (relation name through closing `)`).
    pub head: Span,
    /// One span per head argument (the location specifier excluded).
    pub head_args: Vec<Span>,
    /// One span per body item, in body order.  [`crate::ast::Program::normalize`]
    /// may append body items beyond this list; lookups past the end fall back
    /// to the head span (the appended assignments originate there).
    pub body: Vec<Span>,
}

/// Maps a parsed [`crate::ast::Program`] back to its source text.
///
/// `rules` and `tables` are index-aligned with `Program::rules` /
/// `Program::tables` as returned by the parser, so diagnostics can be keyed
/// by rule *index* (robust to duplicate labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMap {
    /// Display name used in rendered locations (the program name).
    pub file: String,
    /// The full source text.
    pub source: String,
    /// Per-rule spans, in parse order.
    pub rules: Vec<RuleSpans>,
    /// Per-table-declaration spans, in parse order.
    pub tables: Vec<Span>,
}

impl SourceMap {
    /// 1-based `(line, col)` of a byte offset.  Columns count bytes (NDlog
    /// sources are ASCII in practice).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        line_col_of(&self.source, offset)
    }

    /// Renders the source line containing `span.start` with a caret marker
    /// under the spanned bytes (clamped to that line), gutter included.
    pub fn snippet(&self, span: Span) -> Option<String> {
        let start = span.start.min(self.source.len());
        let line_start = self.source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = self.source[line_start..]
            .find('\n')
            .map_or(self.source.len(), |i| line_start + i);
        let line_text = &self.source[line_start..line_end];
        let (line_no, _) = self.line_col(start);
        let col = start - line_start;
        let width = (span.end.min(line_end)).saturating_sub(start).max(1);
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        Some(format!(
            "{pad} |\n{gutter} | {line_text}\n{pad} | {}{}",
            " ".repeat(col),
            "^".repeat(width),
        ))
    }

    /// The spans of rule `idx`, if recorded.
    pub fn rule(&self, idx: usize) -> Option<&RuleSpans> {
        self.rules.get(idx)
    }

    /// Span of body item `item` of rule `idx`, falling back to the rule head
    /// (normalization appends head-expression assignments) and then to
    /// nothing.
    pub fn body_item(&self, idx: usize, item: usize) -> Option<Span> {
        let r = self.rules.get(idx)?;
        Some(r.body.get(item).copied().unwrap_or(r.head))
    }

    /// Span of head argument `arg` of rule `idx`, falling back to the head.
    pub fn head_arg(&self, idx: usize, arg: usize) -> Option<Span> {
        let r = self.rules.get(idx)?;
        Some(r.head_args.get(arg).copied().unwrap_or(r.head))
    }
}

/// 1-based `(line, col)` of a byte offset in `source` (col counts bytes).
pub fn line_col_of(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = offset - before.rfind('\n').map_or(0, |i| i + 1) + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(src: &str) -> SourceMap {
        SourceMap {
            file: "test".into(),
            source: src.into(),
            rules: Vec::new(),
            tables: Vec::new(),
        }
    }

    #[test]
    fn line_col_counts_from_one() {
        let src = "abc\ndef\n";
        assert_eq!(line_col_of(src, 0), (1, 1));
        assert_eq!(line_col_of(src, 2), (1, 3));
        assert_eq!(line_col_of(src, 4), (2, 1));
        assert_eq!(line_col_of(src, 6), (2, 3));
        // Past-the-end offsets clamp.
        assert_eq!(line_col_of(src, 99), (3, 1));
    }

    #[test]
    fn snippet_renders_caret_under_span() {
        let m = map("r1 out(@X) :- a(@X).\nr2 bad(@Y) :- b(@Y).\n");
        let span = Span::new(24, 27); // "bad" on line 2
        let s = m.snippet(span).unwrap();
        assert!(s.contains("2 | r2 bad(@Y) :- b(@Y)."), "snippet: {s}");
        assert!(s.contains("   ^^^"), "snippet: {s}");
    }

    #[test]
    fn diagnostics_sort_is_stable_and_severity_first() {
        let mut d = Diagnostics::new();
        d.push(
            Diagnostic::new("W101", Severity::Warning, None, "later")
                .with_span(Some(Span::new(5, 6))),
        );
        d.push(
            Diagnostic::new("E001", Severity::Error, None, "early")
                .with_span(Some(Span::new(50, 51))),
        );
        d.push(Diagnostic::new("N201", Severity::Note, None, "note"));
        d.sort();
        let codes: Vec<_> = d.iter().map(|x| x.code).collect();
        assert_eq!(codes, vec!["E001", "W101", "N201"]);
        assert!(d.has_errors());
        assert!(d.has_warnings());
    }

    #[test]
    fn render_includes_location_when_mapped() {
        let m = map("r1 out(@X,Z) :- a(@X,Y).\n");
        let d = Diagnostic::new(
            "E003",
            Severity::Error,
            Some(Symbol::intern("r1")),
            "head variable Z is not bound by the body",
        )
        .with_span(Some(Span::new(10, 11)));
        let rendered = d.render(Some(&m));
        assert!(rendered.contains("error[E003]: rule r1:"), "{rendered}");
        assert!(rendered.contains("--> test:1:11"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
        // Without a map, only the header renders.
        assert_eq!(d.render(None), d.to_string());
    }

    #[test]
    fn span_merge_and_point() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(Span::point(4), Span::new(4, 4));
        // Inverted construction clamps rather than panics.
        assert_eq!(Span::new(9, 2), Span::new(9, 9));
    }
}
