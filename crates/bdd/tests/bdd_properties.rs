//! Property-based tests: the BDD library must be a correct boolean algebra
//! and its canonical handles must coincide with semantic equality.

use exspan_bdd::{Bdd, BddManager, VarId};
use proptest::prelude::*;

/// A small boolean-expression AST we build random instances of, then check
/// that the BDD evaluation matches direct evaluation under every assignment
/// of the (small) variable set.
#[derive(Debug, Clone)]
enum Expr {
    Var(VarId),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

fn arb_expr(num_vars: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..num_vars).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_direct(e: &Expr, assignment: u32) -> bool {
    match e {
        Expr::Var(v) => assignment & (1 << v) != 0,
        Expr::Const(c) => *c,
        Expr::Not(a) => !eval_direct(a, assignment),
        Expr::And(a, b) => eval_direct(a, assignment) && eval_direct(b, assignment),
        Expr::Or(a, b) => eval_direct(a, assignment) || eval_direct(b, assignment),
    }
}

fn build_bdd(m: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Const(c) => m.constant(*c),
        Expr::Not(a) => {
            let x = build_bdd(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.or(x, y)
        }
    }
}

const NUM_VARS: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The BDD of an expression evaluates identically to the expression under
    /// every assignment of the variables.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr(NUM_VARS)) {
        let mut m = BddManager::new();
        let b = build_bdd(&mut m, &e);
        for assignment in 0u32..(1 << NUM_VARS) {
            let expected = eval_direct(&e, assignment);
            let got = m.evaluate(b, |v| assignment & (1 << v) != 0);
            prop_assert_eq!(expected, got, "assignment {:b}", assignment);
        }
    }

    /// Semantically equivalent constructions produce identical handles
    /// (canonicity), exercised via De Morgan's laws.
    #[test]
    fn de_morgan_canonicity(e1 in arb_expr(NUM_VARS), e2 in arb_expr(NUM_VARS)) {
        let mut m = BddManager::new();
        let a = build_bdd(&mut m, &e1);
        let b = build_bdd(&mut m, &e2);
        let lhs = { let ab = m.and(a, b); m.not(ab) };
        let rhs = { let na = m.not(a); let nb = m.not(b); m.or(na, nb) };
        prop_assert_eq!(lhs, rhs);
    }

    /// Absorption law holds for arbitrary operands: a + a·b == a and
    /// a · (a + b) == a.
    #[test]
    fn absorption_law(e1 in arb_expr(NUM_VARS), e2 in arb_expr(NUM_VARS)) {
        let mut m = BddManager::new();
        let a = build_bdd(&mut m, &e1);
        let b = build_bdd(&mut m, &e2);
        let ab = m.and(a, b);
        prop_assert_eq!(m.or(a, ab), a);
        let a_or_b = m.or(a, b);
        prop_assert_eq!(m.and(a, a_or_b), a);
    }

    /// sat_count agrees with a brute-force truth-table count.
    #[test]
    fn sat_count_matches_bruteforce(e in arb_expr(NUM_VARS)) {
        let mut m = BddManager::new();
        let b = build_bdd(&mut m, &e);
        let brute = (0u32..(1 << NUM_VARS))
            .filter(|&a| eval_direct(&e, a))
            .count() as u64;
        prop_assert_eq!(m.sat_count(b, NUM_VARS), brute);
    }

    /// Restricting a variable and evaluating equals evaluating with that
    /// variable fixed.
    #[test]
    fn restrict_consistent_with_evaluate(e in arb_expr(NUM_VARS), var in 0..NUM_VARS, val: bool) {
        let mut m = BddManager::new();
        let b = build_bdd(&mut m, &e);
        let restricted = m.restrict(b, var, val);
        for assignment in 0u32..(1 << NUM_VARS) {
            let forced = if val { assignment | (1 << var) } else { assignment & !(1 << var) };
            let lhs = m.evaluate(restricted, |v| assignment & (1 << v) != 0 && v != var || (v == var && val));
            let rhs = m.evaluate(b, |v| forced & (1 << v) != 0);
            prop_assert_eq!(lhs, rhs);
        }
    }

    /// The support of a BDD never contains variables the expression does not
    /// mention, and evaluation only depends on support variables.
    #[test]
    fn support_is_sound(e in arb_expr(NUM_VARS)) {
        let mut m = BddManager::new();
        let b = build_bdd(&mut m, &e);
        let support = m.support(b);
        for &v in &support {
            prop_assert!(v < NUM_VARS);
        }
        // Flipping a non-support variable never changes the value.
        for assignment in 0u32..(1 << NUM_VARS) {
            for v in 0..NUM_VARS {
                if support.contains(&v) { continue; }
                let flipped = assignment ^ (1 << v);
                let a1 = m.evaluate(b, |x| assignment & (1 << x) != 0);
                let a2 = m.evaluate(b, |x| flipped & (1 << x) != 0);
                prop_assert_eq!(a1, a2);
            }
        }
    }
}
