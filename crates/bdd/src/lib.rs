//! # exspan-bdd
//!
//! A small reduced ordered binary decision diagram (ROBDD) library.
//!
//! ExSPAN's *condensed provenance* optimization (paper §6.3) encodes the
//! algebraic (semiring) representation of a tuple's provenance as a boolean
//! expression over base-tuple variables and stores it as a BDD.  Because
//! ROBDDs are canonical, boolean absorption (`a·(a+b) = a`) happens
//! automatically, which both shrinks the representation and is precisely the
//! "absorption provenance" of Liu et al. used for derivability tests and
//! trust decisions.
//!
//! The implementation is a classic hash-consed apply-based ROBDD:
//!
//! * [`BddManager`] owns the node table, the unique table (hash-consing) and
//!   the apply cache.
//! * [`Bdd`] is a lightweight handle (node index) into a manager.
//! * Boolean connectives are provided via [`BddManager::and`],
//!   [`BddManager::or`], [`BddManager::not`] plus variable creation and
//!   evaluation/restriction helpers.
//! * [`BddManager::serialized_size`] estimates the number of bytes required
//!   to ship a BDD over the network, which is what the evaluation's
//!   bandwidth accounting uses for value-based (BDD) provenance and for the
//!   BDD query representation (Figures 6, 7, 15).

mod manager;

pub use manager::{Bdd, BddManager, VarId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let a_or_ab = m.or(a, ab);
        // Absorption: a + a*b == a.
        assert_eq!(a_or_ab, a);
    }
}
