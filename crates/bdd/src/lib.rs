//! # exspan-bdd
//!
//! A small reduced ordered binary decision diagram (ROBDD) library.
//!
//! ExSPAN's *condensed provenance* optimization (paper §6.3) encodes the
//! algebraic (semiring) representation of a tuple's provenance as a boolean
//! expression over base-tuple variables and stores it as a BDD.  Because
//! ROBDDs are canonical, boolean absorption (`a·(a+b) = a`) happens
//! automatically, which both shrinks the representation and is precisely the
//! "absorption provenance" of Liu et al. used for derivability tests and
//! trust decisions.
//!
//! The implementation is a classic hash-consed apply-based ROBDD over a
//! *shared* node store:
//!
//! * [`SharedBddStore`] owns the interned node table (hash-consing) and a
//!   bounded, epoch-cleared apply memo.  One process-global store backs every
//!   `BddManager::new()`, so structurally identical provenance BDDs built by
//!   different sessions or policies are stored once and share memo hits.
//! * [`BddManager`] is a cloneable handle onto a store; use
//!   [`BddManager::with_store`] with a fresh store for isolation.
//! * [`Bdd`] is a lightweight handle whose `u64` id is *content-keyed* — a
//!   Merkle-style hash of `(var, low, high)` — so handle values are
//!   deterministic regardless of construction order or interleaving.
//! * Boolean connectives are provided via [`BddManager::and`],
//!   [`BddManager::or`], [`BddManager::not`] plus variable creation and
//!   evaluation/restriction helpers.
//! * [`BddManager::serialized_size`] estimates the number of bytes required
//!   to ship a BDD over the network, which is what the evaluation's
//!   bandwidth accounting uses for value-based (BDD) provenance and for the
//!   BDD query representation (Figures 6, 7, 15).
//!   [`BddManager::compressed_serialized_size`] is the varint-encoded
//!   counterpart used by the opt-in compressed accounting mode (Figure 18).

mod manager;

pub use manager::{Bdd, BddManager, MemoStats, SharedBddStore, VarId, MEMO_CAPACITY};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let a_or_ab = m.or(a, ab);
        // Absorption: a + a*b == a.
        assert_eq!(a_or_ab, a);
    }
}
