//! Hash-consed reduced ordered BDDs over a shared node store.
//!
//! Since the provenance-compression PR, nodes no longer live inside each
//! [`BddManager`]: every manager is a lightweight handle onto a
//! [`SharedBddStore`] — by default one process-global store — so structurally
//! identical condition BDDs built by different sessions, policies or nodes
//! cost a single allocation and share one bounded apply memo.
//!
//! # Determinism
//!
//! Node identifiers are **content-keyed**: an internal node's id is a 63-bit
//! Merkle-style hash of `(var, low.id, high.id)` (terminals are fixed at 0
//! and 1).  A node therefore has the same id no matter which handle interned
//! it first or how concurrent sessions interleave — handle values, and the
//! annotation tokens derived from them, are reproducible across runs and
//! shard counts.  Hash-consing canonicity is preserved: equal handles still
//! mean semantically equal boolean functions.  An id collision between two
//! distinct nodes is detected at interning time and panics; over a 63-bit
//! space this is astronomically unlikely at any workload size this
//! workspace reaches.
//!
//! # Memory
//!
//! The store's apply/negation memos are bounded at [`MEMO_CAPACITY`] entries
//! and epoch-cleared when full (the classic computed-table policy), so a
//! long-lived deployment no longer grows its memo without bound.  Interned
//! nodes are permanent — repeating a workload allocates nothing new, which
//! is what keeps long churn runs at steady-state memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Identifier of a boolean variable.  In ExSPAN each variable stands for one
/// base tuple (or, at node granularity, one node / trust domain).
pub type VarId = u32;

/// Bound on the shared store's apply + negation memo sizes.  When either
/// memo reaches this many entries both are cleared and the epoch counter in
/// [`MemoStats::clears`] increments.
pub const MEMO_CAPACITY: usize = 1 << 16;

/// High bit tagging internal-node ids, so they never collide with the
/// terminal ids 0 and 1.
const NODE_ID_TAG: u64 = 1 << 63;

/// A handle to a BDD node in a [`SharedBddStore`].
///
/// Handles are meaningful relative to the store that interned them — which
/// for every manager built with [`BddManager::new`] is the process-global
/// store, so such handles interchange freely across managers.  Equal handles
/// denote semantically equal boolean functions (canonicity of ROBDDs), and
/// because ids are content-keyed the *numeric* handle value is deterministic
/// too, independent of interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u64);

impl Bdd {
    /// The constant `false` function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant `true` function.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw content-keyed id, exposed for serialization and for shipping
    /// handles as opaque annotation tokens.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from a raw id previously obtained through
    /// [`Bdd::index`].  The id must refer to a node of the same store.
    pub fn from_raw(index: u64) -> Bdd {
        Bdd(index)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: VarId,
    low: Bdd,
    high: Bdd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Counters of the shared store's bounded memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Apply/negation results answered from the memo.
    pub hits: u64,
    /// Apply/negation recursions that had to compute.
    pub misses: u64,
    /// Times the memos were epoch-cleared after reaching [`MEMO_CAPACITY`].
    pub clears: u64,
    /// Current apply-memo entries (≤ [`MEMO_CAPACITY`]).
    pub entries: usize,
}

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Content-keyed node id: a Merkle-style hash of the node's shape.  The
/// chained mixing keeps `(low, high)` asymmetric; the tag bit keeps internal
/// ids disjoint from the terminals.
fn node_id(var: VarId, low: u64, high: u64) -> u64 {
    let mut h = mix(0x9E37_79B9_7F4A_7C15 ^ u64::from(var));
    h = mix(h ^ low);
    h = mix(h ^ high);
    h | NODE_ID_TAG
}

/// Number of bytes the LEB128 varint encoding of `x` takes.
fn varint_len(x: u64) -> usize {
    let mut x = x;
    let mut n = 1;
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

#[derive(Debug, Default)]
struct StoreInner {
    nodes: HashMap<u64, Node>,
    apply_memo: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_memo: HashMap<Bdd, Bdd>,
    hits: u64,
    misses: u64,
    clears: u64,
}

impl StoreInner {
    fn node(&self, b: Bdd) -> Node {
        *self
            .nodes
            .get(&b.0)
            .expect("BDD handle does not belong to this store")
    }

    fn mk_node(&mut self, var: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let id = node_id(var, low.0, high.0);
        let node = Node { var, low, high };
        if let Some(existing) = self.nodes.get(&id) {
            assert_eq!(*existing, node, "content-keyed BDD node id collision");
            return Bdd(id);
        }
        self.nodes.insert(id, node);
        Bdd(id)
    }

    fn clear_memos(&mut self) {
        self.apply_memo.clear();
        self.not_memo.clear();
        self.clears += 1;
    }

    fn not(&mut self, a: Bdd) -> Bdd {
        if a == Bdd::TRUE {
            return Bdd::FALSE;
        }
        if a == Bdd::FALSE {
            return Bdd::TRUE;
        }
        if let Some(&r) = self.not_memo.get(&a) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let n = self.node(a);
        let low = self.not(n.low);
        let high = self.not(n.high);
        let r = self.mk_node(n.var, low, high);
        if self.not_memo.len() >= MEMO_CAPACITY {
            self.clear_memos();
        }
        self.not_memo.insert(a, r);
        r
    }

    fn apply(&mut self, op: Op, a: Bdd, b: Bdd) -> Bdd {
        // Terminal short-circuits.
        match op {
            Op::And => {
                if a == Bdd::FALSE || b == Bdd::FALSE {
                    return Bdd::FALSE;
                }
                if a == Bdd::TRUE {
                    return b;
                }
                if b == Bdd::TRUE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == Bdd::TRUE || b == Bdd::TRUE {
                    return Bdd::TRUE;
                }
                if a == Bdd::FALSE {
                    return b;
                }
                if b == Bdd::FALSE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
        }
        // Normalize operand order for the (commutative) memo.  Ids are
        // content-keyed, so the normalized key is itself deterministic.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.apply_memo.get(&key) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let na = self.node(a);
        let nb = self.node(b);
        let var = na.var.min(nb.var);
        let (a_low, a_high) = if na.var == var {
            (na.low, na.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if nb.var == var {
            (nb.low, nb.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk_node(var, low, high);
        if self.apply_memo.len() >= MEMO_CAPACITY {
            self.clear_memos();
        }
        self.apply_memo.insert(key, r);
        r
    }

    fn restrict(&mut self, b: Bdd, v: VarId, value: bool) -> Bdd {
        if b.is_terminal() {
            return b;
        }
        let n = self.node(b);
        if n.var > v {
            // Ordered: variable v does not occur below.
            return b;
        }
        if n.var == v {
            return if value { n.high } else { n.low };
        }
        let low = self.restrict(n.low, v, value);
        let high = self.restrict(n.high, v, value);
        self.mk_node(n.var, low, high)
    }

    fn reachable_internal_count(&self, b: Bdd) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut count = 0usize;
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if cur.is_terminal() || !visited.insert(cur) {
                continue;
            }
            count += 1;
            let n = self.node(cur);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Varint-serialized size: nodes are numbered 0..n in a deterministic
    /// structural postorder (low child first), references are varints (0/1
    /// for terminals, local index + 2 otherwise), each node costs
    /// `varint(var) + varint(low ref) + varint(high ref)`, and the root
    /// reference closes the encoding.
    fn compressed_size_walk(&self, b: Bdd, local: &mut HashMap<u64, u64>, size: &mut usize) {
        if b.is_terminal() || local.contains_key(&b.0) {
            return;
        }
        let n = self.node(b);
        self.compressed_size_walk(n.low, local, size);
        self.compressed_size_walk(n.high, local, size);
        let child_ref = |x: Bdd, local: &HashMap<u64, u64>| {
            if x.is_terminal() {
                x.0
            } else {
                local[&x.0] + 2
            }
        };
        *size += varint_len(u64::from(n.var))
            + varint_len(child_ref(n.low, local))
            + varint_len(child_ref(n.high, local));
        local.insert(b.0, local.len() as u64);
    }

    fn compressed_serialized_size(&self, b: Bdd) -> usize {
        if b.is_terminal() {
            return varint_len(b.0);
        }
        let mut local = HashMap::new();
        let mut size = 0usize;
        self.compressed_size_walk(b, &mut local, &mut size);
        size + varint_len(local[&b.0] + 2)
    }
}

/// One interned node table plus bounded apply memo, shared by any number of
/// [`BddManager`] handles.  [`SharedBddStore::global`] is the process-wide
/// instance every `BddManager::new()` attaches to; [`SharedBddStore::new`]
/// creates an isolated store (tests and benchmarks that measure allocation
/// behavior want one not shared with concurrently running code).
#[derive(Debug, Clone, Default)]
pub struct SharedBddStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl SharedBddStore {
    /// Creates a fresh, isolated store containing only the two terminals.
    pub fn new() -> SharedBddStore {
        SharedBddStore::default()
    }

    /// The process-global store.
    pub fn global() -> SharedBddStore {
        static GLOBAL: OnceLock<SharedBddStore> = OnceLock::new();
        GLOBAL.get_or_init(SharedBddStore::new).clone()
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("shared BDD store poisoned")
    }

    /// Number of interned nodes, including the two terminals.
    pub fn node_count(&self) -> usize {
        self.lock().nodes.len() + 2
    }

    /// Memo counters (hits, misses, epoch clears, current entries).
    pub fn memo_stats(&self) -> MemoStats {
        let inner = self.lock();
        MemoStats {
            hits: inner.hits,
            misses: inner.misses,
            clears: inner.clears,
            entries: inner.apply_memo.len(),
        }
    }
}

/// A handle onto a [`SharedBddStore`] providing boolean operations.
///
/// ```
/// use exspan_bdd::BddManager;
/// let mut m = BddManager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let ab = m.and(a, b);
/// let f = m.or(a, ab);
/// assert_eq!(f, a); // absorption
/// assert!(m.implies(f, a));
/// ```
///
/// # Migration from the owning manager
///
/// `BddManager` used to own its node table; it is now a handle, and
/// `BddManager::new()` attaches to the process-global [`SharedBddStore`].
/// Consequences for callers of the old API:
///
/// * [`Bdd::index`] / [`Bdd::from_raw`] are `u64` (content-keyed ids), no
///   longer `u32` slot indices.
/// * `Clone` shares the store instead of deep-copying the node table.
/// * [`BddManager::node_count`] reports the *store's* population.  Code
///   that asserts allocation behavior should attach to an isolated store
///   via [`BddManager::with_store`].
#[derive(Debug, Clone)]
pub struct BddManager {
    store: SharedBddStore,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a handle onto the process-global shared store.
    pub fn new() -> Self {
        BddManager {
            store: SharedBddStore::global(),
        }
    }

    /// Creates a handle onto a specific (e.g. isolated) store.
    pub fn with_store(store: SharedBddStore) -> Self {
        BddManager { store }
    }

    /// The store this handle operates on.
    pub fn store(&self) -> &SharedBddStore {
        &self.store
    }

    /// Number of nodes in the underlying store, including the two terminals.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Memo counters of the underlying store.
    pub fn memo_stats(&self) -> MemoStats {
        self.store.memo_stats()
    }

    /// Returns the BDD for a single positive variable literal.
    pub fn var(&mut self, v: VarId) -> Bdd {
        self.store.lock().mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// Returns the constant BDD for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Conjunction of two BDDs.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.store.lock().apply(Op::And, a, b)
    }

    /// Disjunction of two BDDs.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.store.lock().apply(Op::Or, a, b)
    }

    /// Negation of a BDD.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        self.store.lock().not(a)
    }

    /// Conjunction of an iterator of BDDs (`true` for an empty iterator).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut inner = self.store.lock();
        let mut acc = Bdd::TRUE;
        for b in items {
            acc = inner.apply(Op::And, acc, b);
            if acc == Bdd::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of BDDs (`false` for an empty iterator).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut inner = self.store.lock();
        let mut acc = Bdd::FALSE;
        for b in items {
            acc = inner.apply(Op::Or, acc, b);
            if acc == Bdd::TRUE {
                break;
            }
        }
        acc
    }

    /// Restricts variable `v` to `value` in `b` (Shannon cofactor).
    pub fn restrict(&mut self, b: Bdd, v: VarId, value: bool) -> Bdd {
        self.store.lock().restrict(b, v, value)
    }

    /// Evaluates the function under a total assignment: `assignment(v)` gives
    /// the truth value of variable `v`.
    pub fn evaluate<F: Fn(VarId) -> bool>(&self, b: Bdd, assignment: F) -> bool {
        let inner = self.store.lock();
        let mut cur = b;
        while !cur.is_terminal() {
            let n = inner.node(cur);
            cur = if assignment(n.var) { n.high } else { n.low };
        }
        cur == Bdd::TRUE
    }

    /// Returns `true` iff the function is satisfiable (not constant false).
    ///
    /// For provenance this is the *derivability test*: the tuple is derivable
    /// from some combination of trusted base tuples iff its absorption
    /// provenance is satisfiable.
    pub fn is_satisfiable(&self, b: Bdd) -> bool {
        b != Bdd::FALSE
    }

    /// Returns `true` iff `a` logically implies `b`.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> bool {
        let mut inner = self.store.lock();
        let nb = inner.not(b);
        inner.apply(Op::And, a, nb) == Bdd::FALSE
    }

    /// The set of variables the function actually depends on.
    ///
    /// Absorption can make a function independent of variables that appear in
    /// the original polynomial — e.g. `a + a·b` does not depend on `b`.
    pub fn support(&self, b: Bdd) -> Vec<VarId> {
        let inner = self.store.lock();
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if cur.is_terminal() || !visited.insert(cur) {
                continue;
            }
            let n = inner.node(cur);
            seen.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.into_iter().collect()
    }

    /// Number of nodes reachable from `b` (including terminals).
    pub fn reachable_node_count(&self, b: Bdd) -> usize {
        let inner = self.store.lock();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if !visited.insert(cur) {
                continue;
            }
            if cur.is_terminal() {
                continue;
            }
            let n = inner.node(cur);
            stack.push(n.low);
            stack.push(n.high);
        }
        visited.len()
    }

    /// Number of non-terminal nodes reachable from `b`.
    pub fn reachable_internal_count(&self, b: Bdd) -> usize {
        self.store.lock().reachable_internal_count(b)
    }

    /// Estimated number of bytes needed to ship this BDD over the network:
    /// each non-terminal node serializes its variable id and two child
    /// references (4 + 4 + 4 bytes), plus a 4-byte root reference.  This is
    /// the flat model every existing figure is built on; it depends only on
    /// the reachable structure, never on node ids.
    pub fn serialized_size(&self, b: Bdd) -> usize {
        4 + self.store.lock().reachable_internal_count(b) * 12
    }

    /// Number of bytes this BDD costs under the compressed wire model:
    /// nodes numbered in deterministic structural postorder, variable ids
    /// and child references encoded as varints.  Like
    /// [`BddManager::serialized_size`] it is a pure function of the
    /// reachable structure, so compressed byte counts are identical at any
    /// shard count.
    pub fn compressed_serialized_size(&self, b: Bdd) -> usize {
        self.store.lock().compressed_serialized_size(b)
    }

    /// Counts satisfying assignments over the given number of variables.
    pub fn sat_count(&self, b: Bdd, num_vars: u32) -> u64 {
        fn go(
            inner: &StoreInner,
            b: Bdd,
            num_vars: u32,
            memo: &mut HashMap<Bdd, u64>,
        ) -> (u64, u32) {
            // Returns (count below this node assuming node's var is the next
            // unassigned one, var index of this node or num_vars for terminals).
            if b == Bdd::FALSE {
                return (0, num_vars);
            }
            if b == Bdd::TRUE {
                return (1, num_vars);
            }
            let n = inner.node(b);
            if let Some(&c) = memo.get(&b) {
                return (c, n.var);
            }
            let (cl, vl) = go(inner, n.low, num_vars, memo);
            let (ch, vh) = go(inner, n.high, num_vars, memo);
            let low = cl << (vl - n.var - 1);
            let high = ch << (vh - n.var - 1);
            let total = low + high;
            memo.insert(b, total);
            (total, n.var)
        }
        let inner = self.store.lock();
        let mut memo = HashMap::new();
        let (c, v) = go(&inner, b, num_vars, &mut memo);
        c << v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A manager over an isolated store, for tests that assert allocation
    /// or memo behavior (the global store is shared with parallel tests).
    fn isolated() -> BddManager {
        BddManager::with_store(SharedBddStore::new())
    }

    #[test]
    fn constants_and_terminals() {
        let m = isolated();
        assert!(Bdd::TRUE.is_terminal());
        assert!(Bdd::FALSE.is_terminal());
        assert_eq!(m.constant(true), Bdd::TRUE);
        assert_eq!(m.constant(false), Bdd::FALSE);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn identities() {
        let mut m = BddManager::new();
        let a = m.var(0);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        assert_eq!(m.or(a, Bdd::TRUE), Bdd::TRUE);
        assert_eq!(m.and(a, a), a);
        assert_eq!(m.or(a, a), a);
    }

    #[test]
    fn negation_involution_and_excluded_middle() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = {
            let ab = m.and(a, b);
            let nb = m.not(b);
            m.or(ab, nb)
        };
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
        assert_eq!(m.or(f, nf), Bdd::TRUE);
        assert_eq!(m.and(f, nf), Bdd::FALSE);
    }

    #[test]
    fn absorption_paper_example() {
        // The paper's example: a · (a + b) = a, and a + a·b = a.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let a_plus_b = m.or(a, b);
        assert_eq!(m.and(a, a_plus_b), a);
        let ab = m.and(a, b);
        assert_eq!(m.or(a, ab), a);
        // Support shows b is no longer relevant.
        let f = m.or(a, ab);
        assert_eq!(m.support(f), vec![0]);
    }

    #[test]
    fn canonical_handles_mean_semantic_equality() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // (a+b)·c == a·c + b·c  (distributivity).
        let left = {
            let ab = m.or(a, b);
            m.and(ab, c)
        };
        let right = {
            let ac = m.and(a, c);
            let bc = m.and(b, c);
            m.or(ac, bc)
        };
        assert_eq!(left, right);
    }

    #[test]
    fn handles_are_deterministic_across_stores_and_build_order() {
        // Content-keyed ids: the same function gets the same handle no
        // matter which store builds it or in what operation order.
        let mut m1 = isolated();
        let mut m2 = isolated();
        let f1 = {
            let a = m1.var(0);
            let b = m1.var(1);
            m1.and(a, b)
        };
        let f2 = {
            let b = m2.var(1);
            let a = m2.var(0);
            m2.and(b, a)
        };
        assert_eq!(f1.index(), f2.index());
        assert!(!f1.is_terminal());
    }

    #[test]
    fn restrict_and_evaluate() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::FALSE);
        assert_eq!(m.restrict(f, 5, true), f); // untouched variable
        assert!(m.evaluate(f, |_| true));
        assert!(!m.evaluate(f, |v| v == 0));
    }

    #[test]
    fn implication_and_satisfiability() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(m.implies(ab, a));
        assert!(!m.implies(a, ab));
        assert!(m.is_satisfiable(ab));
        let na = m.not(a);
        let contradiction = m.and(a, na);
        assert!(!m.is_satisfiable(contradiction));
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let or = m.or(a, b);
        let and = m.and(a, b);
        assert_eq!(m.sat_count(or, 2), 3);
        assert_eq!(m.sat_count(and, 2), 1);
        assert_eq!(m.sat_count(Bdd::TRUE, 2), 4);
        assert_eq!(m.sat_count(Bdd::FALSE, 2), 0);
        assert_eq!(m.sat_count(a, 3), 4);
    }

    #[test]
    fn serialized_size_grows_with_structure() {
        let mut m = BddManager::new();
        let a = m.var(0);
        assert_eq!(m.serialized_size(Bdd::TRUE), 4);
        let single = m.serialized_size(a);
        let b = m.var(1);
        let c = m.var(2);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        assert!(m.serialized_size(f) > single);
    }

    #[test]
    fn compressed_size_beats_flat_size_on_real_structure() {
        let mut m = BddManager::new();
        // Terminals: one varint byte vs the flat 4-byte root reference.
        assert_eq!(m.compressed_serialized_size(Bdd::TRUE), 1);
        assert_eq!(m.compressed_serialized_size(Bdd::FALSE), 1);
        // A chain conjunction over small variable ids: ~3 varint bytes per
        // node against the flat model's 12.
        let vars: Vec<Bdd> = (0..10).map(|i| m.var(i)).collect();
        let f = m.and_all(vars.iter().copied());
        let flat = m.serialized_size(f);
        let compressed = m.compressed_serialized_size(f);
        assert!(
            compressed * 2 < flat,
            "compressed {compressed} vs flat {flat}"
        );
        // Pure function of structure: recomputing gives the same answer.
        assert_eq!(m.compressed_serialized_size(f), compressed);
    }

    #[test]
    fn and_or_all_fold() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let all = m.and_all(vars.iter().copied());
        assert!(m.evaluate(all, |_| true));
        assert!(!m.evaluate(all, |v| v != 2));
        let any = m.or_all(vars.iter().copied());
        assert!(m.evaluate(any, |v| v == 3));
        assert!(!m.evaluate(any, |_| false));
        assert_eq!(m.and_all(std::iter::empty()), Bdd::TRUE);
        assert_eq!(m.or_all(std::iter::empty()), Bdd::FALSE);
    }

    #[test]
    fn support_of_constant_is_empty() {
        let m = BddManager::new();
        assert!(m.support(Bdd::TRUE).is_empty());
        assert!(m.support(Bdd::FALSE).is_empty());
    }

    #[test]
    fn managers_share_the_store() {
        let store = SharedBddStore::new();
        let mut m1 = BddManager::with_store(store.clone());
        let mut m2 = BddManager::with_store(store.clone());
        let before = store.node_count();
        let a1 = m1.var(7);
        let after_first = store.node_count();
        let a2 = m2.var(7);
        // The second manager's identical literal allocates nothing.
        assert_eq!(a1, a2);
        assert_eq!(store.node_count(), after_first);
        assert_eq!(after_first, before + 1);
        // Handles interchange between managers on the same store.
        let b = m1.var(8);
        let ab = m2.and(a1, b);
        assert!(m1.evaluate(ab, |_| true));
    }

    #[test]
    fn apply_memo_is_bounded_and_nodes_reach_steady_state() {
        let mut m = isolated();
        // One churn round: tens of thousands of distinct pairwise
        // conjunctions — far more apply keys than MEMO_CAPACITY.
        let churn = |m: &mut BddManager| {
            // Coprime moduli: the pair (i % 509, i % 512) is distinct for
            // every i below 509·512, giving ~80k distinct apply keys.
            for i in 0..40_000u32 {
                let a = m.var(i % 509);
                let b = m.var(i % 512);
                let f = m.and(a, b);
                assert_eq!(m.and(a, b), f); // immediate repeat: memo hit
                let _ = m.or(a, b);
            }
        };
        churn(&mut m);
        let after_first = m.node_count();
        let stats_first = m.memo_stats();
        assert!(
            stats_first.entries <= MEMO_CAPACITY,
            "memo grew past its bound: {}",
            stats_first.entries
        );
        // Long churn: repeat the identical workload.  Interning means no new
        // nodes; the bounded memo means no unbounded table either — the
        // regression the old per-manager apply cache had.
        for _ in 0..3 {
            churn(&mut m);
        }
        let stats = m.memo_stats();
        assert_eq!(m.node_count(), after_first, "repeat workload allocated");
        assert!(stats.entries <= MEMO_CAPACITY);
        assert!(stats.clears >= 1, "expected at least one epoch clear");
        assert!(stats.hits > 0);
    }
}
