//! Hash-consed reduced ordered BDDs.

use std::collections::HashMap;

/// Identifier of a boolean variable.  In ExSPAN each variable stands for one
/// base tuple (or, at node granularity, one node / trust domain).
pub type VarId = u32;

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are only meaningful relative to the manager that created them.
/// Equal handles denote semantically equal boolean functions because the
/// manager hash-conses nodes (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant `false` function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant `true` function.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, exposed for serialization.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from a raw index previously obtained through
    /// [`Bdd::index`].  The index must refer to a node of the same manager;
    /// it is used to ship annotation handles through layers that cannot name
    /// the `Bdd` type (e.g. the runtime's opaque annotation tokens).
    pub fn from_raw(index: u32) -> Bdd {
        Bdd(index)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: VarId,
    low: Bdd,
    high: Bdd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Owns BDD nodes and provides boolean operations over them.
///
/// ```
/// use exspan_bdd::BddManager;
/// let mut m = BddManager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let ab = m.and(a, b);
/// let f = m.or(a, ab);
/// assert_eq!(f, a); // absorption
/// assert!(m.implies(f, a));
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    apply_cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    pub fn new() -> Self {
        // Index 0 = FALSE, 1 = TRUE. Terminals get a sentinel variable id.
        let terminals = vec![
            Node {
                var: VarId::MAX,
                low: Bdd::FALSE,
                high: Bdd::FALSE,
            },
            Node {
                var: VarId::MAX,
                low: Bdd::TRUE,
                high: Bdd::TRUE,
            },
        ];
        BddManager {
            nodes: terminals,
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Number of live (allocated) nodes, including the two terminals.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the BDD for a single positive variable literal.
    pub fn var(&mut self, v: VarId) -> Bdd {
        self.mk_node(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// Returns the constant-true BDD.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    fn mk_node(&mut self, var: VarId, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return existing;
        }
        let idx = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, idx);
        idx
    }

    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// Conjunction of two BDDs.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::And, a, b)
    }

    /// Disjunction of two BDDs.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::Or, a, b)
    }

    /// Negation of a BDD.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        if a == Bdd::TRUE {
            return Bdd::FALSE;
        }
        if a == Bdd::FALSE {
            return Bdd::TRUE;
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.node(a);
        let low = self.not(n.low);
        let high = self.not(n.high);
        let r = self.mk_node(n.var, low, high);
        self.not_cache.insert(a, r);
        r
    }

    fn apply(&mut self, op: Op, a: Bdd, b: Bdd) -> Bdd {
        // Terminal short-circuits.
        match op {
            Op::And => {
                if a == Bdd::FALSE || b == Bdd::FALSE {
                    return Bdd::FALSE;
                }
                if a == Bdd::TRUE {
                    return b;
                }
                if b == Bdd::TRUE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == Bdd::TRUE || b == Bdd::TRUE {
                    return Bdd::TRUE;
                }
                if a == Bdd::FALSE {
                    return b;
                }
                if b == Bdd::FALSE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
        }
        // Normalize operand order for the (commutative) cache.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let na = self.node(a);
        let nb = self.node(b);
        let var = na.var.min(nb.var);
        let (a_low, a_high) = if na.var == var {
            (na.low, na.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if nb.var == var {
            (nb.low, nb.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk_node(var, low, high);
        self.apply_cache.insert(key, r);
        r
    }

    /// Conjunction of an iterator of BDDs (`true` for an empty iterator).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for b in items {
            acc = self.and(acc, b);
            if acc == Bdd::FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of BDDs (`false` for an empty iterator).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for b in items {
            acc = self.or(acc, b);
            if acc == Bdd::TRUE {
                break;
            }
        }
        acc
    }

    /// Restricts variable `v` to `value` in `b` (Shannon cofactor).
    pub fn restrict(&mut self, b: Bdd, v: VarId, value: bool) -> Bdd {
        if b.is_terminal() {
            return b;
        }
        let n = self.node(b);
        if n.var > v {
            // Ordered: variable v does not occur below.
            return b;
        }
        if n.var == v {
            return if value { n.high } else { n.low };
        }
        let low = self.restrict(n.low, v, value);
        let high = self.restrict(n.high, v, value);
        self.mk_node(n.var, low, high)
    }

    /// Evaluates the function under a total assignment: `assignment(v)` gives
    /// the truth value of variable `v`.
    pub fn evaluate<F: Fn(VarId) -> bool>(&self, b: Bdd, assignment: F) -> bool {
        let mut cur = b;
        while !cur.is_terminal() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.high } else { n.low };
        }
        cur == Bdd::TRUE
    }

    /// Returns `true` iff the function is satisfiable (not constant false).
    ///
    /// For provenance this is the *derivability test*: the tuple is derivable
    /// from some combination of trusted base tuples iff its absorption
    /// provenance is satisfiable.
    pub fn is_satisfiable(&self, b: Bdd) -> bool {
        b != Bdd::FALSE
    }

    /// Returns `true` iff `a` logically implies `b`.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> bool {
        let nb = self.not(b);
        self.and(a, nb) == Bdd::FALSE
    }

    /// The set of variables the function actually depends on.
    ///
    /// Absorption can make a function independent of variables that appear in
    /// the original polynomial — e.g. `a + a·b` does not depend on `b`.
    pub fn support(&self, b: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if cur.is_terminal() || !visited.insert(cur) {
                continue;
            }
            let n = self.node(cur);
            seen.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.into_iter().collect()
    }

    /// Number of nodes reachable from `b` (including terminals).
    pub fn reachable_node_count(&self, b: Bdd) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if !visited.insert(cur) {
                continue;
            }
            if cur.is_terminal() {
                continue;
            }
            let n = self.node(cur);
            stack.push(n.low);
            stack.push(n.high);
        }
        visited.len()
    }

    /// Number of non-terminal nodes reachable from `b`.
    pub fn reachable_internal_count(&self, b: Bdd) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut count = 0usize;
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            if cur.is_terminal() || !visited.insert(cur) {
                continue;
            }
            count += 1;
            let n = self.node(cur);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Estimated number of bytes needed to ship this BDD over the network:
    /// each non-terminal node serializes its variable id and two child
    /// references (4 + 4 + 4 bytes), plus a 4-byte root reference.
    pub fn serialized_size(&self, b: Bdd) -> usize {
        4 + self.reachable_internal_count(b) * 12
    }

    /// Counts satisfying assignments over the given number of variables.
    pub fn sat_count(&self, b: Bdd, num_vars: u32) -> u64 {
        fn go(m: &BddManager, b: Bdd, num_vars: u32, memo: &mut HashMap<Bdd, u64>) -> (u64, u32) {
            // Returns (count below this node assuming node's var is the next
            // unassigned one, var index of this node or num_vars for terminals).
            if b == Bdd::FALSE {
                return (0, num_vars);
            }
            if b == Bdd::TRUE {
                return (1, num_vars);
            }
            let n = m.node(b);
            if let Some(&c) = memo.get(&b) {
                return (c, n.var);
            }
            let (cl, vl) = go(m, n.low, num_vars, memo);
            let (ch, vh) = go(m, n.high, num_vars, memo);
            let low = cl << (vl - n.var - 1);
            let high = ch << (vh - n.var - 1);
            let total = low + high;
            memo.insert(b, total);
            (total, n.var)
        }
        let mut memo = HashMap::new();
        let (c, v) = go(self, b, num_vars, &mut memo);
        c << v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_terminals() {
        let m = BddManager::new();
        assert!(Bdd::TRUE.is_terminal());
        assert!(Bdd::FALSE.is_terminal());
        assert_eq!(m.constant(true), Bdd::TRUE);
        assert_eq!(m.constant(false), Bdd::FALSE);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn identities() {
        let mut m = BddManager::new();
        let a = m.var(0);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        assert_eq!(m.or(a, Bdd::TRUE), Bdd::TRUE);
        assert_eq!(m.and(a, a), a);
        assert_eq!(m.or(a, a), a);
    }

    #[test]
    fn negation_involution_and_excluded_middle() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = {
            let ab = m.and(a, b);
            let nb = m.not(b);
            m.or(ab, nb)
        };
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
        assert_eq!(m.or(f, nf), Bdd::TRUE);
        assert_eq!(m.and(f, nf), Bdd::FALSE);
    }

    #[test]
    fn absorption_paper_example() {
        // The paper's example: a · (a + b) = a, and a + a·b = a.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let a_plus_b = m.or(a, b);
        assert_eq!(m.and(a, a_plus_b), a);
        let ab = m.and(a, b);
        assert_eq!(m.or(a, ab), a);
        // Support shows b is no longer relevant.
        let f = m.or(a, ab);
        assert_eq!(m.support(f), vec![0]);
    }

    #[test]
    fn canonical_handles_mean_semantic_equality() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // (a+b)·c == a·c + b·c  (distributivity).
        let left = {
            let ab = m.or(a, b);
            m.and(ab, c)
        };
        let right = {
            let ac = m.and(a, c);
            let bc = m.and(b, c);
            m.or(ac, bc)
        };
        assert_eq!(left, right);
    }

    #[test]
    fn restrict_and_evaluate() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::FALSE);
        assert_eq!(m.restrict(f, 5, true), f); // untouched variable
        assert!(m.evaluate(f, |_| true));
        assert!(!m.evaluate(f, |v| v == 0));
    }

    #[test]
    fn implication_and_satisfiability() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(m.implies(ab, a));
        assert!(!m.implies(a, ab));
        assert!(m.is_satisfiable(ab));
        let na = m.not(a);
        let contradiction = m.and(a, na);
        assert!(!m.is_satisfiable(contradiction));
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let or = m.or(a, b);
        let and = m.and(a, b);
        assert_eq!(m.sat_count(or, 2), 3);
        assert_eq!(m.sat_count(and, 2), 1);
        assert_eq!(m.sat_count(Bdd::TRUE, 2), 4);
        assert_eq!(m.sat_count(Bdd::FALSE, 2), 0);
        assert_eq!(m.sat_count(a, 3), 4);
    }

    #[test]
    fn serialized_size_grows_with_structure() {
        let mut m = BddManager::new();
        let a = m.var(0);
        assert_eq!(m.serialized_size(Bdd::TRUE), 4);
        let single = m.serialized_size(a);
        let b = m.var(1);
        let c = m.var(2);
        let f = {
            let ab = m.and(a, b);
            m.or(ab, c)
        };
        assert!(m.serialized_size(f) > single);
    }

    #[test]
    fn and_or_all_fold() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let all = m.and_all(vars.iter().copied());
        assert!(m.evaluate(all, |_| true));
        assert!(!m.evaluate(all, |v| v != 2));
        let any = m.or_all(vars.iter().copied());
        assert!(m.evaluate(any, |v| v == 3));
        assert!(!m.evaluate(any, |_| false));
        assert_eq!(m.and_all(std::iter::empty()), Bdd::TRUE);
        assert_eq!(m.or_all(std::iter::empty()), Bdd::FALSE);
    }

    #[test]
    fn support_of_constant_is_empty() {
        let m = BddManager::new();
        assert!(m.support(Bdd::TRUE).is_empty());
        assert!(m.support(Bdd::FALSE).is_empty());
    }
}
