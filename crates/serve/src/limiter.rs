//! Per-session token-bucket rate limiting.

use std::time::Instant;

/// A classic token bucket: `rate` tokens accrue per second up to a `burst`
/// capacity; each admitted request spends one token.
///
/// Refill is computed lazily from elapsed wall time at each
/// [`TokenBucket::try_take`], so an idle bucket costs nothing.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    /// Creates a full bucket refilling `rate` tokens per second with a burst
    /// capacity of `burst` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and strictly positive or `burst` is 0.
    pub fn new(rate: f64, burst: u32) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "token bucket rate must be finite and > 0, got {rate}"
        );
        assert!(burst > 0, "token bucket burst must be > 0");
        TokenBucket {
            capacity: f64::from(burst),
            tokens: f64::from(burst),
            rate,
            last: Instant::now(),
        }
    }

    /// Spends one token if available.  Returns `false` (rate limited) when
    /// the bucket is empty.
    pub fn try_take(&mut self) -> bool {
        self.refill(Instant::now());
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to now).
    pub fn available(&mut self) -> f64 {
        self.refill(Instant::now());
        self.tokens
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_is_honored_then_empty_bucket_rejects() {
        // Refill is negligible within this test (1 token per 1000 s).
        let mut bucket = TokenBucket::new(0.001, 3);
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(!bucket.try_take(), "burst exhausted");
        assert!(!bucket.try_take(), "still empty");
    }

    #[test]
    fn tokens_refill_with_wall_time() {
        let mut bucket = TokenBucket::new(1000.0, 2);
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(!bucket.try_take());
        std::thread::sleep(Duration::from_millis(5));
        assert!(
            bucket.try_take(),
            "5 ms at 1000/s refills well over 1 token"
        );
        assert!(bucket.available() <= 2.0, "capacity caps the refill");
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0.0, 1);
    }
}
