//! `serve-loadgen` — replay concurrent provenance queries against an
//! in-process, actively churning server and emit `BENCH_serve.json`.
//!
//! ```text
//! serve-loadgen [--sessions 64] [--queries 4] [--domains 1] [--seed 42]
//!               [--clock-rate 200] [--rate 400] [--burst 128] [--no-churn]
//!               [--hold SECS] [--sweep QPS,QPS,...] [--timeout SECS]
//!               [--addr HOST:PORT] [--out BENCH_serve.json]
//! ```
//!
//! All sessions run nonblocking on one thread, so `--sessions 10000` is a
//! single-process soak, not ten thousand threads.  `--hold 10` keeps every
//! session idle-connected for ten seconds before querying; `--sweep
//! 50,100,200` runs one offered-load phase per rate and records per-phase
//! latency percentiles.  `--addr` targets an already-running `exspan-serve`
//! (same `--domains`/`--seed`) instead of booting one in-process — useful
//! when the fd hard limit cannot cover both socket ends of every session in
//! one process.  Exit status is non-zero if any hard protocol error
//! occurred or nothing completed, so CI can gate directly on the process.

use exspan_serve::loadgen::{bench_report, run, LoadgenConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: LoadgenConfig,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: LoadgenConfig::default(),
        out: "BENCH_serve.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--sessions" => args.config.sessions = parse(&value("--sessions")?, "--sessions")?,
            "--queries" => {
                args.config.queries_per_session = parse(&value("--queries")?, "--queries")?;
            }
            "--domains" => args.config.domains = parse(&value("--domains")?, "--domains")?,
            "--seed" => args.config.seed = parse(&value("--seed")?, "--seed")?,
            "--clock-rate" => {
                args.config.clock_rate = parse(&value("--clock-rate")?, "--clock-rate")?;
            }
            "--rate" => args.config.rate = parse(&value("--rate")?, "--rate")?,
            "--burst" => args.config.burst = parse(&value("--burst")?, "--burst")?,
            "--no-churn" => args.config.churn = false,
            "--hold" => {
                args.config.hold = Duration::from_secs_f64(parse(&value("--hold")?, "--hold")?);
            }
            "--timeout" => {
                args.config.query_timeout =
                    Duration::from_secs_f64(parse(&value("--timeout")?, "--timeout")?);
            }
            "--sweep" => {
                let list = value("--sweep")?;
                args.config.sweep = list
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| parse(s.trim(), "--sweep"))
                    .collect::<Result<Vec<f64>, String>>()?;
            }
            "--addr" => args.config.addr = Some(value("--addr")?),
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "serve-loadgen: {} sessions × {} queries over {} domain(s), churn {}, hold {:.1}s, \
         sweep {:?}",
        args.config.sessions,
        args.config.queries_per_session,
        args.config.domains,
        if args.config.churn { "on" } else { "off" },
        args.config.hold.as_secs_f64(),
        args.config.sweep,
    );
    let summary = match run(&args.config) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "serve-loadgen: {} connected, {} held, {} submitted, {} completed, {} timed out, \
         {} protocol errors, {} backpressure events",
        summary.sessions,
        summary.held,
        summary.submitted,
        summary.completed,
        summary.timed_out,
        summary.protocol_errors,
        summary.backpressure_events,
    );
    eprintln!(
        "serve-loadgen: {:.1} QPS, latency p50 {:.1} ms / p95 {:.1} ms / p99 {:.1} ms \
         over {:.2} s",
        summary.qps, summary.p50_ms, summary.p95_ms, summary.p99_ms, summary.wall_seconds,
    );
    for phase in &summary.phases {
        eprintln!(
            "serve-loadgen: @ {:.0} offered qps: achieved {:.1} qps, p50 {:.1} ms / \
             p95 {:.1} ms / p99 {:.1} ms ({} completed)",
            phase.offered_qps,
            phase.achieved_qps,
            phase.p50_ms,
            phase.p95_ms,
            phase.p99_ms,
            phase.completed,
        );
    }

    let report = bench_report(&summary, 1);
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("serve-loadgen: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("serve-loadgen: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("serve-loadgen: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("serve-loadgen: wrote {}", args.out);

    if summary.protocol_errors > 0 {
        eprintln!("serve-loadgen: FAILED — hard protocol errors occurred");
        return ExitCode::FAILURE;
    }
    if summary.completed == 0 && args.config.queries_per_session > 0 {
        eprintln!("serve-loadgen: FAILED — nothing completed");
        return ExitCode::FAILURE;
    }
    if summary.held < summary.sessions {
        eprintln!(
            "serve-loadgen: FAILED — {} of {} sessions dropped",
            summary.sessions - summary.held,
            summary.sessions,
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
