//! `serve-loadgen` — replay concurrent provenance queries against an
//! in-process, actively churning server and emit `BENCH_serve.json`.
//!
//! ```text
//! serve-loadgen [--sessions 64] [--queries 4] [--domains 1] [--seed 42]
//!               [--clock-rate 200] [--no-churn] [--out BENCH_serve.json]
//! ```
//!
//! Exit status is non-zero if any hard protocol error occurred or nothing
//! completed, so CI can gate directly on the process.

use exspan_serve::loadgen::{bench_report, run, LoadgenConfig};
use std::process::ExitCode;

struct Args {
    config: LoadgenConfig,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: LoadgenConfig::default(),
        out: "BENCH_serve.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--sessions" => args.config.sessions = parse(&value("--sessions")?, "--sessions")?,
            "--queries" => {
                args.config.queries_per_session = parse(&value("--queries")?, "--queries")?;
            }
            "--domains" => args.config.domains = parse(&value("--domains")?, "--domains")?,
            "--seed" => args.config.seed = parse(&value("--seed")?, "--seed")?,
            "--clock-rate" => {
                args.config.clock_rate = parse(&value("--clock-rate")?, "--clock-rate")?;
            }
            "--no-churn" => args.config.churn = false,
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "serve-loadgen: {} sessions × {} queries over {} domain(s), churn {}",
        args.config.sessions,
        args.config.queries_per_session,
        args.config.domains,
        if args.config.churn { "on" } else { "off" },
    );
    let summary = match run(&args.config) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "serve-loadgen: {} submitted, {} completed, {} timed out, {} protocol errors, \
         {} backpressure events",
        summary.submitted,
        summary.completed,
        summary.timed_out,
        summary.protocol_errors,
        summary.backpressure_events,
    );
    eprintln!(
        "serve-loadgen: {:.1} QPS, latency p50 {:.1} ms / p95 {:.1} ms / p99 {:.1} ms \
         over {:.2} s",
        summary.qps, summary.p50_ms, summary.p95_ms, summary.p99_ms, summary.wall_seconds,
    );

    let report = bench_report(&summary, 1);
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("serve-loadgen: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("serve-loadgen: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("serve-loadgen: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("serve-loadgen: wrote {}", args.out);

    if summary.protocol_errors > 0 {
        eprintln!("serve-loadgen: FAILED — hard protocol errors occurred");
        return ExitCode::FAILURE;
    }
    if summary.completed == 0 {
        eprintln!("serve-loadgen: FAILED — nothing completed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
