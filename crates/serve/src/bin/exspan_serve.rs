//! `exspan-serve` — boot a deployment and serve it over TCP.
//!
//! ```text
//! exspan-serve [--addr 127.0.0.1:0] [--domains 1] [--seed 42]
//!              [--clock-rate 50] [--rate 500] [--burst 64]
//!              [--max-sessions 256] [--max-inflight 4096]
//!              [--pipeline-depth 32] [--write-queue-kib 1024]
//!              [--churn-duration 30] [--no-churn] [--data-dir DIR]
//! ```
//!
//! Prints the bound address on stdout, serves until stdin reaches EOF
//! (Ctrl-D, or the parent process closing the pipe), then shuts down.
//!
//! With `--data-dir` the deployment state is persisted (write-ahead log +
//! snapshots): an empty directory boots fresh, an existing store boots from
//! its recovered state without re-running the protocol, and a graceful
//! shutdown checkpoints so the next boot recovers from the snapshot alone.

use exspan_core::{Exspan, ProvenanceMode};
use exspan_netsim::{ChurnModel, Topology};
use exspan_serve::{ServeConfig, Server};
use std::io::BufRead;
use std::process::ExitCode;

struct Args {
    addr: String,
    domains: usize,
    seed: u64,
    clock_rate: f64,
    rate: f64,
    burst: u32,
    max_sessions: usize,
    max_inflight: usize,
    pipeline_depth: u32,
    write_queue_kib: usize,
    churn_duration: f64,
    churn: bool,
    data_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        domains: 1,
        seed: 42,
        clock_rate: 50.0,
        rate: 500.0,
        burst: 64,
        max_sessions: 256,
        max_inflight: 4096,
        pipeline_depth: 32,
        write_queue_kib: 1024,
        churn_duration: 30.0,
        churn: true,
        data_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--domains" => args.domains = parse(&value("--domains")?, "--domains")?,
            "--seed" => args.seed = parse(&value("--seed")?, "--seed")?,
            "--clock-rate" => args.clock_rate = parse(&value("--clock-rate")?, "--clock-rate")?,
            "--rate" => args.rate = parse(&value("--rate")?, "--rate")?,
            "--burst" => args.burst = parse(&value("--burst")?, "--burst")?,
            "--max-sessions" => {
                args.max_sessions = parse(&value("--max-sessions")?, "--max-sessions")?;
            }
            "--max-inflight" => {
                args.max_inflight = parse(&value("--max-inflight")?, "--max-inflight")?;
            }
            "--pipeline-depth" => {
                args.pipeline_depth = parse(&value("--pipeline-depth")?, "--pipeline-depth")?;
            }
            "--write-queue-kib" => {
                args.write_queue_kib = parse(&value("--write-queue-kib")?, "--write-queue-kib")?;
            }
            "--churn-duration" => {
                args.churn_duration = parse(&value("--churn-duration")?, "--churn-duration")?;
            }
            "--no-churn" => args.churn = false,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("exspan-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let topology = Topology::transit_stub(args.domains, args.seed);
    let mut builder = Exspan::builder()
        .program(exspan_ndlog::programs::mincost())
        .topology(topology)
        .mode(ProvenanceMode::Reference);
    if let Some(dir) = &args.data_dir {
        builder = builder.data_dir(dir);
    }
    let mut deployment = match builder.build() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exspan-serve: cannot build deployment: {e}");
            return ExitCode::FAILURE;
        }
    };
    if deployment.recovered_from_store() {
        // The store holds a quiescent fixpoint; no need to recompute it.
        eprintln!(
            "exspan-serve: recovered state from {}",
            args.data_dir.as_ref().unwrap().display()
        );
    } else {
        eprintln!("exspan-serve: running protocol to fixpoint…");
        deployment.run_to_fixpoint();
    }

    if args.churn {
        let churn = ChurnModel {
            interval: 0.5,
            changes_per_batch: 3,
            seed: args.seed ^ 0xC0FFEE,
        };
        let schedule = churn.schedule(deployment.topology(), args.churn_duration);
        let start = deployment.now();
        let events = schedule.len();
        for event in &schedule {
            deployment.schedule_churn_event(event, start + event.time);
        }
        eprintln!(
            "exspan-serve: {events} churn events scheduled over {} simulated seconds",
            args.churn_duration
        );
    }

    let mut config = ServeConfig::default()
        .addr(args.addr)
        .max_sessions(args.max_sessions)
        .max_inflight(args.max_inflight)
        .rate_limit(args.rate, args.burst)
        .clock_rate(args.clock_rate)
        .pipeline_depth(args.pipeline_depth)
        .write_queue_bytes(args.write_queue_kib * 1024);
    if let Some(dir) = &args.data_dir {
        config = config.data_dir(dir);
    }
    let server = match Server::bind(deployment, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("exspan-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The bound address is the one line of stdout, so scripts can do
    // `ADDR=$(exspan-serve ... &)`-style capture.
    println!("{}", server.addr());
    eprintln!("exspan-serve: serving (EOF on stdin shuts down)");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        if line.is_err() {
            break;
        }
    }
    eprintln!("exspan-serve: shutting down");
    // shutdown() checkpoints the store when ServeConfig::data_dir was set.
    let deployment = server.shutdown();
    if args.data_dir.is_some() {
        eprintln!("exspan-serve: state checkpointed");
    }
    eprintln!(
        "exspan-serve: done — {} queries issued, {} still in flight",
        deployment.outcomes().len(),
        deployment.incomplete_queries()
    );
    ExitCode::SUCCESS
}
