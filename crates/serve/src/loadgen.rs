//! The load generator behind the `serve-loadgen` binary.
//!
//! Boots a deployment (mincost over a transit-stub topology, reference-based
//! provenance), pre-schedules link churn so the served deployment keeps
//! *changing* while it is queried, starts an in-process [`Server`], and
//! replays provenance queries from many concurrent client sessions.  Emits a
//! [`BenchReport`] (`BENCH_serve.json`) in the same machine-readable format
//! `check_bench` gates for the figures.

use crate::client::ServeClient;
use crate::proto::QuerySpec;
use crate::server::{ServeConfig, Server};
use exspan_bench::report::{BenchReport, BenchSeries};
use exspan_core::{Exspan, ProvenanceMode, Repr, Traversal};
use exspan_netsim::{ChurnModel, Topology};
use exspan_types::{NodeId, Tuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Workload shape of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Queries each session submits (and waits out) sequentially.
    pub queries_per_session: usize,
    /// Transit-stub domains of the served topology (100 nodes per domain).
    pub domains: usize,
    /// Base random seed (workload and churn schedule).
    pub seed: u64,
    /// Simulated seconds the server advances per wall-clock second.
    pub clock_rate: f64,
    /// Whether to keep the deployment churning while it is queried.
    pub churn: bool,
    /// Simulated seconds of pre-scheduled churn.
    pub churn_duration: f64,
    /// Per-session token-bucket rate handed to the server (requests/s).
    pub rate: f64,
    /// Per-session token-bucket burst handed to the server.
    pub burst: u32,
    /// Wall-clock pause between completion polls.
    pub poll_every: Duration,
    /// Wall-clock budget to wait out one query before writing it off.
    pub query_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 64,
            queries_per_session: 4,
            domains: 1,
            seed: 42,
            clock_rate: 200.0,
            churn: true,
            churn_duration: 30.0,
            rate: 400.0,
            burst: 128,
            poll_every: Duration::from_millis(5),
            query_timeout: Duration::from_secs(20),
        }
    }
}

/// Aggregate results of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Sessions that connected and completed their workload.
    pub sessions: usize,
    /// Queries submitted (admitted by the server).
    pub submitted: usize,
    /// Queries whose completion the client observed.
    pub completed: usize,
    /// Queries written off after [`LoadgenConfig::query_timeout`].
    pub timed_out: usize,
    /// Hard protocol errors (anything but admission/rate backpressure).
    pub protocol_errors: usize,
    /// Times a submit was pushed back (rate limit or admission) and retried.
    pub backpressure_events: usize,
    /// Wall-clock seconds between the first submit and the last completion.
    pub wall_seconds: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Wall-clock latency percentiles over completed queries, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

/// Per-session tallies folded into the [`LoadgenSummary`].
#[derive(Debug, Default)]
struct SessionTally {
    submitted: usize,
    completed: usize,
    timed_out: usize,
    protocol_errors: usize,
    backpressure_events: usize,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    sorted_ms[rank.round() as usize]
}

/// Runs the full workload: build, churn-schedule, serve, replay, shut down.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenSummary> {
    let topology = Topology::transit_stub(config.domains, config.seed);
    let mut deployment = Exspan::builder()
        .program(exspan_ndlog::programs::mincost())
        .topology(topology)
        .mode(ProvenanceMode::Reference)
        .build()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    deployment.run_to_fixpoint();

    // The query population: routes of a small set of "hot" destinations,
    // exactly like the §7.3 query workload of the figures.
    let nodes = deployment.topology().num_nodes();
    let mut targets: Vec<Arc<Tuple>> = Vec::new();
    for n in 0..nodes.min(12) as NodeId {
        targets.extend(deployment.tuples_shared(n, "bestPathCost"));
    }
    targets.truncate(64);
    if targets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol fixpoint produced no bestPathCost tuples to query",
        ));
    }

    // Pre-schedule churn: the wall clock pays the simulated time out
    // gradually, so these link changes fire *while* clients are querying.
    if config.churn {
        let churn = ChurnModel {
            interval: 0.5,
            changes_per_batch: 3,
            seed: config.seed ^ 0xC0FFEE,
        };
        let schedule = churn.schedule(deployment.topology(), config.churn_duration);
        let start = deployment.now();
        for event in &schedule {
            deployment.schedule_churn_event(event, start + event.time);
        }
    }

    let server = Server::start(
        deployment,
        ServeConfig {
            max_sessions: config.sessions + 8,
            rate: config.rate,
            burst: config.burst,
            clock_rate: config.clock_rate,
            ..ServeConfig::default()
        },
    )?;
    let addr = server.addr();

    let started = Instant::now();
    let mut workers = Vec::with_capacity(config.sessions);
    for session_index in 0..config.sessions {
        let config = config.clone();
        let targets = targets.clone();
        workers.push(thread::spawn(move || {
            session_workload(addr, session_index, &config, &targets)
        }));
    }

    let mut summary = LoadgenSummary {
        sessions: 0,
        submitted: 0,
        completed: 0,
        timed_out: 0,
        protocol_errors: 0,
        backpressure_events: 0,
        wall_seconds: 0.0,
        qps: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
    };
    let mut latencies = Vec::new();
    for worker in workers {
        let tally = worker.join().unwrap_or_else(|_| SessionTally {
            protocol_errors: 1,
            ..SessionTally::default()
        });
        summary.sessions += 1;
        summary.submitted += tally.submitted;
        summary.completed += tally.completed;
        summary.timed_out += tally.timed_out;
        summary.protocol_errors += tally.protocol_errors;
        summary.backpressure_events += tally.backpressure_events;
        latencies.extend(tally.latencies_ms);
    }
    summary.wall_seconds = started.elapsed().as_secs_f64();
    summary.qps = if summary.wall_seconds > 0.0 {
        summary.completed as f64 / summary.wall_seconds
    } else {
        0.0
    };
    latencies.sort_by(f64::total_cmp);
    summary.p50_ms = percentile(&latencies, 50.0);
    summary.p95_ms = percentile(&latencies, 95.0);
    summary.p99_ms = percentile(&latencies, 99.0);

    server.shutdown();
    Ok(summary)
}

fn session_workload(
    addr: std::net::SocketAddr,
    session_index: usize,
    config: &LoadgenConfig,
    targets: &[Arc<Tuple>],
) -> SessionTally {
    let mut tally = SessionTally::default();
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ (session_index as u64).wrapping_mul(0x9E37));
    let Ok(mut client) = ServeClient::connect(addr) else {
        tally.protocol_errors += 1;
        return tally;
    };
    for _ in 0..config.queries_per_session {
        let target = &targets[rng.gen_range(0..targets.len())];
        let issuer = rng.gen_range(0..client.info().nodes);
        let spec = QuerySpec {
            issuer,
            repr: Repr::Polynomial,
            traversal: Traversal::Bfs,
            cached: false,
            relation: target.relation_name().to_string(),
            location: target.location,
            values: target.values.clone(),
        };
        // Submit, absorbing backpressure with a bounded retry loop.
        let submit_started = Instant::now();
        let query = loop {
            match client.submit(spec.clone()) {
                Ok(query) => break Some(query),
                Err(e) if e.is_backpressure() => {
                    tally.backpressure_events += 1;
                    if submit_started.elapsed() > config.query_timeout {
                        break None;
                    }
                    thread::sleep(config.poll_every);
                }
                Err(_) => {
                    tally.protocol_errors += 1;
                    break None;
                }
            }
        };
        let Some(query) = query else { continue };
        tally.submitted += 1;
        match client.wait(query, config.query_timeout, config.poll_every) {
            Ok(Some(_status)) => {
                tally.completed += 1;
                tally
                    .latencies_ms
                    .push(submit_started.elapsed().as_secs_f64() * 1e3);
            }
            Ok(None) => tally.timed_out += 1,
            Err(_) => tally.protocol_errors += 1,
        }
    }
    if client.bye().is_err() {
        tally.protocol_errors += 1;
    }
    tally
}

/// Renders the summary as the machine-readable `BENCH_serve.json` record.
///
/// The series reuse the [`BenchSeries`] statistics slots: `mean`, `max` and
/// `last` all carry the one measured value, `points` carries the relevant
/// sample count.
pub fn bench_report(summary: &LoadgenSummary, shards: usize) -> BenchReport {
    let metric = |label: &str, value: f64, points: usize| BenchSeries {
        label: label.to_string(),
        mean: value,
        max: value,
        last: value,
        points,
    };
    BenchReport {
        figure: "serve".into(),
        title: "Service front-end: concurrent provenance queries under churn".into(),
        scale: "loadgen".into(),
        shards,
        wall_clock_seconds: summary.wall_seconds,
        y_label: "QPS / latency ms / counts".into(),
        series: vec![
            metric("QPS", summary.qps, summary.completed),
            metric("latency p50 (ms)", summary.p50_ms, summary.completed),
            metric("latency p95 (ms)", summary.p95_ms, summary.completed),
            metric("latency p99 (ms)", summary.p99_ms, summary.completed),
            metric(
                "protocol errors",
                summary.protocol_errors as f64,
                summary.protocol_errors,
            ),
            metric("sessions", summary.sessions as f64, summary.sessions),
            metric("timed out", summary.timed_out as f64, summary.timed_out),
            metric(
                "backpressure events",
                summary.backpressure_events as f64,
                summary.backpressure_events,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&data, 50.0), 51.0);
        assert_eq!(percentile(&data, 99.0), 99.0);
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn bench_report_carries_the_gated_series() {
        let summary = LoadgenSummary {
            sessions: 64,
            submitted: 256,
            completed: 250,
            timed_out: 6,
            protocol_errors: 0,
            backpressure_events: 3,
            wall_seconds: 2.0,
            qps: 125.0,
            p50_ms: 10.0,
            p95_ms: 60.0,
            p99_ms: 90.0,
        };
        let report = bench_report(&summary, 1);
        assert_eq!(report.figure, "serve");
        assert_eq!(report.series("QPS").unwrap().mean, 125.0);
        assert_eq!(report.series("latency p99 (ms)").unwrap().mean, 90.0);
        assert_eq!(report.series("protocol errors").unwrap().mean, 0.0);
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series.len(), report.series.len());
    }
}
