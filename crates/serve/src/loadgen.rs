//! The load generator behind the `serve-loadgen` binary.
//!
//! Boots a deployment (mincost over a transit-stub topology, reference-based
//! provenance), pre-schedules link churn so the served deployment keeps
//! *changing* while it is queried, starts an in-process [`Server`], and
//! replays provenance queries from many concurrent client sessions.  Emits a
//! [`BenchReport`] (`BENCH_serve.json`) in the same machine-readable format
//! `check_bench` gates for the figures.
//!
//! All sessions are driven by **one thread** over nonblocking sockets and
//! `poll(2)` — a mirror image of the server's reactor — so a single process
//! can hold tens of thousands of concurrent sessions without a stack per
//! session.  A run has three parts:
//!
//! 1. **connect**: every session dials in (sequentially, so the listener
//!    backlog never overflows) and completes the v2 handshake;
//! 2. **hold** (optional, [`LoadgenConfig::hold`]): sessions sit idle and
//!    connected — the 10k-session soak CI gates on;
//! 3. **sweep**: one query phase per entry of [`LoadgenConfig::sweep`], each
//!    pacing submits at that aggregate offered load (queries per wall-clock
//!    second) and recording its own latency percentiles.  An empty sweep
//!    runs a single closed-loop phase (submit as fast as admission allows).

use crate::client::Jitter;
use crate::proto::{
    self, ErrorCode, Frame, FrameBuffer, FrameRead, QuerySpec, QueryState, ResultAssembler,
    PROTOCOL_VERSION,
};
use crate::server::{ServeConfig, Server};
use exspan_bench::report::{BenchReport, BenchSeries};
use exspan_core::{Exspan, ProvenanceMode, Repr, Traversal};
use exspan_netsim::{ChurnModel, Topology};
use exspan_types::{NodeId, Tuple};
use pollshim::{PollFd, POLLIN, POLLOUT};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Smallest pause before re-polling a pending query.
const POLL_BACKOFF_FLOOR: Duration = Duration::from_millis(2);

/// Largest pause between polls of one pending query.
const POLL_BACKOFF_CEIL: Duration = Duration::from_millis(256);

/// Reactor tick upper bound, so pacing deadlines are honored promptly.
const TICK_MS: i32 = 25;

/// Workload shape of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client sessions (all connected and held for the run).
    pub sessions: usize,
    /// Queries each session submits (and waits out) per sweep phase.
    pub queries_per_session: usize,
    /// Transit-stub domains of the served topology (100 nodes per domain).
    pub domains: usize,
    /// Base random seed (workload and churn schedule).
    pub seed: u64,
    /// Simulated seconds the server advances per wall-clock second.
    pub clock_rate: f64,
    /// Whether to keep the deployment churning while it is queried.
    pub churn: bool,
    /// Simulated seconds of pre-scheduled churn.
    pub churn_duration: f64,
    /// Per-session token-bucket rate handed to the server (requests/s).
    pub rate: f64,
    /// Per-session token-bucket burst handed to the server.
    pub burst: u32,
    /// Wall-clock budget to wait out one query before writing it off.
    pub query_timeout: Duration,
    /// Idle soak after connecting and before querying: every session stays
    /// connected, nothing is submitted, and any drop counts as an error.
    pub hold: Duration,
    /// Offered aggregate submit rates (queries/s) to sweep, one phase each.
    /// Empty runs a single closed-loop phase.
    pub sweep: Vec<f64>,
    /// Address of an already-running server to target instead of booting
    /// one in-process.  Halves the loadgen's file-descriptor footprint
    /// (one fd per session instead of both socket ends), which is what
    /// lets a 10k-session soak fit under a 20k `RLIMIT_NOFILE` hard cap.
    /// The external server must serve the same `--domains`/`--seed`
    /// workload: the query population is re-derived locally from the
    /// deterministic deployment build.
    pub addr: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 64,
            queries_per_session: 4,
            domains: 1,
            seed: 42,
            clock_rate: 200.0,
            churn: true,
            churn_duration: 30.0,
            rate: 400.0,
            burst: 128,
            query_timeout: Duration::from_secs(20),
            hold: Duration::ZERO,
            sweep: Vec::new(),
            addr: None,
        }
    }
}

/// Latency profile of one offered-load phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Target aggregate submit rate (0 = closed loop).
    pub offered_qps: f64,
    /// Completions per wall-clock second actually achieved.
    pub achieved_qps: f64,
    /// Queries completed in this phase.
    pub completed: usize,
    /// Wall-clock latency percentiles over this phase's completions, ms.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

/// Aggregate results of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenSummary {
    /// Sessions that connected and completed the handshake.
    pub sessions: usize,
    /// Sessions still alive at the end of the hold soak (= `sessions` when
    /// no soak was requested).
    pub held: usize,
    /// Queries submitted (admitted by the server).
    pub submitted: usize,
    /// Queries whose completion the client observed.
    pub completed: usize,
    /// Queries written off after [`LoadgenConfig::query_timeout`].
    pub timed_out: usize,
    /// Hard protocol errors (anything but admission/rate backpressure).
    pub protocol_errors: usize,
    /// Times a submit was pushed back (rate limit or admission) and retried.
    pub backpressure_events: usize,
    /// Wall-clock seconds between the first submit and the last completion.
    pub wall_seconds: f64,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// Wall-clock latency percentiles over completed queries, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Cache entries the server maintained in place (highest value any
    /// `QueryStatusV2` reported; 0 against pre-codec servers).
    pub cache_maintained: u64,
    /// Bytes the dictionary codec saved on the server's query traffic
    /// (highest value any `QueryStatusV2` reported).
    pub compressed_bytes_saved: u64,
    /// One entry per sweep phase, in offered-load order.
    pub phases: Vec<PhaseStats>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    sorted_ms[rank.round() as usize]
}

/// What one session is currently waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessState {
    /// `Hello` sent; waiting for the ack.
    Greeting,
    /// Connected, nothing in flight.
    Idle,
    /// `SubmitQuery` sent; waiting for `SubmitAck` (or pushback).
    SubmitPending,
    /// Query admitted; next `Poll` due at `poll_at`.
    WaitResult,
    /// `Poll` sent; waiting for the status (and any chunk stream).
    PollPending,
    /// `Bye` sent; waiting for the echo.
    ByePending,
    /// Closed cleanly.
    Done,
    /// Dead (protocol error or unexpected hangup); fd dropped.
    Failed,
}

/// One nonblocking client session driven by the reactor.
struct Session {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Outbound bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    state: SessState,
    next_request: u64,
    /// Queries still to submit in the current phase.
    remaining: usize,
    /// Current query id (valid in `WaitResult`/`PollPending`).
    query: u64,
    /// When the current query was first attempted (spans retries).
    started: Instant,
    /// Write-off deadline for the current query.
    deadline: Instant,
    /// Earliest time for the next action (poll, or submit retry).
    poll_at: Instant,
    backoff: Duration,
    jitter: Jitter,
    /// True when `Idle` means "retry the current query", not "next query".
    retrying: bool,
    assembler: Option<ResultAssembler>,
    submitted: usize,
    completed: usize,
    timed_out: usize,
    protocol_errors: usize,
    backpressure_events: usize,
    /// Latest session counters echoed in `QueryStatusV2` (cumulative on the
    /// server side, so the latest observation is also the largest).
    cache_maintained: u64,
    compressed_bytes_saved: u64,
}

impl Session {
    fn alive(&self) -> bool {
        !matches!(self.state, SessState::Done | SessState::Failed)
    }

    fn fail(&mut self) {
        self.state = SessState::Failed;
        self.protocol_errors += 1;
        self.stream.shutdown(std::net::Shutdown::Both).ok();
    }

    fn send(&mut self, frame: &Frame) {
        let bytes = proto::encode_frame(frame).expect("loadgen frames always encode");
        self.out.extend_from_slice(&bytes);
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Finishes the current query (success or write-off) and goes idle.
    fn finish_query(&mut self, now: Instant, latencies: &mut Vec<f64>, completed: bool) {
        if completed {
            self.completed += 1;
            latencies.push(now.duration_since(self.started).as_secs_f64() * 1e3);
        } else {
            self.timed_out += 1;
        }
        self.remaining = self.remaining.saturating_sub(1);
        self.retrying = false;
        self.assembler = None;
        self.state = SessState::Idle;
    }

    /// Abandons the current query without recording anything (hard error).
    fn abandon_query(&mut self) {
        self.remaining = self.remaining.saturating_sub(1);
        self.retrying = false;
        self.assembler = None;
        self.state = SessState::Idle;
    }

    fn bump_backoff(&mut self, now: Instant) {
        self.poll_at = now + self.backoff / 2 + self.jitter.in_range(self.backoff / 2);
        self.backoff = (self.backoff * 2).min(POLL_BACKOFF_CEIL);
    }

    /// Advances the state machine on one decoded frame.
    fn handle_frame(&mut self, frame: Frame, now: Instant, latencies: &mut Vec<f64>) {
        match (self.state, frame) {
            (SessState::Greeting, Frame::HelloAck { .. } | Frame::HelloAckV2 { .. }) => {
                self.state = SessState::Idle;
            }
            (SessState::SubmitPending, Frame::SubmitAck { query, .. }) => {
                self.submitted += 1;
                self.query = query;
                self.backoff = POLL_BACKOFF_FLOOR;
                self.bump_backoff(now);
                self.state = SessState::WaitResult;
            }
            (
                SessState::SubmitPending,
                Frame::Error {
                    code: ErrorCode::Admission | ErrorCode::RateLimited,
                    ..
                },
            ) => {
                // Pushback: go idle flagged for retry, after a pause.
                self.backpressure_events += 1;
                self.retrying = true;
                self.bump_backoff(now);
                self.state = SessState::Idle;
            }
            (
                SessState::PollPending,
                Frame::Error {
                    code: ErrorCode::Admission | ErrorCode::RateLimited,
                    ..
                },
            ) => {
                self.backpressure_events += 1;
                self.bump_backoff(now);
                self.state = SessState::WaitResult;
            }
            (SessState::SubmitPending | SessState::PollPending, Frame::Error { .. }) => {
                // A hard rejection: count it and move on to the next query.
                self.protocol_errors += 1;
                self.abandon_query();
            }
            (SessState::PollPending, Frame::QueryStatus { state, .. }) => {
                if state == QueryState::Complete {
                    self.finish_query(now, latencies, true);
                } else if now >= self.deadline {
                    self.finish_query(now, latencies, false);
                } else {
                    self.bump_backoff(now);
                    self.state = SessState::WaitResult;
                }
            }
            (
                SessState::PollPending,
                Frame::QueryStatusV2 {
                    state,
                    result_total,
                    cache_maintained,
                    compressed_bytes_saved,
                    ..
                },
            ) => {
                // The counters are cumulative on the server side; keep the
                // freshest (largest) observation.
                self.cache_maintained = self.cache_maintained.max(cache_maintained);
                self.compressed_bytes_saved =
                    self.compressed_bytes_saved.max(compressed_bytes_saved);
                if result_total > 0 {
                    // A body follows as chunks; stay put and assemble.
                    self.assembler = Some(ResultAssembler::new(result_total));
                } else if state == QueryState::Complete {
                    self.finish_query(now, latencies, true);
                } else if now >= self.deadline {
                    self.finish_query(now, latencies, false);
                } else {
                    self.bump_backoff(now);
                    self.state = SessState::WaitResult;
                }
            }
            (
                SessState::PollPending,
                Frame::ResultChunk {
                    offset,
                    total,
                    bytes,
                    ..
                },
            ) => match self
                .assembler
                .as_mut()
                .map(|a| a.accept(offset, total, &bytes))
            {
                Some(Ok(Some(_body))) => self.finish_query(now, latencies, true),
                Some(Ok(None)) => {}
                _ => self.fail(),
            },
            (SessState::ByePending, Frame::Bye) => {
                self.state = SessState::Done;
                self.stream.shutdown(std::net::Shutdown::Both).ok();
            }
            // Stale responses to an abandoned query (e.g. a poll answered
            // after its deadline write-off) are dropped, as are pipelined
            // leftovers racing the bye echo.
            (SessState::Idle | SessState::ByePending | SessState::SubmitPending, _frame) => {}
            (_, _frame) => self.fail(),
        }
    }
}

/// Builds the served deployment plus the query target population.
fn build_deployment(
    config: &LoadgenConfig,
) -> io::Result<(exspan_core::Deployment, Vec<Arc<Tuple>>)> {
    let topology = Topology::transit_stub(config.domains, config.seed);
    let mut deployment = Exspan::builder()
        .program(exspan_ndlog::programs::mincost())
        .topology(topology)
        .mode(ProvenanceMode::Reference)
        .build()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    deployment.run_to_fixpoint();

    // The query population: routes of a small set of "hot" destinations,
    // exactly like the §7.3 query workload of the figures.
    let nodes = deployment.topology().num_nodes();
    let mut targets: Vec<Arc<Tuple>> = Vec::new();
    for n in 0..nodes.min(12) as NodeId {
        targets.extend(deployment.tuples_shared(n, "bestPathCost"));
    }
    targets.truncate(64);
    if targets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol fixpoint produced no bestPathCost tuples to query",
        ));
    }

    // Pre-schedule churn: the wall clock pays the simulated time out
    // gradually, so these link changes fire *while* clients are querying.
    if config.churn {
        let churn = ChurnModel {
            interval: 0.5,
            changes_per_batch: 3,
            seed: config.seed ^ 0xC0FFEE,
        };
        let schedule = churn.schedule(deployment.topology(), config.churn_duration);
        let start = deployment.now();
        for event in &schedule {
            deployment.schedule_churn_event(event, start + event.time);
        }
    }
    Ok((deployment, targets))
}

/// Runs the full workload: build, churn-schedule, serve, replay, shut down.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenSummary> {
    // Two fds per in-process session (client end + server end) — one when
    // the server runs elsewhere — plus slack for the listener, wake pipe,
    // and stdio.
    let per_session_fds: u64 = if config.addr.is_some() { 1 } else { 2 };
    let need = (config.sessions as u64) * per_session_fds + 64;
    let limit = pollshim::raise_nofile_limit(need).unwrap_or(0);
    if limit < need {
        return Err(io::Error::other(format!(
            "need {need} file descriptors but the limit is {limit}"
        )));
    }

    let (server, addr, targets, nodes) = match &config.addr {
        // External server: the workload targets are re-derived from the
        // same deterministic deployment build the server ran (skipped
        // entirely for an idle soak, which queries nothing).
        Some(external) => {
            use std::net::ToSocketAddrs;
            let addr = external.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cannot resolve {external}"),
                )
            })?;
            if config.queries_per_session == 0 {
                (None, addr, Vec::new(), 1)
            } else {
                let (deployment, targets) = build_deployment(config)?;
                let nodes = deployment.topology().num_nodes() as u32;
                (None, addr, targets, nodes)
            }
        }
        None => {
            let (deployment, targets) = build_deployment(config)?;
            let nodes = deployment.topology().num_nodes() as u32;
            let server = Server::bind(
                deployment,
                ServeConfig::default()
                    .max_sessions(config.sessions + 8)
                    .rate_limit(config.rate, config.burst)
                    .clock_rate(config.clock_rate),
            )?;
            let addr = server.addr();
            (Some(server), addr, targets, nodes)
        }
    };

    let started = Instant::now();
    let mut lg = Loadgen {
        sessions: Vec::with_capacity(config.sessions),
        latencies: Vec::new(),
        all_latencies: Vec::new(),
        rng: SmallRng::seed_from_u64(config.seed ^ 0x10AD_6E4E),
        config: config.clone(),
        targets,
        nodes,
    };

    // Connect phase: dial sequentially (the listener backlog is finite),
    // then drive all handshakes to completion concurrently.
    for index in 0..config.sessions {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(true)?;
                let mut session = Session {
                    stream,
                    frames: FrameBuffer::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    state: SessState::Greeting,
                    next_request: 1,
                    remaining: 0,
                    query: 0,
                    started,
                    deadline: started,
                    poll_at: started,
                    backoff: POLL_BACKOFF_FLOOR,
                    jitter: Jitter::new(config.seed ^ (index as u64).wrapping_mul(0x9E37)),
                    retrying: false,
                    assembler: None,
                    submitted: 0,
                    completed: 0,
                    timed_out: 0,
                    protocol_errors: 0,
                    backpressure_events: 0,
                    cache_maintained: 0,
                    compressed_bytes_saved: 0,
                };
                session.send(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    codec: true,
                });
                lg.sessions.push(session);
            }
            Err(_) => {
                // A refused dial is fine to skip; the summary's session
                // count exposes the shortfall.
            }
        }
    }
    let handshake_deadline = Instant::now() + Duration::from_secs(60);
    while lg
        .sessions
        .iter()
        .any(|s| s.state == SessState::Greeting && s.alive())
    {
        if Instant::now() >= handshake_deadline {
            break;
        }
        lg.tick(TICK_MS);
    }
    for session in &mut lg.sessions {
        if session.state == SessState::Greeting {
            session.fail();
        }
    }
    let connected = lg.sessions.iter().filter(|s| s.alive()).count();

    // Hold phase: the idle soak.  Sessions must simply stay up.
    if !config.hold.is_zero() {
        let until = Instant::now() + config.hold;
        while Instant::now() < until {
            lg.tick(TICK_MS);
        }
    }
    let held = lg.sessions.iter().filter(|s| s.alive()).count();

    // Sweep phases.
    let offered: Vec<f64> = if config.sweep.is_empty() {
        vec![0.0]
    } else {
        config.sweep.clone()
    };
    let mut phases = Vec::with_capacity(offered.len());
    if config.queries_per_session > 0 {
        // Sweep warm-up: one unrecorded query per session at the first
        // offered rate.  The front-loaded churn schedule and the server's
        // first pumps after boot land here instead of inside the first
        // recorded phase, which would otherwise invert the
        // latency-vs-offered-load curve that `check_bench --serve` gates.
        if !config.sweep.is_empty() {
            lg.run_phase(offered[0], 1);
            lg.all_latencies.clear();
        }
        for &rate in &offered {
            phases.push(lg.run_phase(rate, config.queries_per_session));
        }
    }

    // Goodbye phase.
    for session in &mut lg.sessions {
        if session.alive() {
            session.send(&Frame::Bye);
            session.state = SessState::ByePending;
        }
    }
    let bye_deadline = Instant::now() + Duration::from_secs(10);
    while lg.sessions.iter().any(|s| s.state == SessState::ByePending) {
        if Instant::now() >= bye_deadline {
            break;
        }
        lg.tick(TICK_MS);
    }
    for session in &mut lg.sessions {
        if session.state == SessState::ByePending {
            session.fail();
        }
    }

    let mut summary = LoadgenSummary {
        sessions: connected,
        held,
        submitted: 0,
        completed: 0,
        timed_out: 0,
        protocol_errors: 0,
        backpressure_events: 0,
        wall_seconds: started.elapsed().as_secs_f64(),
        qps: 0.0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
        cache_maintained: 0,
        compressed_bytes_saved: 0,
        phases,
    };
    for session in &lg.sessions {
        summary.submitted += session.submitted;
        summary.completed += session.completed;
        summary.timed_out += session.timed_out;
        summary.protocol_errors += session.protocol_errors;
        summary.backpressure_events += session.backpressure_events;
        // Server-side cumulative counters: every session observes the same
        // deployment, so the run-wide value is the largest observation.
        summary.cache_maintained = summary.cache_maintained.max(session.cache_maintained);
        summary.compressed_bytes_saved = summary
            .compressed_bytes_saved
            .max(session.compressed_bytes_saved);
    }
    summary.qps = if summary.wall_seconds > 0.0 {
        summary.completed as f64 / summary.wall_seconds
    } else {
        0.0
    };
    lg.all_latencies.sort_by(f64::total_cmp);
    summary.p50_ms = percentile(&lg.all_latencies, 50.0);
    summary.p95_ms = percentile(&lg.all_latencies, 95.0);
    summary.p99_ms = percentile(&lg.all_latencies, 99.0);

    if let Some(server) = server {
        server.shutdown();
    }
    Ok(summary)
}

/// The client-side reactor state shared by all phases.
struct Loadgen {
    sessions: Vec<Session>,
    /// Latencies of the *current* phase (drained per phase into
    /// `all_latencies`).
    latencies: Vec<f64>,
    /// Latencies of every *recorded* phase, for the run-wide percentiles
    /// (the warm-up pass is dropped before recording starts).
    all_latencies: Vec<f64>,
    rng: SmallRng,
    config: LoadgenConfig,
    targets: Vec<Arc<Tuple>>,
    /// Node count of the served topology (issuer population).
    nodes: u32,
}

impl Loadgen {
    /// One `poll(2)` round: flush writes, read frames, advance machines.
    fn tick(&mut self, timeout_ms: i32) {
        let mut fds = Vec::with_capacity(self.sessions.len());
        let mut index = Vec::with_capacity(self.sessions.len());
        for (i, session) in self.sessions.iter().enumerate() {
            if !session.alive() {
                continue;
            }
            let mut events = POLLIN;
            if !session.out.is_empty() {
                events |= POLLOUT;
            }
            #[cfg(unix)]
            let fd = {
                use std::os::unix::io::AsRawFd;
                session.stream.as_raw_fd()
            };
            #[cfg(not(unix))]
            let fd = -1;
            fds.push(PollFd::new(fd, events));
            index.push(i);
        }
        if fds.is_empty() {
            std::thread::sleep(Duration::from_millis(timeout_ms.max(1) as u64));
            return;
        }
        let Ok(n) = pollshim::poll(&mut fds, timeout_ms) else {
            return;
        };
        if n == 0 {
            return;
        }
        let now = Instant::now();
        let mut buf = [0u8; 8192];
        for (slot, &i) in fds.iter().zip(&index) {
            let session = &mut self.sessions[i];
            if slot.writable() && !session.out.is_empty() && session.flush().is_err() {
                session.fail();
                continue;
            }
            if !slot.readable() {
                continue;
            }
            loop {
                match session.stream.read(&mut buf) {
                    Ok(0) => {
                        // EOF: clean after bye, an error otherwise.
                        if session.state == SessState::ByePending {
                            session.state = SessState::Done;
                        } else {
                            session.fail();
                        }
                        break;
                    }
                    Ok(n) => {
                        session.frames.feed(&buf[..n]);
                        while let Some(read) = session.frames.next_frame() {
                            let frame = match read {
                                FrameRead::Body(body) => match proto::decode_frame(&body) {
                                    Ok(frame) => frame,
                                    Err(_) => {
                                        session.fail();
                                        break;
                                    }
                                },
                                FrameRead::Oversized { .. } => {
                                    session.fail();
                                    break;
                                }
                            };
                            session.handle_frame(frame, now, &mut self.latencies);
                        }
                        if !session.alive() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        session.fail();
                        break;
                    }
                }
            }
            // Frames may have queued replies (none today) or the handler may
            // have queued nothing; flush whatever is pending eagerly so a
            // response never waits for the next tick.
            if session.alive() && !session.out.is_empty() && session.flush().is_err() {
                session.fail();
            }
        }
    }

    /// Runs one offered-load phase (`per_session` queries on every live
    /// session) to completion and returns its stats.
    fn run_phase(&mut self, offered_qps: f64, per_session: usize) -> PhaseStats {
        let mut total = 0usize;
        for session in &mut self.sessions {
            if session.alive() {
                session.remaining = per_session;
                session.retrying = false;
                total += per_session;
            }
        }
        self.latencies.clear();

        let phase_start = Instant::now();
        // Generous bound: pacing time plus per-query write-off budget.
        let pacing = if offered_qps > 0.0 {
            Duration::from_secs_f64(total as f64 / offered_qps)
        } else {
            Duration::ZERO
        };
        let phase_deadline =
            phase_start + pacing + self.config.query_timeout * (per_session as u32 + 1);
        let mut launched = 0usize;

        loop {
            let now = Instant::now();
            // How many submits the pacing schedule has released so far.
            let budget = if offered_qps > 0.0 {
                let due = (now.duration_since(phase_start).as_secs_f64() * offered_qps) as usize;
                due.min(total).saturating_sub(launched)
            } else {
                usize::MAX
            };
            let mut spent = 0usize;
            let mut outstanding = false;
            for i in 0..self.sessions.len() {
                let session = &mut self.sessions[i];
                if !session.alive() {
                    continue;
                }
                match session.state {
                    SessState::Idle if session.remaining > 0 => {
                        // Retries wait out their backoff; fresh submits wait
                        // for pacing budget.
                        if session.retrying {
                            if now >= session.poll_at {
                                self.submit(i, now, true);
                            }
                        } else if spent < budget {
                            spent += 1;
                            launched += 1;
                            self.submit(i, now, false);
                        }
                        outstanding = true;
                    }
                    SessState::WaitResult => {
                        let session = &mut self.sessions[i];
                        if now >= session.deadline {
                            // Write the query off without another round trip.
                            session.finish_query(now, &mut self.latencies, false);
                        } else if now >= session.poll_at {
                            let request = session.next_request;
                            session.next_request += 1;
                            let query = session.query;
                            session.send(&Frame::Poll { request, query });
                            session.state = SessState::PollPending;
                        }
                        outstanding = true;
                    }
                    SessState::SubmitPending | SessState::PollPending => outstanding = true,
                    _ => {}
                }
            }
            if !outstanding || now >= phase_deadline {
                break;
            }
            self.tick(TICK_MS);
        }

        // Force-abandon anything still outstanding at the phase deadline.
        let now = Instant::now();
        for session in &mut self.sessions {
            if session.alive() && session.state != SessState::Idle {
                session.finish_query(now, &mut self.latencies, false);
            }
            session.remaining = 0;
        }

        let wall = phase_start.elapsed().as_secs_f64();
        self.latencies.sort_by(f64::total_cmp);
        let stats = PhaseStats {
            offered_qps,
            achieved_qps: if wall > 0.0 {
                self.latencies.len() as f64 / wall
            } else {
                0.0
            },
            completed: self.latencies.len(),
            p50_ms: percentile(&self.latencies, 50.0),
            p95_ms: percentile(&self.latencies, 95.0),
            p99_ms: percentile(&self.latencies, 99.0),
        };
        self.all_latencies.append(&mut self.latencies);
        stats
    }

    /// Queues a `SubmitQuery` on session `i` (fresh or retry).
    fn submit(&mut self, i: usize, now: Instant, retry: bool) {
        let target = &self.targets[self.rng.gen_range(0..self.targets.len())];
        let issuer = self.rng.gen_range(0..self.nodes.max(1));
        let spec = QuerySpec {
            issuer,
            repr: Repr::Polynomial,
            traversal: Traversal::Bfs,
            cached: false,
            relation: target.relation_name().to_string(),
            location: target.location,
            values: target.values.clone(),
        };
        let session = &mut self.sessions[i];
        let request = session.next_request;
        session.next_request += 1;
        if !retry {
            session.started = now;
            session.deadline = now + self.config.query_timeout;
            session.backoff = POLL_BACKOFF_FLOOR;
        }
        session.send(&Frame::SubmitQuery { request, spec });
        session.state = SessState::SubmitPending;
    }
}

/// Renders the summary as the machine-readable `BENCH_serve.json` record.
///
/// The series reuse the [`BenchSeries`] statistics slots: `mean`, `max` and
/// `last` all carry the one measured value, `points` carries the relevant
/// sample count.  Each sweep phase contributes `latency p50/p99 @ N qps` and
/// `achieved @ N qps` series, which `check_bench --serve` gates for monotone
/// latency ordering.
pub fn bench_report(summary: &LoadgenSummary, shards: usize) -> BenchReport {
    let metric = |label: &str, value: f64, points: usize| BenchSeries {
        label: label.to_string(),
        mean: value,
        max: value,
        last: value,
        points,
    };
    let mut series = vec![
        metric("QPS", summary.qps, summary.completed),
        metric("latency p50 (ms)", summary.p50_ms, summary.completed),
        metric("latency p95 (ms)", summary.p95_ms, summary.completed),
        metric("latency p99 (ms)", summary.p99_ms, summary.completed),
        metric(
            "protocol errors",
            summary.protocol_errors as f64,
            summary.protocol_errors,
        ),
        metric("sessions", summary.sessions as f64, summary.sessions),
        metric("held sessions", summary.held as f64, summary.held),
        metric("timed out", summary.timed_out as f64, summary.timed_out),
        metric(
            "backpressure events",
            summary.backpressure_events as f64,
            summary.backpressure_events,
        ),
        metric(
            "cache maintained",
            summary.cache_maintained as f64,
            summary.cache_maintained as usize,
        ),
        metric(
            "compressed bytes saved",
            summary.compressed_bytes_saved as f64,
            summary.compressed_bytes_saved as usize,
        ),
    ];
    for phase in &summary.phases {
        if phase.offered_qps <= 0.0 {
            continue;
        }
        let qps = phase.offered_qps;
        series.push(metric(
            &format!("latency p50 @ {qps:.0} qps"),
            phase.p50_ms,
            phase.completed,
        ));
        series.push(metric(
            &format!("latency p99 @ {qps:.0} qps"),
            phase.p99_ms,
            phase.completed,
        ));
        series.push(metric(
            &format!("achieved @ {qps:.0} qps"),
            phase.achieved_qps,
            phase.completed,
        ));
    }
    BenchReport {
        figure: "serve".into(),
        title: "Service front-end: concurrent provenance queries under churn".into(),
        scale: "loadgen".into(),
        shards,
        wall_clock_seconds: summary.wall_seconds,
        y_label: "QPS / latency ms / counts".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_sanely() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&data, 50.0), 51.0);
        assert_eq!(percentile(&data, 99.0), 99.0);
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn bench_report_carries_the_gated_series() {
        let summary = LoadgenSummary {
            sessions: 64,
            held: 64,
            submitted: 256,
            completed: 250,
            timed_out: 6,
            protocol_errors: 0,
            backpressure_events: 3,
            wall_seconds: 2.0,
            qps: 125.0,
            p50_ms: 10.0,
            p95_ms: 60.0,
            p99_ms: 90.0,
            cache_maintained: 12,
            compressed_bytes_saved: 2048,
            phases: vec![
                PhaseStats {
                    offered_qps: 50.0,
                    achieved_qps: 49.0,
                    completed: 100,
                    p50_ms: 8.0,
                    p95_ms: 40.0,
                    p99_ms: 70.0,
                },
                PhaseStats {
                    offered_qps: 100.0,
                    achieved_qps: 95.0,
                    completed: 150,
                    p50_ms: 12.0,
                    p95_ms: 55.0,
                    p99_ms: 90.0,
                },
            ],
        };
        let report = bench_report(&summary, 1);
        assert_eq!(report.figure, "serve");
        assert_eq!(report.series("QPS").unwrap().mean, 125.0);
        assert_eq!(report.series("latency p99 (ms)").unwrap().mean, 90.0);
        assert_eq!(report.series("protocol errors").unwrap().mean, 0.0);
        assert_eq!(report.series("held sessions").unwrap().mean, 64.0);
        assert_eq!(report.series("cache maintained").unwrap().mean, 12.0);
        assert_eq!(
            report.series("compressed bytes saved").unwrap().mean,
            2048.0
        );
        assert_eq!(report.series("latency p99 @ 50 qps").unwrap().mean, 70.0);
        assert_eq!(report.series("achieved @ 100 qps").unwrap().mean, 95.0);
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series.len(), report.series.len());
    }
}
