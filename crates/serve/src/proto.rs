//! The length-prefixed wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! ┌────────────┬──────────┬─────────────────────────┐
//! │ length u32 │ type  u8 │ payload (length-1 bytes)│
//! │ big-endian │          │                         │
//! └────────────┴──────────┴─────────────────────────┘
//! ```
//!
//! `length` counts the type byte plus the payload and must be between 1 and
//! [`MAX_FRAME_LEN`].  Integers are big-endian; floats are IEEE-754 bits,
//! big-endian; strings are a `u16` byte length followed by UTF-8.
//!
//! Frame types (client → server requests carry a `request_id` echoed in the
//! response so a session can pipeline):
//!
//! | type | frame                         | direction | since |
//! |------|-------------------------------|-----------|-------|
//! | 0x01 | [`Frame::Hello`] (magic+vers) | C → S     | v1    |
//! | 0x02 | [`Frame::HelloAck`]           | S → C     | v1    |
//! | 0x03 | [`Frame::Bye`]                | C ↔ S     | v1    |
//! | 0x04 | [`Frame::HelloAckV2`]         | S → C     | v2    |
//! | 0x10 | [`Frame::SubmitQuery`]        | C → S     | v1    |
//! | 0x11 | [`Frame::SubmitAck`]          | S → C     | v1    |
//! | 0x12 | [`Frame::Poll`]               | C → S     | v1    |
//! | 0x13 | [`Frame::QueryStatus`]        | S → C     | v1    |
//! | 0x14 | [`Frame::QueryStatusV2`]      | S → C     | v2    |
//! | 0x15 | [`Frame::ResultChunk`]        | S → C     | v2    |
//! | 0x7F | [`Frame::Error`]              | S → C     | v1    |
//!
//! Every protocol violation is answered with a typed [`Frame::Error`]
//! ([`ErrorCode`]) on the same connection — the server never hangs up on a
//! malformed, oversized or over-limit request.
//!
//! # Version negotiation
//!
//! [`Frame::Hello`] carries the highest version the client speaks; the
//! session then runs at `min(client, PROTOCOL_VERSION)`.  A v1 session is
//! acknowledged with [`Frame::HelloAck`] and only ever sees v1 response
//! frames; a v2 session is acknowledged with [`Frame::HelloAckV2`] (which
//! also announces the negotiated version, the per-connection pipeline depth,
//! and the chunk payload size the server will use).  Versions below
//! [`MIN_PROTOCOL_VERSION`] are rejected with
//! [`ErrorCode::HandshakeRejected`].
//!
//! # Pipelining (v2)
//!
//! A client may keep up to `pipeline_depth` requests in flight on one
//! connection.  Responses are matched by the echoed `request` id and may
//! complete **out of order** — a fast query's status can arrive while an
//! earlier query's result is still streaming.
//!
//! # Result streaming (v2)
//!
//! [`MAX_FRAME_LEN`] bounds *frames*, not *results*.  When a v2 poll finds
//! a completed query, [`Frame::QueryStatusV2`] announces the rendered result
//! body's byte length in `result_total`; the body itself follows as
//! [`Frame::ResultChunk`] frames (each carrying at most [`MAX_CHUNK_DATA`]
//! bytes — the negotiated `chunk_bytes` in practice) that the client
//! reassembles by `request` id with [`ResultAssembler`].  Chunks for one
//! request arrive in offset order; chunks for *different* requests may
//! interleave.  A `result_total` of zero means no chunks follow.
//!
//! # Result compression (v2)
//!
//! A client that sets the codec flag in its [`Frame::Hello`] (a trailing
//! flags byte; pre-codec encodings simply omit it) offers the dictionary
//! byte codec of [`exspan_types::compress`].  The server accepts by echoing
//! the flag in [`Frame::HelloAckV2`]; from then on every streamed result
//! body travels as `compress_bytes` output and `result_total` counts the
//! *compressed* bytes.  [`Frame::QueryStatusV2`] additionally reports the
//! session's `cache_maintained` and `compressed_bytes_saved` counters as
//! optional trailing fields, so load generators can observe both
//! optimizations without a side channel.

use exspan_core::{Repr, TraversalOrder};
use exspan_types::{Symbol, Value};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Handshake magic: the first four payload bytes of [`Frame::Hello`].
pub const MAGIC: [u8; 4] = *b"XSPN";

/// Highest wire protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest wire protocol version still served.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `type byte + payload` of one frame (64 KiB).  Larger
/// frames are answered with [`ErrorCode::Oversized`] and skipped.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Encoded size of a [`Frame::ResultChunk`] minus its data bytes: type (1)
/// + request (8) + offset (8) + total (8) + data length prefix (4).
pub const CHUNK_HEADER_LEN: usize = 29;

/// Most data bytes one [`Frame::ResultChunk`] can carry without the frame
/// exceeding [`MAX_FRAME_LEN`].
pub const MAX_CHUNK_DATA: usize = MAX_FRAME_LEN - CHUNK_HEADER_LEN;

/// Maximum [`Value::List`] nesting depth accepted on the wire.
const MAX_LIST_DEPTH: u8 = 4;

/// Typed protocol error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The frame body could not be decoded.
    Malformed,
    /// The frame length exceeded [`MAX_FRAME_LEN`]; the body was skipped.
    Oversized,
    /// The handshake was rejected (bad magic, unsupported version, or a
    /// request sent before any successful [`Frame::Hello`]).
    HandshakeRejected,
    /// Admission control refused the request (session cap or in-flight
    /// query cap reached).  Back off and retry.
    Admission,
    /// The session's token bucket is empty.  Back off and retry.
    RateLimited,
    /// A [`Frame::Poll`] named a query id this deployment never issued.
    UnknownQuery,
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// The connection's bounded write queue overflowed — the client is
    /// reading too slowly for the responses it requested.  The server sends
    /// this and then closes the connection cleanly.
    Overloaded,
}

impl ErrorCode {
    /// The on-wire `u16` value.
    pub fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Oversized => 2,
            ErrorCode::HandshakeRejected => 3,
            ErrorCode::Admission => 4,
            ErrorCode::RateLimited => 5,
            ErrorCode::UnknownQuery => 6,
            ErrorCode::Shutdown => 7,
            ErrorCode::Overloaded => 8,
        }
    }

    /// Parses the on-wire `u16` value.
    pub fn from_wire(code: u16) -> Result<ErrorCode, WireError> {
        Ok(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Oversized,
            3 => ErrorCode::HandshakeRejected,
            4 => ErrorCode::Admission,
            5 => ErrorCode::RateLimited,
            6 => ErrorCode::UnknownQuery,
            7 => ErrorCode::Shutdown,
            8 => ErrorCode::Overloaded,
            other => return Err(WireError::new(format!("unknown error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::Oversized => "oversized frame",
            ErrorCode::HandshakeRejected => "handshake rejected",
            ErrorCode::Admission => "admission control refused",
            ErrorCode::RateLimited => "rate limited",
            ErrorCode::UnknownQuery => "unknown query id",
            ErrorCode::Shutdown => "server shutting down",
            ErrorCode::Overloaded => "write queue overflow (slow reader)",
        };
        f.write_str(name)
    }
}

/// A frame body failed to encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong, e.g. `"truncated payload: needed 8 bytes, had 3"`.
    pub reason: String,
}

impl WireError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        WireError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

/// Completion state carried by [`Frame::QueryStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryState {
    /// The query is still in flight — poll again after the clock advances.
    Pending,
    /// The result reached the issuer; `latency` and `summary` are valid.
    Complete,
}

/// A provenance query as submitted over the wire, mirroring the builder
/// parameters of `Deployment::query(..)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Node issuing the query.
    pub issuer: u32,
    /// Provenance representation.  [`Repr::TrustDomain`] (an explicit
    /// node→domain map) has no wire form and fails to encode; use
    /// [`Repr::ContiguousTrustDomains`] instead.
    pub repr: Repr,
    /// Traversal order.
    pub traversal: TraversalOrder,
    /// Whether the query participates in result caching (§6.1).
    pub cached: bool,
    /// Target relation name, e.g. `"bestPathCost"`.
    pub relation: String,
    /// Node at which the target tuple resides.
    pub location: u32,
    /// The target tuple's non-location attribute values.
    pub values: Vec<Value>,
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session handshake: magic plus protocol version.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Whether the client offers the dictionary result codec
        /// ([`exspan_types::compress`]).  Encoded as a trailing flags byte;
        /// pre-codec encodings omit it and decode as `false`.
        codec: bool,
    },
    /// Handshake acceptance with the deployment's shape and limits.
    HelloAck {
        /// Server-assigned session id.
        session: u64,
        /// Name of the NDlog program the deployment runs.
        program: String,
        /// Number of nodes in the topology.
        nodes: u32,
        /// Maximum queries in flight across all sessions.
        max_inflight: u32,
        /// Token-bucket refill rate (requests per second) of this session.
        rate: f64,
        /// Token-bucket burst capacity of this session.
        burst: u32,
    },
    /// Handshake acceptance for a v2+ session, superseding
    /// [`Frame::HelloAck`] with the negotiated version and streaming limits.
    HelloAckV2 {
        /// Server-assigned session id.
        session: u64,
        /// Name of the NDlog program the deployment runs.
        program: String,
        /// Number of nodes in the topology.
        nodes: u32,
        /// Maximum queries in flight across all sessions.
        max_inflight: u32,
        /// Token-bucket refill rate (requests per second) of this session.
        rate: f64,
        /// Token-bucket burst capacity of this session.
        burst: u32,
        /// Negotiated protocol version (`min(client, server)`).
        version: u16,
        /// Maximum requests this connection may keep in flight.
        pipeline_depth: u32,
        /// Data bytes per [`Frame::ResultChunk`] the server will send.
        chunk_bytes: u32,
        /// Whether the session's [`Frame::ResultChunk`] bodies travel
        /// dictionary-compressed (client offered and server accepted).
        /// Trailing flags byte; absent in pre-codec encodings (`false`).
        codec: bool,
    },
    /// Orderly goodbye (either direction; the server echoes it).
    Bye,
    /// Submit a provenance query.
    SubmitQuery {
        /// Client-chosen id echoed in the response.
        request: u64,
        /// The query.
        spec: QuerySpec,
    },
    /// The query was admitted; poll `query` for its outcome.
    SubmitAck {
        /// Echo of the submit's request id.
        request: u64,
        /// Server-assigned query id.
        query: u64,
    },
    /// Ask for the current state of a submitted query.
    Poll {
        /// Client-chosen id echoed in the response.
        request: u64,
        /// The query id from [`Frame::SubmitAck`].
        query: u64,
    },
    /// Current state of a query.
    QueryStatus {
        /// Echo of the poll's request id.
        request: u64,
        /// The polled query id.
        query: u64,
        /// Completion state.
        state: QueryState,
        /// Simulated seconds from issue to completion (0 while pending).
        latency: f64,
        /// Human-readable result summary (empty while pending).
        summary: String,
    },
    /// Current state of a query on a v2 session.  When `state` is
    /// [`QueryState::Complete`], `result_total` announces the byte length of
    /// the rendered result body that follows as [`Frame::ResultChunk`]
    /// frames (zero means the result is empty and no chunks follow).
    QueryStatusV2 {
        /// Echo of the poll's request id.
        request: u64,
        /// The polled query id.
        query: u64,
        /// Completion state.
        state: QueryState,
        /// Simulated seconds from issue to completion (0 while pending).
        latency: f64,
        /// Human-readable result summary (empty while pending).
        summary: String,
        /// Total bytes of the streamed result body (0 while pending).  On
        /// codec sessions this is the *compressed* length — exactly the
        /// bytes that follow as [`Frame::ResultChunk`] frames.
        result_total: u64,
        /// Cache entries this query's session maintained in place
        /// ([`exspan_core::CacheMaintenance::Incremental`]).  Optional
        /// trailing field; absent in pre-codec encodings (0).
        cache_maintained: u64,
        /// Bytes the dictionary codec saved on the session's query traffic.
        /// Optional trailing field; absent in pre-codec encodings (0).
        compressed_bytes_saved: u64,
    },
    /// One slice of a rendered query result, reassembled by `request` id.
    ResultChunk {
        /// The poll request whose [`Frame::QueryStatusV2`] announced this
        /// stream.
        request: u64,
        /// Byte offset of `bytes` within the full result body.
        offset: u64,
        /// Total byte length of the full result body.
        total: u64,
        /// This slice of the body (at most [`MAX_CHUNK_DATA`] bytes).
        bytes: Vec<u8>,
    },
    /// A typed protocol error.  The connection stays open.
    Error {
        /// What kind of violation occurred.
        code: ErrorCode,
        /// The offending request id (0 when not attributable).
        request: u64,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloAck { .. } => "HelloAck",
            Frame::HelloAckV2 { .. } => "HelloAckV2",
            Frame::Bye => "Bye",
            Frame::SubmitQuery { .. } => "SubmitQuery",
            Frame::SubmitAck { .. } => "SubmitAck",
            Frame::Poll { .. } => "Poll",
            Frame::QueryStatus { .. } => "QueryStatus",
            Frame::QueryStatusV2 { .. } => "QueryStatusV2",
            Frame::ResultChunk { .. } => "ResultChunk",
            Frame::Error { .. } => "Error",
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len())
        .map_err(|_| WireError::new(format!("string of {} bytes exceeds u16 length", s.len())))?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, value: &Value, depth: u8) -> Result<(), WireError> {
    match value {
        Value::Node(n) => {
            out.push(0);
            put_u32(out, *n);
        }
        Value::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
        Value::Str(s) => {
            out.push(2);
            put_str(out, s.as_str())?;
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
        Value::List(items) => {
            if depth >= MAX_LIST_DEPTH {
                return Err(WireError::new("list nesting exceeds wire depth limit"));
            }
            out.push(4);
            let len = u16::try_from(items.len())
                .map_err(|_| WireError::new("list of more than u16::MAX values"))?;
            put_u16(out, len);
            for item in items.iter() {
                put_value(out, item, depth + 1)?;
            }
        }
        Value::Digest(d) => {
            out.push(5);
            out.extend_from_slice(d);
        }
        Value::Payload(size) => {
            out.push(6);
            put_u32(out, *size);
        }
    }
    Ok(())
}

fn put_repr(out: &mut Vec<u8>, repr: &Repr) -> Result<(), WireError> {
    match repr {
        Repr::Polynomial => out.push(0),
        Repr::NodeSet => out.push(1),
        Repr::DerivationCount => out.push(2),
        Repr::Derivability => out.push(3),
        Repr::Bdd => out.push(4),
        Repr::ContiguousTrustDomains(size) => {
            out.push(5);
            put_u32(out, *size);
        }
        Repr::TrustDomain(_) => {
            return Err(WireError::new(
                "Repr::TrustDomain has no wire form; use ContiguousTrustDomains",
            ))
        }
    }
    Ok(())
}

fn put_traversal(out: &mut Vec<u8>, traversal: TraversalOrder) {
    match traversal {
        TraversalOrder::Bfs => out.push(0),
        TraversalOrder::Dfs => out.push(1),
        TraversalOrder::DfsThreshold(t) => {
            out.push(2);
            put_i64(out, t);
        }
        TraversalOrder::RandomMoonwalk { fanout, seed } => {
            out.push(3);
            put_u32(out, fanout as u32);
            put_u64(out, seed);
        }
    }
}

/// Encodes a frame as its full wire bytes (length prefix included).
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::with_capacity(32);
    match frame {
        Frame::Hello { version, codec } => {
            body.push(0x01);
            body.extend_from_slice(&MAGIC);
            put_u16(&mut body, *version);
            body.push(u8::from(*codec));
        }
        Frame::HelloAck {
            session,
            program,
            nodes,
            max_inflight,
            rate,
            burst,
        } => {
            body.push(0x02);
            put_u64(&mut body, *session);
            put_str(&mut body, program)?;
            put_u32(&mut body, *nodes);
            put_u32(&mut body, *max_inflight);
            put_f64(&mut body, *rate);
            put_u32(&mut body, *burst);
        }
        Frame::HelloAckV2 {
            session,
            program,
            nodes,
            max_inflight,
            rate,
            burst,
            version,
            pipeline_depth,
            chunk_bytes,
            codec,
        } => {
            body.push(0x04);
            put_u64(&mut body, *session);
            put_str(&mut body, program)?;
            put_u32(&mut body, *nodes);
            put_u32(&mut body, *max_inflight);
            put_f64(&mut body, *rate);
            put_u32(&mut body, *burst);
            put_u16(&mut body, *version);
            put_u32(&mut body, *pipeline_depth);
            put_u32(&mut body, *chunk_bytes);
            body.push(u8::from(*codec));
        }
        Frame::Bye => body.push(0x03),
        Frame::SubmitQuery { request, spec } => {
            body.push(0x10);
            put_u64(&mut body, *request);
            put_u32(&mut body, spec.issuer);
            put_repr(&mut body, &spec.repr)?;
            put_traversal(&mut body, spec.traversal);
            body.push(u8::from(spec.cached));
            put_str(&mut body, &spec.relation)?;
            put_u32(&mut body, spec.location);
            let count = u16::try_from(spec.values.len())
                .map_err(|_| WireError::new("tuple of more than u16::MAX values"))?;
            put_u16(&mut body, count);
            for value in &spec.values {
                put_value(&mut body, value, 0)?;
            }
        }
        Frame::SubmitAck { request, query } => {
            body.push(0x11);
            put_u64(&mut body, *request);
            put_u64(&mut body, *query);
        }
        Frame::Poll { request, query } => {
            body.push(0x12);
            put_u64(&mut body, *request);
            put_u64(&mut body, *query);
        }
        Frame::QueryStatus {
            request,
            query,
            state,
            latency,
            summary,
        } => {
            body.push(0x13);
            put_u64(&mut body, *request);
            put_u64(&mut body, *query);
            body.push(match state {
                QueryState::Pending => 0,
                QueryState::Complete => 1,
            });
            put_f64(&mut body, *latency);
            put_str(&mut body, summary)?;
        }
        Frame::QueryStatusV2 {
            request,
            query,
            state,
            latency,
            summary,
            result_total,
            cache_maintained,
            compressed_bytes_saved,
        } => {
            body.push(0x14);
            put_u64(&mut body, *request);
            put_u64(&mut body, *query);
            body.push(match state {
                QueryState::Pending => 0,
                QueryState::Complete => 1,
            });
            put_f64(&mut body, *latency);
            put_str(&mut body, summary)?;
            put_u64(&mut body, *result_total);
            put_u64(&mut body, *cache_maintained);
            put_u64(&mut body, *compressed_bytes_saved);
        }
        Frame::ResultChunk {
            request,
            offset,
            total,
            bytes,
        } => {
            body.push(0x15);
            put_u64(&mut body, *request);
            put_u64(&mut body, *offset);
            put_u64(&mut body, *total);
            let len = u32::try_from(bytes.len())
                .map_err(|_| WireError::new("chunk data exceeds u32 length"))?;
            put_u32(&mut body, len);
            body.extend_from_slice(bytes);
        }
        Frame::Error {
            code,
            request,
            message,
        } => {
            body.push(0x7F);
            put_u16(&mut body, code.to_wire());
            put_u64(&mut body, *request);
            put_str(&mut body, message)?;
        }
    }
    if body.len() > MAX_FRAME_LEN {
        return Err(WireError::new(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            body.len()
        )));
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(WireError::new(format!(
                "truncated payload: needed {n} bytes, had {available}"
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(i64::from_be_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("string is not valid UTF-8"))
    }

    fn value(&mut self, depth: u8) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Node(self.u32()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Str(Symbol::intern(&self.string()?))),
            3 => Ok(Value::Bool(self.u8()? != 0)),
            4 => {
                if depth >= MAX_LIST_DEPTH {
                    return Err(WireError::new("list nesting exceeds wire depth limit"));
                }
                let count = self.u16()? as usize;
                let mut items = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::List(Arc::new(items)))
            }
            5 => {
                let b = self.take(20)?;
                let mut digest = [0u8; 20];
                digest.copy_from_slice(b);
                Ok(Value::Digest(digest))
            }
            6 => Ok(Value::Payload(self.u32()?)),
            tag => Err(WireError::new(format!("unknown value tag {tag}"))),
        }
    }

    fn repr(&mut self) -> Result<Repr, WireError> {
        Ok(match self.u8()? {
            0 => Repr::Polynomial,
            1 => Repr::NodeSet,
            2 => Repr::DerivationCount,
            3 => Repr::Derivability,
            4 => Repr::Bdd,
            5 => Repr::ContiguousTrustDomains(self.u32()?),
            tag => return Err(WireError::new(format!("unknown repr tag {tag}"))),
        })
    }

    fn traversal(&mut self) -> Result<TraversalOrder, WireError> {
        Ok(match self.u8()? {
            0 => TraversalOrder::Bfs,
            1 => TraversalOrder::Dfs,
            2 => TraversalOrder::DfsThreshold(self.i64()?),
            3 => TraversalOrder::RandomMoonwalk {
                fanout: self.u32()? as usize,
                seed: self.u64()?,
            },
            tag => return Err(WireError::new(format!("unknown traversal tag {tag}"))),
        })
    }

    /// Bytes not yet consumed — used to decode optional trailing fields
    /// added by newer protocol revisions (absent in older encodings).
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::new(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Decodes one frame body (`type byte + payload`, no length prefix).
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let ty = r.u8()?;
    let frame = match ty {
        0x01 => {
            let magic = r.take(4)?;
            if magic != MAGIC {
                return Err(WireError::new("bad handshake magic"));
            }
            let version = r.u16()?;
            // Optional trailing flags byte (absent in pre-codec encodings).
            let codec = r.remaining() > 0 && r.u8()? != 0;
            Frame::Hello { version, codec }
        }
        0x02 => Frame::HelloAck {
            session: r.u64()?,
            program: r.string()?,
            nodes: r.u32()?,
            max_inflight: r.u32()?,
            rate: r.f64()?,
            burst: r.u32()?,
        },
        0x04 => {
            let session = r.u64()?;
            let program = r.string()?;
            let nodes = r.u32()?;
            let max_inflight = r.u32()?;
            let rate = r.f64()?;
            let burst = r.u32()?;
            let version = r.u16()?;
            let pipeline_depth = r.u32()?;
            let chunk_bytes = r.u32()?;
            let codec = r.remaining() > 0 && r.u8()? != 0;
            Frame::HelloAckV2 {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
                version,
                pipeline_depth,
                chunk_bytes,
                codec,
            }
        }
        0x03 => Frame::Bye,
        0x10 => {
            let request = r.u64()?;
            let issuer = r.u32()?;
            let repr = r.repr()?;
            let traversal = r.traversal()?;
            let cached = r.u8()? != 0;
            let relation = r.string()?;
            let location = r.u32()?;
            let count = r.u16()? as usize;
            let mut values = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                values.push(r.value(0)?);
            }
            Frame::SubmitQuery {
                request,
                spec: QuerySpec {
                    issuer,
                    repr,
                    traversal,
                    cached,
                    relation,
                    location,
                    values,
                },
            }
        }
        0x11 => Frame::SubmitAck {
            request: r.u64()?,
            query: r.u64()?,
        },
        0x12 => Frame::Poll {
            request: r.u64()?,
            query: r.u64()?,
        },
        0x13 => {
            let request = r.u64()?;
            let query = r.u64()?;
            let state = match r.u8()? {
                0 => QueryState::Pending,
                1 => QueryState::Complete,
                tag => return Err(WireError::new(format!("unknown query state {tag}"))),
            };
            Frame::QueryStatus {
                request,
                query,
                state,
                latency: r.f64()?,
                summary: r.string()?,
            }
        }
        0x14 => {
            let request = r.u64()?;
            let query = r.u64()?;
            let state = match r.u8()? {
                0 => QueryState::Pending,
                1 => QueryState::Complete,
                tag => return Err(WireError::new(format!("unknown query state {tag}"))),
            };
            let latency = r.f64()?;
            let summary = r.string()?;
            let result_total = r.u64()?;
            // Optional trailing session counters (absent pre-codec).
            let (cache_maintained, compressed_bytes_saved) = if r.remaining() > 0 {
                (r.u64()?, r.u64()?)
            } else {
                (0, 0)
            };
            Frame::QueryStatusV2 {
                request,
                query,
                state,
                latency,
                summary,
                result_total,
                cache_maintained,
                compressed_bytes_saved,
            }
        }
        0x15 => {
            let request = r.u64()?;
            let offset = r.u64()?;
            let total = r.u64()?;
            let len = r.u32()? as usize;
            Frame::ResultChunk {
                request,
                offset,
                total,
                bytes: r.take(len)?.to_vec(),
            }
        }
        0x7F => Frame::Error {
            code: ErrorCode::from_wire(r.u16()?)?,
            request: r.u64()?,
            message: r.string()?,
        },
        other => return Err(WireError::new(format!("unknown frame type 0x{other:02x}"))),
    };
    r.finish(frame.name())?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Framed stream I/O
// ---------------------------------------------------------------------------

/// Result of pulling one frame off a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame body (type byte + payload), within the size limit.
    Body(Vec<u8>),
    /// The frame declared more than [`MAX_FRAME_LEN`] bytes.  The body has
    /// already been read and discarded, so the stream stays in sync and the
    /// caller can answer with [`ErrorCode::Oversized`].
    Oversized {
        /// The declared body length.
        declared: usize,
    },
}

/// Reads one length-prefixed frame.  Returns `Ok(None)` on clean EOF at a
/// frame boundary.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<FrameRead>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len == 0 {
        // No type byte: surface as an empty (malformed) body.
        return Ok(Some(FrameRead::Body(Vec::new())));
    }
    if len > MAX_FRAME_LEN {
        // Drain the declared body in bounded chunks so the connection
        // survives and stays framed.
        let mut remaining = len as u64;
        let mut sink = io::sink();
        while remaining > 0 {
            let chunk = remaining.min(16 * 1024);
            let copied = io::copy(&mut stream.take(chunk), &mut sink)?;
            if copied == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside oversized frame body",
                ));
            }
            remaining -= copied;
        }
        return Ok(Some(FrameRead::Oversized { declared: len }));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(FrameRead::Body(body)))
}

/// Writes one frame to the stream (with length prefix) and flushes it.
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    stream.write_all(&bytes)?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Incremental framing (nonblocking I/O)
// ---------------------------------------------------------------------------

/// Incremental frame decoder for nonblocking sockets: [`feed`] it whatever
/// bytes a read returned, then drain complete frames with [`next_frame`].
///
/// Like [`read_frame`], oversized frames are swallowed without buffering
/// their bodies (the skip is tracked as a counter, so a hostile 4 GiB
/// declared length costs no memory) and surfaced as
/// [`FrameRead::Oversized`] once fully skipped, leaving the stream framed.
///
/// [`feed`]: FrameBuffer::feed
/// [`next_frame`]: FrameBuffer::next_frame
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
    /// Bytes of an oversized body still to discard, with its declared size.
    skipping: Option<(u64, usize)>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        if let Some((remaining, declared)) = self.skipping.take() {
            // Consume directly into the skip counter; anything past the
            // oversized body is buffered normally.
            let eat = (bytes.len() as u64).min(remaining);
            let rest = remaining - eat;
            self.buf.extend_from_slice(&bytes[eat as usize..]);
            self.skipping = Some((rest, declared));
            return;
        }
        self.buf.extend_from_slice(bytes);
        self.engage_skip();
    }

    /// If the first undrained frame declares an oversized body that is not
    /// yet fully buffered, converts the buffered prefix into the skip
    /// counter immediately, so the body never accumulates no matter how the
    /// caller interleaves [`feed`] and [`next_frame`] calls.
    ///
    /// [`feed`]: FrameBuffer::feed
    /// [`next_frame`]: FrameBuffer::next_frame
    fn engage_skip(&mut self) {
        if self.skipping.is_some() {
            // An Oversized event is still pending; don't clobber it.
            return;
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return;
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len <= MAX_FRAME_LEN || avail.len() >= 4 + len {
            // In-bounds, or already fully buffered: next() handles it.
            return;
        }
        let eat = avail.len() - 4;
        self.pos += 4 + eat;
        self.compact();
        self.skipping = Some(((len - eat) as u64, len));
    }

    /// Bytes currently buffered and not yet consumed by [`next_frame`].
    ///
    /// [`next_frame`]: FrameBuffer::next_frame
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 8 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pops the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Option<FrameRead> {
        if let Some((remaining, declared)) = self.skipping {
            // feed() already swallowed in-buffer bytes while skipping, so a
            // nonzero remainder means we are still waiting for more input.
            if remaining > 0 {
                return None;
            }
            self.skipping = None;
            return Some(FrameRead::Oversized { declared });
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            self.compact();
            return None;
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len == 0 {
            // No type byte: surface as an empty (malformed) body.
            self.pos += 4;
            self.compact();
            return Some(FrameRead::Body(Vec::new()));
        }
        if len > MAX_FRAME_LEN {
            let buffered = avail.len() - 4;
            let eat = buffered.min(len);
            self.pos += 4 + eat;
            self.compact();
            if eat == len {
                return Some(FrameRead::Oversized { declared: len });
            }
            self.skipping = Some(((len - eat) as u64, len));
            // The tail beyond pos is empty here (eat consumed everything);
            // future feed() calls keep discarding until the counter drains.
            return None;
        }
        if avail.len() < 4 + len {
            self.compact();
            return None;
        }
        let body = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        self.compact();
        Some(FrameRead::Body(body))
    }
}

// ---------------------------------------------------------------------------
// Result streaming
// ---------------------------------------------------------------------------

/// Server-side chunker: slices one rendered result body into
/// [`Frame::ResultChunk`] frames for `request`, pulled one at a time so the
/// reactor can pace the stream against the connection's write budget.
#[derive(Debug, Clone)]
pub struct ResultStream {
    request: u64,
    body: Arc<Vec<u8>>,
    offset: usize,
    chunk_bytes: usize,
}

impl ResultStream {
    /// A stream over `body` (shared, not copied) for `request`, emitting at
    /// most `chunk_bytes` data bytes per frame (clamped to
    /// [`MAX_CHUNK_DATA`]; zero is treated as the maximum).
    pub fn new(request: u64, body: Arc<Vec<u8>>, chunk_bytes: usize) -> ResultStream {
        let chunk_bytes = match chunk_bytes {
            0 => MAX_CHUNK_DATA,
            n => n.min(MAX_CHUNK_DATA),
        };
        ResultStream {
            request,
            body,
            offset: 0,
            chunk_bytes,
        }
    }

    /// The request id this stream answers.
    pub fn request(&self) -> u64 {
        self.request
    }

    /// Bytes not yet emitted.
    pub fn remaining(&self) -> usize {
        self.body.len() - self.offset
    }

    /// Whether every byte has been emitted (vacuously true for an empty
    /// body: an empty result sends no chunks at all).
    pub fn is_done(&self) -> bool {
        self.offset >= self.body.len()
    }

    /// The next chunk frame, or `None` when the stream is exhausted.
    pub fn next_chunk(&mut self) -> Option<Frame> {
        if self.is_done() {
            return None;
        }
        let end = (self.offset + self.chunk_bytes).min(self.body.len());
        let frame = Frame::ResultChunk {
            request: self.request,
            offset: self.offset as u64,
            total: self.body.len() as u64,
            bytes: self.body[self.offset..end].to_vec(),
        };
        self.offset = end;
        Some(frame)
    }
}

/// Client-side reassembler for one request's [`Frame::ResultChunk`] stream.
///
/// Chunks must arrive in offset order with a consistent `total` (the server
/// never reorders chunks *within* one request; only chunks of different
/// requests interleave).
#[derive(Debug)]
pub struct ResultAssembler {
    total: u64,
    buf: Vec<u8>,
}

impl ResultAssembler {
    /// An assembler expecting `total` bytes (from
    /// [`Frame::QueryStatusV2::result_total`]).
    pub fn new(total: u64) -> ResultAssembler {
        ResultAssembler {
            total,
            buf: Vec::new(),
        }
    }

    /// Whether every announced byte has arrived (immediately true when the
    /// announced total is zero).
    pub fn is_complete(&self) -> bool {
        self.buf.len() as u64 == self.total
    }

    /// Accepts one chunk; returns the full body once the last byte lands.
    pub fn accept(
        &mut self,
        offset: u64,
        total: u64,
        bytes: &[u8],
    ) -> Result<Option<Vec<u8>>, WireError> {
        if total != self.total {
            return Err(WireError::new(format!(
                "chunk declares total {total}, stream announced {}",
                self.total
            )));
        }
        if offset != self.buf.len() as u64 {
            return Err(WireError::new(format!(
                "chunk at offset {offset}, expected {}",
                self.buf.len()
            )));
        }
        if offset + bytes.len() as u64 > self.total {
            return Err(WireError::new(format!(
                "chunk overruns announced total {}",
                self.total
            )));
        }
        if bytes.is_empty() && !self.is_complete() {
            return Err(WireError::new("empty chunk in unfinished stream"));
        }
        self.buf.extend_from_slice(bytes);
        if self.is_complete() {
            Ok(Some(std::mem::take(&mut self.buf)))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame).expect("encodes");
        let (len, body) = bytes.split_at(4);
        assert_eq!(
            u32::from_be_bytes([len[0], len[1], len[2], len[3]]) as usize,
            body.len()
        );
        assert_eq!(decode_frame(body).expect("decodes"), frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            codec: false,
        });
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            codec: true,
        });
        roundtrip(Frame::HelloAck {
            session: 7,
            program: "mincost".into(),
            nodes: 100,
            max_inflight: 512,
            rate: 250.5,
            burst: 32,
        });
        roundtrip(Frame::Bye);
        roundtrip(Frame::SubmitQuery {
            request: 99,
            spec: QuerySpec {
                issuer: 3,
                repr: Repr::ContiguousTrustDomains(25),
                traversal: TraversalOrder::RandomMoonwalk { fanout: 2, seed: 9 },
                cached: true,
                relation: "bestPathCost".into(),
                location: 2,
                values: vec![
                    Value::Node(2),
                    Value::Int(5),
                    Value::Str(Symbol::intern("x")),
                    Value::Bool(true),
                    Value::list(vec![Value::Int(1), Value::Node(0)]),
                    Value::Digest([9; 20]),
                    Value::Payload(1500),
                ],
            },
        });
        roundtrip(Frame::SubmitAck {
            request: 99,
            query: 1,
        });
        roundtrip(Frame::Poll {
            request: 100,
            query: 1,
        });
        roundtrip(Frame::QueryStatus {
            request: 100,
            query: 1,
            state: QueryState::Complete,
            latency: 0.125,
            summary: "2 derivations".into(),
        });
        roundtrip(Frame::Error {
            code: ErrorCode::RateLimited,
            request: 101,
            message: "back off".into(),
        });
        roundtrip(Frame::HelloAckV2 {
            session: 7,
            program: "mincost".into(),
            nodes: 100,
            max_inflight: 512,
            rate: 250.5,
            burst: 32,
            version: 2,
            pipeline_depth: 16,
            chunk_bytes: MAX_CHUNK_DATA as u32,
            codec: true,
        });
        roundtrip(Frame::QueryStatusV2 {
            request: 100,
            query: 1,
            state: QueryState::Complete,
            latency: 0.125,
            summary: "8192 derivations".into(),
            result_total: 150_000,
            cache_maintained: 17,
            compressed_bytes_saved: 4096,
        });
        roundtrip(Frame::ResultChunk {
            request: 100,
            offset: 65_000,
            total: 150_000,
            bytes: vec![0xAB; 1000],
        });
        roundtrip(Frame::Error {
            code: ErrorCode::Overloaded,
            request: 0,
            message: "slow reader".into(),
        });
    }

    #[test]
    fn pre_codec_encodings_decode_with_defaults() {
        // A Hello from a pre-codec peer ends right after the version: no
        // flags byte.  It must decode as "codec not offered".
        let mut hello = vec![0x01];
        hello.extend_from_slice(&MAGIC);
        hello.extend_from_slice(&2u16.to_be_bytes());
        assert_eq!(
            decode_frame(&hello).expect("legacy Hello decodes"),
            Frame::Hello {
                version: 2,
                codec: false
            }
        );
        // Same for the optional trailing fields of HelloAckV2 and
        // QueryStatusV2: strip them off a fresh encoding and decode.
        let ack = Frame::HelloAckV2 {
            session: 1,
            program: "mincost".into(),
            nodes: 4,
            max_inflight: 8,
            rate: 1.0,
            burst: 2,
            version: 2,
            pipeline_depth: 4,
            chunk_bytes: 512,
            codec: true,
        };
        let body = encode_frame(&ack).unwrap()[4..].to_vec();
        let legacy = &body[..body.len() - 1];
        match decode_frame(legacy).expect("legacy HelloAckV2 decodes") {
            Frame::HelloAckV2 { codec, session, .. } => {
                assert!(!codec);
                assert_eq!(session, 1);
            }
            other => panic!("unexpected frame {}", other.name()),
        }
        let status = Frame::QueryStatusV2 {
            request: 9,
            query: 3,
            state: QueryState::Complete,
            latency: 0.5,
            summary: "done".into(),
            result_total: 10,
            cache_maintained: 5,
            compressed_bytes_saved: 6,
        };
        let body = encode_frame(&status).unwrap()[4..].to_vec();
        let legacy = &body[..body.len() - 16];
        match decode_frame(legacy).expect("legacy QueryStatusV2 decodes") {
            Frame::QueryStatusV2 {
                cache_maintained,
                compressed_bytes_saved,
                result_total,
                ..
            } => {
                assert_eq!(cache_maintained, 0);
                assert_eq!(compressed_bytes_saved, 0);
                assert_eq!(result_total, 10);
            }
            other => panic!("unexpected frame {}", other.name()),
        }
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let full = encode_frame(&Frame::SubmitAck {
            request: 1,
            query: 2,
        })
        .unwrap();
        let body = &full[4..];
        for cut in 1..body.len() {
            let err = decode_frame(&body[..cut]).expect_err("truncation must fail");
            assert!(err.reason.contains("truncated"), "{}", err.reason);
        }
        // Trailing garbage is rejected too.
        let mut padded = body.to_vec();
        padded.push(0);
        assert!(decode_frame(&padded)
            .expect_err("padding must fail")
            .reason
            .contains("trailing"));
    }

    #[test]
    fn bad_magic_and_unknown_tags_are_rejected() {
        let mut hello = encode_frame(&Frame::Hello {
            version: 1,
            codec: false,
        })
        .unwrap()[4..]
            .to_vec();
        hello[1] = b'Y';
        assert!(decode_frame(&hello).unwrap_err().reason.contains("magic"));
        assert!(decode_frame(&[0x55])
            .unwrap_err()
            .reason
            .contains("unknown frame type"));
        assert!(decode_frame(&[]).unwrap_err().reason.contains("truncated"));
    }

    #[test]
    fn trust_domain_map_has_no_wire_form() {
        let err = encode_frame(&Frame::SubmitQuery {
            request: 1,
            spec: QuerySpec {
                issuer: 0,
                repr: Repr::TrustDomain(std::collections::BTreeMap::new()),
                traversal: TraversalOrder::Bfs,
                cached: false,
                relation: "link".into(),
                location: 0,
                values: vec![],
            },
        })
        .unwrap_err();
        assert!(err.reason.contains("TrustDomain"));
    }

    #[test]
    fn deep_list_nesting_is_rejected() {
        let mut v = Value::Int(0);
        for _ in 0..6 {
            v = Value::list(vec![v]);
        }
        let err = encode_frame(&Frame::SubmitQuery {
            request: 1,
            spec: QuerySpec {
                issuer: 0,
                repr: Repr::Polynomial,
                traversal: TraversalOrder::Bfs,
                cached: false,
                relation: "link".into(),
                location: 0,
                values: vec![v],
            },
        })
        .unwrap_err();
        assert!(err.reason.contains("depth"));
    }

    #[test]
    fn stream_io_roundtrips_and_flags_oversized() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Bye).unwrap();
        // Hand-build an oversized frame followed by a valid one.
        let declared = MAX_FRAME_LEN + 1;
        buf.extend_from_slice(&(declared as u32).to_be_bytes());
        buf.extend(std::iter::repeat(0u8).take(declared));
        write_frame(
            &mut buf,
            &Frame::Hello {
                version: 1,
                codec: false,
            },
        )
        .unwrap();

        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor).unwrap().unwrap() {
            FrameRead::Body(body) => assert_eq!(decode_frame(&body).unwrap(), Frame::Bye),
            FrameRead::Oversized { .. } => panic!("first frame is fine"),
        }
        match read_frame(&mut cursor).unwrap().unwrap() {
            FrameRead::Oversized { declared: d } => assert_eq!(d, declared),
            FrameRead::Body(_) => panic!("second frame is oversized"),
        }
        // The stream re-synchronizes on the next frame.
        match read_frame(&mut cursor).unwrap().unwrap() {
            FrameRead::Body(body) => {
                assert_eq!(
                    decode_frame(&body).unwrap(),
                    Frame::Hello {
                        version: 1,
                        codec: false
                    }
                );
            }
            FrameRead::Oversized { .. } => panic!("third frame is fine"),
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Bye).unwrap();
        write_frame(
            &mut wire,
            &Frame::SubmitAck {
                request: 9,
                query: 3,
            },
        )
        .unwrap();

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for byte in wire {
            fb.feed(&[byte]);
            while let Some(FrameRead::Body(body)) = fb.next_frame() {
                got.push(decode_frame(&body).unwrap());
            }
        }
        assert_eq!(
            got,
            vec![
                Frame::Bye,
                Frame::SubmitAck {
                    request: 9,
                    query: 3
                }
            ]
        );
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_skips_oversized_without_buffering() {
        let declared = MAX_FRAME_LEN + 100;
        let mut wire = Vec::new();
        wire.extend_from_slice(&(declared as u32).to_be_bytes());
        wire.extend(std::iter::repeat(0u8).take(declared));
        write_frame(&mut wire, &Frame::Bye).unwrap();

        let mut fb = FrameBuffer::new();
        // Feed in uneven pieces so the skip spans several feeds.
        for piece in wire.chunks(7 * 1024 + 13) {
            fb.feed(piece);
            // The oversized body must never accumulate in memory.
            assert!(fb.buffered() <= 16 * 1024, "buffered {}", fb.buffered());
        }
        match fb.next_frame().unwrap() {
            FrameRead::Oversized { declared: d } => assert_eq!(d, declared),
            FrameRead::Body(_) => panic!("first frame is oversized"),
        }
        match fb.next_frame().unwrap() {
            FrameRead::Body(body) => assert_eq!(decode_frame(&body).unwrap(), Frame::Bye),
            FrameRead::Oversized { .. } => panic!("stream must re-sync"),
        }
        assert!(fb.next_frame().is_none());
    }

    #[test]
    fn chunk_stream_reassembles_including_exact_cap_boundary() {
        // A body that is an exact multiple of the chunk size must not emit
        // a trailing empty chunk, and one exactly at the cap is one chunk.
        for (len, chunk) in [
            (MAX_CHUNK_DATA, MAX_CHUNK_DATA),     // exactly at cap: 1 chunk
            (2 * MAX_CHUNK_DATA, MAX_CHUNK_DATA), // exact multiple: 2 chunks
            (MAX_CHUNK_DATA + 1, MAX_CHUNK_DATA), // one byte over: 2 chunks
            (10, 3),                              // small odd split
        ] {
            let body: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut stream = ResultStream::new(42, Arc::new(body.clone()), chunk);
            let mut assembler = ResultAssembler::new(len as u64);
            let mut frames = 0usize;
            let mut out = None;
            while let Some(frame) = stream.next_chunk() {
                frames += 1;
                let Frame::ResultChunk {
                    request,
                    offset,
                    total,
                    bytes,
                } = encode_then_decode(frame)
                else {
                    panic!("chunk frames survive the wire");
                };
                assert_eq!(request, 42);
                assert!(!bytes.is_empty());
                if let Some(full) = assembler.accept(offset, total, &bytes).unwrap() {
                    out = Some(full);
                }
            }
            assert_eq!(frames, len.div_ceil(chunk));
            assert_eq!(out.expect("stream completes"), body);
            assert!(stream.is_done());
            assert_eq!(stream.remaining(), 0);
        }
        // Empty body: no chunks, assembler complete from the start.
        let mut empty = ResultStream::new(1, Arc::new(Vec::new()), 64);
        assert!(empty.is_done());
        assert!(empty.next_chunk().is_none());
        assert!(ResultAssembler::new(0).is_complete());
    }

    fn encode_then_decode(frame: Frame) -> Frame {
        let bytes = encode_frame(&frame).unwrap();
        decode_frame(&bytes[4..]).unwrap()
    }

    #[test]
    fn assembler_rejects_gaps_reorders_and_overruns() {
        let mut a = ResultAssembler::new(10);
        assert!(a.accept(0, 9, b"abc").is_err(), "inconsistent total");
        assert!(a.accept(5, 10, b"abc").is_err(), "gap");
        assert!(a.accept(0, 10, b"").is_err(), "empty chunk mid-stream");
        assert_eq!(a.accept(0, 10, b"abcde").unwrap(), None);
        assert!(a.accept(0, 10, b"abcde").is_err(), "replayed offset");
        assert!(a.accept(5, 10, b"fghijk").is_err(), "overrun");
        assert_eq!(
            a.accept(5, 10, b"fghij").unwrap().as_deref(),
            Some(&b"abcdefghij"[..])
        );
    }
}
