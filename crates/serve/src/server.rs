//! The wall-clock server: a [`Deployment`] behind TCP.
//!
//! Threading model (tokio-free):
//!
//! * **Listener thread** — accepts connections up to
//!   [`ServeConfig::max_sessions`]; over-cap connections receive a typed
//!   [`ErrorCode::Admission`] frame and are closed without a handshake.
//! * **Connection threads** — one per session: framing, handshake, the
//!   per-session [`TokenBucket`], and translation of wire frames into
//!   commands forwarded to the worker over an [`std::sync::mpsc`] channel.
//! * **Worker thread** — owns the [`Deployment`] and a [`WallClock`]
//!   executor.  Each tick drains pending commands (submits, polls), then
//!   pumps the deployment to the simulated time the wall clock has paid for
//!   (`Deployment::run_with`).  Pre-scheduled churn events fire as the
//!   clock reaches them, so maintenance and queries share the network
//!   exactly as in the figures — just paced by real time.

use crate::limiter::TokenBucket;
use crate::proto::{
    self, ErrorCode, Frame, FrameRead, QuerySpec, QueryState, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use exspan_core::{Annotation, Deployment, QueryError, QueryHandle};
use exspan_runtime::WallClock;
use exspan_types::Tuple;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub addr: String,
    /// Maximum concurrently connected sessions (the bounded accept queue);
    /// further connections are refused with [`ErrorCode::Admission`].
    pub max_sessions: usize,
    /// Maximum provenance queries in flight across all sessions; further
    /// submits are refused with [`ErrorCode::Admission`].
    pub max_inflight: usize,
    /// Per-session token-bucket refill rate (requests per second).
    pub rate: f64,
    /// Per-session token-bucket burst capacity.
    pub burst: u32,
    /// Simulated seconds the deployment advances per wall-clock second.
    pub clock_rate: f64,
    /// Worker sleep quantum while waiting for wall time to accrue.
    pub quantum: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 256,
            max_inflight: 4096,
            rate: 500.0,
            burst: 64,
            clock_rate: 50.0,
            quantum: WallClock::DEFAULT_QUANTUM,
        }
    }
}

/// What the worker tells a connection thread about a submit.
enum SubmitVerdict {
    Admitted { query: u64 },
    Refused { code: ErrorCode, message: String },
}

/// What the worker tells a connection thread about a poll.
enum PollVerdict {
    Status {
        state: QueryState,
        latency: f64,
        summary: String,
    },
    Unknown,
}

enum Command {
    Submit {
        spec: QuerySpec,
        reply: mpsc::Sender<SubmitVerdict>,
    },
    Poll {
        query: u64,
        reply: mpsc::Sender<PollVerdict>,
    },
}

/// A running server.  Dropping the handle leaks the threads; call
/// [`ServerHandle::shutdown`] to stop them and take the deployment back.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: JoinHandle<()>,
    worker: JoinHandle<Deployment>,
    sessions: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The bound listen address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Stops accepting, disconnects the worker, joins both threads and
    /// returns the deployment in its final state.
    pub fn shutdown(self) -> Deployment {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.listener.join();
        self.worker.join().expect("worker thread panicked")
    }
}

/// The service front-end: owns nothing after [`Server::start`], which moves
/// the deployment onto the worker thread.
pub struct Server;

impl Server {
    /// Boots the server: binds the listen socket, spawns the worker and the
    /// listener, and returns immediately.
    ///
    /// Churn or other future work should be scheduled on the deployment
    /// (e.g. [`Deployment::schedule_churn_event`]) *before* starting: the
    /// wall clock pays simulated time out gradually, so events scheduled
    /// ahead fire while the server is live.
    pub fn start(deployment: Deployment, config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<Command>();
        let greeting = Arc::new(SessionGreeting {
            program: deployment.program_name().to_string(),
            nodes: deployment.topology().num_nodes() as u32,
        });

        let worker = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("exspan-serve-worker".into())
                .spawn(move || worker_loop(deployment, &config, &rx, &stop))?
        };

        let listener_thread = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            let sessions = Arc::clone(&sessions);
            thread::Builder::new()
                .name("exspan-serve-accept".into())
                .spawn(move || accept_loop(&listener, &config, &tx, &stop, &sessions, &greeting))?
        };

        Ok(ServerHandle {
            addr,
            stop,
            listener: listener_thread,
            worker,
            sessions,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn summarize(annotation: Option<&Annotation>) -> String {
    match annotation {
        None => "no result".into(),
        Some(Annotation::Expr(e)) => format!("{} derivations", e.num_derivations()),
        Some(Annotation::Nodes(n)) => format!("{} nodes", n.len()),
        Some(Annotation::Domains(d)) => format!("{} trust domains", d.len()),
        Some(Annotation::Count(c)) => format!("count {c}"),
        Some(Annotation::Bool(b)) => format!("derivable: {b}"),
        Some(Annotation::Bdd(_)) => "condensed (BDD)".into(),
    }
}

fn worker_loop(
    mut deployment: Deployment,
    config: &ServeConfig,
    rx: &mpsc::Receiver<Command>,
    stop: &AtomicBool,
) -> Deployment {
    let mut wall =
        WallClock::starting_at(deployment.now(), config.clock_rate).with_quantum(config.quantum);
    let mut handles: HashMap<u64, QueryHandle> = HashMap::new();

    let handle_command =
        |deployment: &mut Deployment, handles: &mut HashMap<u64, QueryHandle>, cmd: Command| {
            match cmd {
                Command::Submit { spec, reply } => {
                    let verdict = admit(deployment, handles, spec, config.max_inflight);
                    let _ = reply.send(verdict);
                }
                Command::Poll { query, reply } => {
                    let verdict = match handles.get(&query) {
                        None => PollVerdict::Unknown,
                        Some(&handle) => match deployment.completed_outcome(handle) {
                            Ok(outcome) => PollVerdict::Status {
                                state: QueryState::Complete,
                                latency: outcome.completed_at.unwrap_or(outcome.issued_at)
                                    - outcome.issued_at,
                                summary: summarize(outcome.annotation.as_ref()),
                            },
                            Err(QueryError::NotComplete { .. }) => PollVerdict::Status {
                                state: QueryState::Pending,
                                latency: 0.0,
                                summary: String::new(),
                            },
                            Err(_) => PollVerdict::Unknown,
                        },
                    };
                    let _ = reply.send(verdict);
                }
            }
        };

    loop {
        while let Ok(cmd) = rx.try_recv() {
            handle_command(&mut deployment, &mut handles, cmd);
        }
        let target = wall.accrued();
        deployment.run_with(&mut wall, target);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Block for at most one quantum so the simulated clock keeps pace
        // even when no commands arrive.
        match rx.recv_timeout(config.quantum) {
            Ok(cmd) => handle_command(&mut deployment, &mut handles, cmd),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    deployment
}

fn admit(
    deployment: &mut Deployment,
    handles: &mut HashMap<u64, QueryHandle>,
    spec: QuerySpec,
    max_inflight: usize,
) -> SubmitVerdict {
    let inflight = deployment.incomplete_queries();
    if inflight >= max_inflight {
        return SubmitVerdict::Refused {
            code: ErrorCode::Admission,
            message: format!("{inflight} queries in flight (limit {max_inflight})"),
        };
    }
    let nodes = deployment.topology().num_nodes();
    if spec.issuer as usize >= nodes || spec.location as usize >= nodes {
        return SubmitVerdict::Refused {
            code: ErrorCode::Malformed,
            message: format!(
                "issuer n{} / location n{} outside the {nodes}-node topology",
                spec.issuer, spec.location
            ),
        };
    }
    let target = Tuple::new(spec.relation.as_str(), spec.location, spec.values);
    let handle = deployment
        .query(&target)
        .issuer(spec.issuer)
        .repr(spec.repr)
        .traversal(spec.traversal)
        .cached(spec.cached)
        .submit();
    let query = handle.index() as u64;
    handles.insert(query, handle);
    SubmitVerdict::Admitted { query }
}

// ---------------------------------------------------------------------------
// Listener and connection threads
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    config: &ServeConfig,
    tx: &mpsc::Sender<Command>,
    stop: &AtomicBool,
    sessions: &Arc<AtomicUsize>,
    greeting: &Arc<SessionGreeting>,
) {
    let next_session = AtomicU64::new(1);
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Bounded accept: refuse the session with a typed error frame.
        if sessions.load(Ordering::SeqCst) >= config.max_sessions {
            let mut stream = stream;
            let _ = proto::write_frame(
                &mut stream,
                &Frame::Error {
                    code: ErrorCode::Admission,
                    request: 0,
                    message: format!("session limit {} reached", config.max_sessions),
                },
            );
            continue;
        }
        sessions.fetch_add(1, Ordering::SeqCst);
        let session = next_session.fetch_add(1, Ordering::Relaxed);
        let tx = tx.clone();
        let config = config.clone();
        let conn_sessions = Arc::clone(sessions);
        let greeting = Arc::clone(greeting);
        // Connection threads are not joined: they exit when their peer hangs
        // up (or at process exit), and a post-shutdown submit/poll is
        // answered with a typed `Shutdown` error once the worker is gone.
        let spawned = thread::Builder::new()
            .name(format!("exspan-serve-conn-{session}"))
            .spawn(move || {
                let _ = serve_connection(stream, session, &config, &tx, &greeting);
                conn_sessions.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Deployment metadata echoed in every `HelloAck` — captured before the
/// deployment moves onto the worker thread.
struct SessionGreeting {
    program: String,
    nodes: u32,
}

fn serve_connection(
    stream: TcpStream,
    session: u64,
    config: &ServeConfig,
    tx: &mpsc::Sender<Command>,
    greeting: &SessionGreeting,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut bucket = TokenBucket::new(config.rate, config.burst);
    let mut greeted = false;

    while let Some(read) = proto::read_frame(&mut reader)? {
        let body = match read {
            FrameRead::Body(body) => body,
            FrameRead::Oversized { declared } => {
                proto::write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::Oversized,
                        request: 0,
                        message: format!("frame of {declared} bytes exceeds {MAX_FRAME_LEN}"),
                    },
                )?;
                continue;
            }
        };
        let frame = match proto::decode_frame(&body) {
            Ok(frame) => frame,
            Err(e) => {
                proto::write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::Malformed,
                        request: 0,
                        message: e.reason,
                    },
                )?;
                continue;
            }
        };
        match frame {
            Frame::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    proto::write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::HandshakeRejected,
                            request: 0,
                            message: format!(
                                "protocol version {version} unsupported (server speaks \
                                 {PROTOCOL_VERSION})"
                            ),
                        },
                    )?;
                    continue; // the client may retry with a supported version
                }
                greeted = true;
                proto::write_frame(
                    &mut writer,
                    &Frame::HelloAck {
                        session,
                        program: greeting.program.clone(),
                        nodes: greeting.nodes,
                        max_inflight: config.max_inflight as u32,
                        rate: config.rate,
                        burst: config.burst,
                    },
                )?;
            }
            Frame::Bye => {
                proto::write_frame(&mut writer, &Frame::Bye)?;
                break;
            }
            Frame::SubmitQuery { request, spec } => {
                if !greeted {
                    reject_ungreeted(&mut writer, request)?;
                    continue;
                }
                if !bucket.try_take() {
                    proto::write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::RateLimited,
                            request,
                            message: format!(
                                "session bucket empty (rate {}/s, burst {})",
                                config.rate, config.burst
                            ),
                        },
                    )?;
                    continue;
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let sent = tx.send(Command::Submit {
                    spec,
                    reply: reply_tx,
                });
                let verdict = sent.ok().and_then(|()| reply_rx.recv().ok());
                match verdict {
                    Some(SubmitVerdict::Admitted { query }) => {
                        proto::write_frame(&mut writer, &Frame::SubmitAck { request, query })?;
                    }
                    Some(SubmitVerdict::Refused { code, message }) => {
                        proto::write_frame(
                            &mut writer,
                            &Frame::Error {
                                code,
                                request,
                                message,
                            },
                        )?;
                    }
                    None => {
                        proto::write_frame(
                            &mut writer,
                            &Frame::Error {
                                code: ErrorCode::Shutdown,
                                request,
                                message: "worker is gone".into(),
                            },
                        )?;
                        break;
                    }
                }
            }
            Frame::Poll { request, query } => {
                if !greeted {
                    reject_ungreeted(&mut writer, request)?;
                    continue;
                }
                if !bucket.try_take() {
                    proto::write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::RateLimited,
                            request,
                            message: format!(
                                "session bucket empty (rate {}/s, burst {})",
                                config.rate, config.burst
                            ),
                        },
                    )?;
                    continue;
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let sent = tx.send(Command::Poll {
                    query,
                    reply: reply_tx,
                });
                let verdict = sent.ok().and_then(|()| reply_rx.recv().ok());
                match verdict {
                    Some(PollVerdict::Status {
                        state,
                        latency,
                        summary,
                    }) => {
                        proto::write_frame(
                            &mut writer,
                            &Frame::QueryStatus {
                                request,
                                query,
                                state,
                                latency,
                                summary,
                            },
                        )?;
                    }
                    Some(PollVerdict::Unknown) => {
                        proto::write_frame(
                            &mut writer,
                            &Frame::Error {
                                code: ErrorCode::UnknownQuery,
                                request,
                                message: format!("no query #{query} in this deployment"),
                            },
                        )?;
                    }
                    None => {
                        proto::write_frame(
                            &mut writer,
                            &Frame::Error {
                                code: ErrorCode::Shutdown,
                                request,
                                message: "worker is gone".into(),
                            },
                        )?;
                        break;
                    }
                }
            }
            // Server-to-client frames arriving at the server are protocol
            // violations, answered in kind (connection stays open).
            other @ (Frame::HelloAck { .. }
            | Frame::SubmitAck { .. }
            | Frame::QueryStatus { .. }
            | Frame::Error { .. }) => {
                proto::write_frame(
                    &mut writer,
                    &Frame::Error {
                        code: ErrorCode::Malformed,
                        request: 0,
                        message: format!("{} frames are server-to-client only", other.name()),
                    },
                )?;
            }
        }
    }
    Ok(())
}

fn reject_ungreeted(writer: &mut impl Write, request: u64) -> io::Result<()> {
    proto::write_frame(
        writer,
        &Frame::Error {
            code: ErrorCode::HandshakeRejected,
            request,
            message: "no Hello received on this session yet".into(),
        },
    )
}
