//! The wall-clock server: a [`Deployment`] behind TCP.
//!
//! Threading model (tokio-free, two threads total regardless of session
//! count):
//!
//! * **Reactor thread** — a single `poll(2)` loop over the nonblocking
//!   listener and every nonblocking connection.  Each connection is a small
//!   state machine: an incremental [`FrameBuffer`] on the read side, a
//!   bounded write queue plus pending [`ResultStream`]s on the write side,
//!   the per-session [`TokenBucket`], and the negotiated protocol version.
//!   The reactor performs the handshake, rate limiting, pipeline-depth
//!   accounting and result chunking itself; only submits and polls cross to
//!   the worker (tagged with a connection id so responses find their way
//!   back and may complete out of order).
//! * **Worker thread** — owns the [`Deployment`] and a [`WallClock`]
//!   executor, exactly as before the reactor rewrite.  Each tick drains
//!   pending commands (submits, polls), then pumps the deployment to the
//!   simulated time the wall clock has paid for (`Deployment::run_with`).
//!   Completed v2 polls also carry the rendered result body (cached per
//!   query, shared by `Arc`), which the reactor streams back in
//!   [`Frame::ResultChunk`] frames.  The worker wakes the reactor through a
//!   loopback byte after posting replies.
//!
//! # Backpressure
//!
//! Every connection has a byte budget ([`ServeConfig::write_queue_bytes`])
//! covering both queued encoded frames and the committed-but-unsent
//! remainder of result streams.  A response that would exceed the budget —
//! i.e. a reader too slow for the results it requested — is answered with a
//! typed [`ErrorCode::Overloaded`] error, after which the connection is
//! flushed and closed.  The server never blocks on, nor buffers unboundedly
//! for, a slow reader.
//!
//! Result chunks are paced pull-style: a stream's next chunk is encoded only
//! when the write queue has room, and multiple pending streams on one
//! connection are drained round-robin — so a small response submitted after
//! a huge one genuinely completes first (out-of-order completion, v2
//! pipelining).

use crate::limiter::TokenBucket;
use crate::proto::{
    self, ErrorCode, Frame, FrameBuffer, FrameRead, QuerySpec, QueryState, ResultStream,
    CHUNK_HEADER_LEN, MAX_CHUNK_DATA, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use exspan_core::{Annotation, Deployment, QueryError, QueryHandle};
use exspan_runtime::WallClock;
use exspan_types::Tuple;
use pollshim::{PollFd, POLLIN, POLLOUT};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Reactor poll timeout: bounds shutdown latency when no fd turns ready.
const POLL_TIMEOUT_MS: i32 = 25;

/// Low-water mark for refilling a connection's write queue from its pending
/// result streams: chunks are pulled while fewer bytes than this are queued.
const REFILL_BYTES: usize = 128 * 1024;

/// Upper bound on bytes written to one connection per reactor tick.  A
/// single long result stream therefore cannot monopolize the loop: other
/// connections get served between its slices, and responses committed on
/// the *same* connection while a stream drains go out ahead of the stream's
/// tail — which is what makes pipelined completion genuinely out-of-order.
const FLUSH_QUANTUM: usize = 128 * 1024;

/// Tuning knobs of a [`Server`], built fluently:
///
/// ```no_run
/// use exspan_serve::ServeConfig;
/// let config = ServeConfig::default()
///     .addr("127.0.0.1:0")
///     .max_sessions(10_000)
///     .rate_limit(500.0, 64)
///     .pipeline_depth(32);
/// ```
///
/// Migration from the PR 7 field-struct form:
///
/// | old public field | builder method |
/// |------------------|----------------|
/// | `addr`           | [`ServeConfig::addr`] |
/// | `max_sessions`   | [`ServeConfig::max_sessions`] |
/// | `max_inflight`   | [`ServeConfig::max_inflight`] |
/// | `rate`, `burst`  | [`ServeConfig::rate_limit`] |
/// | `clock_rate`     | [`ServeConfig::clock_rate`] |
/// | `quantum`        | [`ServeConfig::quantum`] |
/// | — (new in v2)    | [`ServeConfig::pipeline_depth`] |
/// | — (new in v2)    | [`ServeConfig::write_queue_bytes`] |
/// | — (new in v2)    | [`ServeConfig::chunk_bytes`] |
/// | — (CLI-only before) | [`ServeConfig::data_dir`] |
#[derive(Debug, Clone)]
pub struct ServeConfig {
    addr: String,
    max_sessions: usize,
    max_inflight: usize,
    rate: f64,
    burst: u32,
    clock_rate: f64,
    quantum: Duration,
    pipeline_depth: u32,
    write_queue_bytes: usize,
    chunk_bytes: usize,
    data_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 256,
            max_inflight: 4096,
            rate: 500.0,
            burst: 64,
            clock_rate: 50.0,
            quantum: WallClock::DEFAULT_QUANTUM,
            pipeline_depth: 32,
            write_queue_bytes: 1024 * 1024,
            chunk_bytes: MAX_CHUNK_DATA,
            data_dir: None,
        }
    }
}

impl ServeConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Maximum concurrently connected sessions; further connections are
    /// refused with [`ErrorCode::Admission`].
    pub fn max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Maximum provenance queries in flight across all sessions; further
    /// submits are refused with [`ErrorCode::Admission`].
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Per-session token bucket: `rate` requests per second refill, `burst`
    /// capacity.
    pub fn rate_limit(mut self, rate: f64, burst: u32) -> Self {
        self.rate = rate;
        self.burst = burst;
        self
    }

    /// Simulated seconds the deployment advances per wall-clock second.
    pub fn clock_rate(mut self, clock_rate: f64) -> Self {
        self.clock_rate = clock_rate;
        self
    }

    /// Worker sleep quantum while waiting for wall time to accrue.
    pub fn quantum(mut self, quantum: Duration) -> Self {
        self.quantum = quantum;
        self
    }

    /// Requests one connection may keep in flight before further requests
    /// are refused with [`ErrorCode::Admission`] (v2 pipelining).
    pub fn pipeline_depth(mut self, pipeline_depth: u32) -> Self {
        self.pipeline_depth = pipeline_depth.max(1);
        self
    }

    /// Per-connection write budget in bytes, covering queued frames plus
    /// committed-but-unsent result stream remainders.  A response that would
    /// exceed it is answered with [`ErrorCode::Overloaded`] and the
    /// connection is closed after flushing.
    pub fn write_queue_bytes(mut self, write_queue_bytes: usize) -> Self {
        self.write_queue_bytes = write_queue_bytes;
        self
    }

    /// Data bytes per [`Frame::ResultChunk`] (clamped to
    /// [`MAX_CHUNK_DATA`]).  Lowering this mainly serves tests that want
    /// many chunks from small results.
    pub fn chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes.clamp(1, MAX_CHUNK_DATA);
        self
    }

    /// Directory the deployment's persistent store lives in.  When set,
    /// [`ServerHandle::shutdown`] checkpoints the deployment so the next
    /// boot recovers from the snapshot alone.  (Build the deployment with
    /// the same directory via `Exspan::builder().data_dir(..)`.)
    pub fn data_dir(mut self, data_dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(data_dir.into());
        self
    }
}

/// What the worker tells the reactor about a submit.
enum SubmitVerdict {
    Admitted { query: u64 },
    Refused { code: ErrorCode, message: String },
}

/// What the worker tells the reactor about a poll.
enum PollVerdict {
    Status {
        state: QueryState,
        latency: f64,
        summary: String,
        /// Rendered result body (v2 polls of completed queries only) —
        /// dictionary-compressed when the connection negotiated the codec.
        result: Option<Arc<Vec<u8>>>,
        /// Cache entries the query's session maintained in place.
        cache_maintained: u64,
        /// Bytes the codec saved on the session's query traffic.
        compressed_bytes_saved: u64,
    },
    Unknown,
}

/// Reactor → worker, tagged with the originating connection.
enum Command {
    Submit {
        conn: usize,
        request: u64,
        spec: QuerySpec,
    },
    Poll {
        conn: usize,
        request: u64,
        query: u64,
        want_result: bool,
        /// Render the result body through the dictionary codec (the
        /// connection offered and the server accepted it at handshake).
        want_codec: bool,
    },
}

/// Worker → reactor.
enum Reply {
    Submit {
        conn: usize,
        request: u64,
        verdict: SubmitVerdict,
    },
    Poll {
        conn: usize,
        request: u64,
        query: u64,
        verdict: PollVerdict,
    },
}

/// A running server.  Dropping the handle leaks the threads; call
/// [`ServerHandle::shutdown`] to stop them and take the deployment back.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor: JoinHandle<()>,
    worker: JoinHandle<Deployment>,
    sessions: Arc<AtomicUsize>,
    data_dir: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound listen address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every connection, joins both threads and
    /// returns the deployment in its final state — checkpointed first when
    /// [`ServeConfig::data_dir`] was set.
    pub fn shutdown(self) -> Deployment {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the poll loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.reactor.join();
        let mut deployment = self.worker.join().expect("worker thread panicked");
        if self.data_dir.is_some() {
            deployment.checkpoint();
        }
        deployment
    }
}

/// The service front-end: owns nothing after [`Server::bind`], which moves
/// the deployment onto the worker thread.
pub struct Server;

impl Server {
    /// Boots the server: binds the listen socket, spawns the worker and the
    /// reactor, and returns immediately.
    ///
    /// Churn or other future work should be scheduled on the deployment
    /// (e.g. [`Deployment::schedule_churn_event`]) *before* binding: the
    /// wall clock pays simulated time out gradually, so events scheduled
    /// ahead fire while the server is live.
    pub fn bind(deployment: Deployment, config: ServeConfig) -> io::Result<ServerHandle> {
        // Best-effort: a 10k-session cap is useless if the process is stuck
        // at the default 1024-fd soft limit.  Failure is fine — the accept
        // path refuses over-cap connections gracefully either way.
        let _ = pollshim::raise_nofile_limit(config.max_sessions as u64 + 64);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Loopback wake pair: the worker writes a byte after posting
        // replies, turning the reactor's poll ready.
        let wake_listener = TcpListener::bind("127.0.0.1:0")?;
        let wake_tx = TcpStream::connect(wake_listener.local_addr()?)?;
        let (wake_rx, _) = wake_listener.accept()?;
        wake_rx.set_nonblocking(true)?;
        drop(wake_listener);

        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let greeting = SessionGreeting {
            program: deployment.program_name().to_string(),
            nodes: deployment.topology().num_nodes() as u32,
        };
        let data_dir = config.data_dir.clone();

        let worker = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("exspan-serve-worker".into())
                .spawn(move || {
                    worker_loop(deployment, &config, &cmd_rx, &reply_tx, wake_tx, &stop)
                })?
        };

        let reactor = {
            let stop = Arc::clone(&stop);
            let sessions = Arc::clone(&sessions);
            thread::Builder::new()
                .name("exspan-serve-reactor".into())
                .spawn(move || {
                    Reactor {
                        config,
                        greeting,
                        cmds: cmd_tx,
                        conns: HashMap::new(),
                        next_conn: 0,
                        next_session: 1,
                        sessions,
                    }
                    .run(&listener, &wake_rx, &reply_rx, &stop);
                })?
        };

        Ok(ServerHandle {
            addr,
            stop,
            reactor,
            worker,
            sessions,
            data_dir,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn summarize(annotation: Option<&Annotation>) -> String {
    match annotation {
        None => "no result".into(),
        Some(Annotation::Expr(e)) => format!("{} derivations", e.num_derivations()),
        Some(Annotation::Nodes(n)) => format!("{} nodes", n.len()),
        Some(Annotation::Domains(d)) => format!("{} trust domains", d.len()),
        Some(Annotation::Count(c)) => format!("count {c}"),
        Some(Annotation::Bool(b)) => format!("derivable: {b}"),
        Some(Annotation::Bdd(_)) => "condensed (BDD)".into(),
    }
}

/// Renders a completed query's full result body for the v2 chunk stream.
fn render_result(annotation: Option<&Annotation>) -> Vec<u8> {
    match annotation {
        None => Vec::new(),
        Some(Annotation::Expr(e)) => e.to_string().into_bytes(),
        Some(Annotation::Nodes(nodes)) => {
            let ids: Vec<String> = nodes.iter().map(|n| format!("n{n}")).collect();
            format!("{{{}}}", ids.join(", ")).into_bytes()
        }
        Some(Annotation::Domains(domains)) => {
            let ids: Vec<String> = domains.iter().map(|d| format!("d{d}")).collect();
            format!("{{{}}}", ids.join(", ")).into_bytes()
        }
        Some(Annotation::Count(c)) => c.to_string().into_bytes(),
        Some(Annotation::Bool(b)) => b.to_string().into_bytes(),
        Some(Annotation::Bdd(_)) => b"condensed (BDD)".to_vec(),
    }
}

fn worker_loop(
    mut deployment: Deployment,
    config: &ServeConfig,
    rx: &mpsc::Receiver<Command>,
    replies: &mpsc::Sender<Reply>,
    mut wake: TcpStream,
    stop: &AtomicBool,
) -> Deployment {
    let mut wall =
        WallClock::starting_at(deployment.now(), config.clock_rate).with_quantum(config.quantum);
    let mut handles: HashMap<u64, QueryHandle> = HashMap::new();
    // Rendered result bodies, cached so repeated polls of one completed
    // query re-use the same `Arc`ed bytes.  Codec connections get the
    // dictionary-compressed rendering, cached separately: one deployment
    // serves pre-codec and codec sessions side by side.
    let mut rendered: HashMap<u64, Arc<Vec<u8>>> = HashMap::new();
    let mut rendered_compressed: HashMap<u64, Arc<Vec<u8>>> = HashMap::new();

    let handle_command = |deployment: &mut Deployment,
                          handles: &mut HashMap<u64, QueryHandle>,
                          rendered: &mut HashMap<u64, Arc<Vec<u8>>>,
                          rendered_compressed: &mut HashMap<u64, Arc<Vec<u8>>>,
                          cmd: Command| {
        match cmd {
            Command::Submit {
                conn,
                request,
                spec,
            } => {
                let verdict = admit(deployment, handles, spec, config.max_inflight);
                let _ = replies.send(Reply::Submit {
                    conn,
                    request,
                    verdict,
                });
            }
            Command::Poll {
                conn,
                request,
                query,
                want_result,
                want_codec,
            } => {
                let verdict = match handles.get(&query) {
                    None => PollVerdict::Unknown,
                    Some(&handle) => match deployment.completed_outcome(handle) {
                        Ok(outcome) => {
                            let result = want_result.then(|| {
                                let flat = Arc::clone(rendered.entry(query).or_insert_with(|| {
                                    Arc::new(render_result(outcome.annotation.as_ref()))
                                }));
                                if want_codec {
                                    Arc::clone(rendered_compressed.entry(query).or_insert_with(
                                        || Arc::new(exspan_types::compress::compress_bytes(&flat)),
                                    ))
                                } else {
                                    flat
                                }
                            });
                            let stats = deployment.session(handle).stats().clone();
                            PollVerdict::Status {
                                state: QueryState::Complete,
                                latency: outcome.completed_at.unwrap_or(outcome.issued_at)
                                    - outcome.issued_at,
                                summary: summarize(outcome.annotation.as_ref()),
                                result,
                                cache_maintained: stats.cache_maintained,
                                compressed_bytes_saved: stats.compressed_bytes_saved,
                            }
                        }
                        Err(QueryError::NotComplete { .. }) => PollVerdict::Status {
                            state: QueryState::Pending,
                            latency: 0.0,
                            summary: String::new(),
                            result: None,
                            cache_maintained: 0,
                            compressed_bytes_saved: 0,
                        },
                        Err(_) => PollVerdict::Unknown,
                    },
                };
                let _ = replies.send(Reply::Poll {
                    conn,
                    request,
                    query,
                    verdict,
                });
            }
        }
    };

    loop {
        let mut replied = false;
        while let Ok(cmd) = rx.try_recv() {
            handle_command(
                &mut deployment,
                &mut handles,
                &mut rendered,
                &mut rendered_compressed,
                cmd,
            );
            replied = true;
        }
        if replied {
            let _ = wake.write(&[1]);
        }
        let target = wall.accrued();
        deployment.run_with(&mut wall, target);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Block for at most one quantum so the simulated clock keeps pace
        // even when no commands arrive.  On wakeup, drain whatever else is
        // already queued before writing the wake byte: commands the reactor
        // forwarded in one tick (e.g. a pipelined batch from one client)
        // then commit their replies together, ahead of the first flush.
        match rx.recv_timeout(config.quantum) {
            Ok(cmd) => {
                handle_command(
                    &mut deployment,
                    &mut handles,
                    &mut rendered,
                    &mut rendered_compressed,
                    cmd,
                );
                while let Ok(cmd) = rx.try_recv() {
                    handle_command(
                        &mut deployment,
                        &mut handles,
                        &mut rendered,
                        &mut rendered_compressed,
                        cmd,
                    );
                }
                let _ = wake.write(&[1]);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    deployment
}

fn admit(
    deployment: &mut Deployment,
    handles: &mut HashMap<u64, QueryHandle>,
    spec: QuerySpec,
    max_inflight: usize,
) -> SubmitVerdict {
    let inflight = deployment.incomplete_queries();
    if inflight >= max_inflight {
        return SubmitVerdict::Refused {
            code: ErrorCode::Admission,
            message: format!("{inflight} queries in flight (limit {max_inflight})"),
        };
    }
    let nodes = deployment.topology().num_nodes();
    if spec.issuer as usize >= nodes || spec.location as usize >= nodes {
        return SubmitVerdict::Refused {
            code: ErrorCode::Malformed,
            message: format!(
                "issuer n{} / location n{} outside the {nodes}-node topology",
                spec.issuer, spec.location
            ),
        };
    }
    let target = Tuple::new(spec.relation.as_str(), spec.location, spec.values);
    let handle = deployment
        .query(&target)
        .issuer(spec.issuer)
        .repr(spec.repr)
        .traversal(spec.traversal)
        .cached(spec.cached)
        .submit();
    let query = handle.index() as u64;
    handles.insert(query, handle);
    SubmitVerdict::Admitted { query }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// Deployment metadata echoed in every handshake ack — captured before the
/// deployment moves onto the worker thread.
struct SessionGreeting {
    program: String,
    nodes: u32,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Encoded frames awaiting write; `out_head` bytes of the front frame
    /// are already on the wire.
    out: VecDeque<Vec<u8>>,
    out_head: usize,
    /// Total encoded bytes in `out` (fully counted until a frame completes).
    queued_bytes: usize,
    /// Pending result streams, drained round-robin one chunk at a time.
    streams: VecDeque<ResultStream>,
    /// Committed-but-unsent stream bytes (data + per-chunk framing).
    stream_bytes: usize,
    bucket: TokenBucket,
    session: u64,
    /// Negotiated protocol version; `None` until a successful `Hello`.
    version: Option<u16>,
    /// Whether this session's result bodies travel dictionary-compressed
    /// (offered in `Hello`, accepted on v2+ sessions).
    codec: bool,
    /// Requests currently at the worker (pipeline-depth accounting).
    inflight: u32,
    /// Close once the write queue fully flushes (after `Bye` or a fatal
    /// error frame); reads are ignored from then on.
    draining: bool,
}

impl Conn {
    fn new(stream: TcpStream, session: u64, config: &ServeConfig) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::new(),
            out: VecDeque::new(),
            out_head: 0,
            queued_bytes: 0,
            streams: VecDeque::new(),
            stream_bytes: 0,
            bucket: TokenBucket::new(config.rate, config.burst),
            session,
            version: None,
            codec: false,
            inflight: 0,
            draining: false,
        }
    }

    /// Encoded wire cost of streaming `remaining` more body bytes.
    fn stream_cost(remaining: usize, chunk_bytes: usize) -> usize {
        remaining + remaining.div_ceil(chunk_bytes) * (CHUNK_HEADER_LEN + 4)
    }

    /// Queues an encoded response frame without a budget check (used for
    /// error frames, which are small and must go out).
    fn enqueue(&mut self, frame: &Frame) {
        let bytes = proto::encode_frame(frame).expect("server response frames always encode");
        self.queued_bytes += bytes.len();
        self.out.push_back(bytes);
    }

    /// Switches the connection to overload drain: pending streams are
    /// abandoned, a typed `Overloaded` error is queued, and the connection
    /// closes once flushed.
    fn overload(&mut self, budget: usize) {
        self.streams.clear();
        self.stream_bytes = 0;
        self.enqueue(&Frame::Error {
            code: ErrorCode::Overloaded,
            request: 0,
            message: format!("write queue over its {budget}-byte budget (slow reader)"),
        });
        self.draining = true;
    }

    /// Commits an obligatory response: the status/ack frame plus an optional
    /// result body to stream.  Over-budget commits become `Overloaded`.
    fn respond(&mut self, frame: &Frame, body: Option<(u64, Arc<Vec<u8>>)>, config: &ServeConfig) {
        let bytes = proto::encode_frame(frame).expect("server response frames always encode");
        let body_cost = body
            .as_ref()
            .map_or(0, |(_, b)| Self::stream_cost(b.len(), config.chunk_bytes));
        if self.queued_bytes + self.stream_bytes + bytes.len() + body_cost
            > config.write_queue_bytes
        {
            self.overload(config.write_queue_bytes);
            return;
        }
        self.queued_bytes += bytes.len();
        self.out.push_back(bytes);
        if let Some((request, body)) = body {
            if !body.is_empty() {
                self.streams
                    .push_back(ResultStream::new(request, body, config.chunk_bytes));
                self.stream_bytes += body_cost;
            }
        }
    }

    /// Pulls chunks from pending streams (round-robin) while the write
    /// queue is under the refill mark.
    fn refill_from_streams(&mut self) {
        while !self.streams.is_empty() && self.queued_bytes < REFILL_BYTES {
            let mut stream = self.streams.pop_front().expect("checked non-empty");
            if let Some(chunk) = stream.next_chunk() {
                let bytes =
                    proto::encode_frame(&chunk).expect("server response frames always encode");
                self.stream_bytes = self.stream_bytes.saturating_sub(bytes.len());
                self.queued_bytes += bytes.len();
                self.out.push_back(bytes);
            }
            if !stream.is_done() {
                self.streams.push_back(stream);
            }
        }
        if self.streams.is_empty() {
            self.stream_bytes = 0;
        }
    }

    /// Writes as much queued output as the socket accepts, up to
    /// [`FLUSH_QUANTUM`] bytes per call.  Returns `true` when the
    /// connection is finished (drained or broken).
    fn flush(&mut self) -> bool {
        let mut written = 0usize;
        loop {
            if written >= FLUSH_QUANTUM {
                break;
            }
            if self.out.is_empty() {
                self.refill_from_streams();
                if self.out.is_empty() {
                    break;
                }
            }
            let front = self.out.front().expect("checked non-empty");
            match self.stream.write(&front[self.out_head..]) {
                Ok(0) => return true,
                Ok(n) => {
                    written += n;
                    self.out_head += n;
                    if self.out_head == front.len() {
                        self.queued_bytes -= front.len();
                        self.out.pop_front();
                        self.out_head = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
        self.draining && self.out.is_empty() && self.streams.is_empty()
    }

    /// Whether the poll set should watch this connection for writability.
    fn wants_write(&self) -> bool {
        !self.out.is_empty() || !self.streams.is_empty()
    }
}

struct Reactor {
    config: ServeConfig,
    greeting: SessionGreeting,
    cmds: mpsc::Sender<Command>,
    conns: HashMap<usize, Conn>,
    next_conn: usize,
    next_session: u64,
    sessions: Arc<AtomicUsize>,
}

impl Reactor {
    fn run(
        mut self,
        listener: &TcpListener,
        wake_rx: &TcpStream,
        replies: &mpsc::Receiver<Reply>,
        stop: &AtomicBool,
    ) {
        let mut scratch = vec![0u8; 16 * 1024];
        let mut fds: Vec<PollFd> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut finished: Vec<usize> = Vec::new();

        while !stop.load(Ordering::SeqCst) {
            fds.clear();
            order.clear();
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
            fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !conn.draining {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                order.push(id);
            }
            if pollshim::poll(&mut fds, POLL_TIMEOUT_MS).is_err() {
                break;
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }

            // Worker replies (drain the wake bytes, then the channel — the
            // channel is drained unconditionally so a missed byte is
            // harmless).
            if fds[1].readable() {
                drain_wake(wake_rx, &mut scratch);
            }
            while let Ok(reply) = replies.try_recv() {
                self.route_reply(reply);
            }

            if fds[0].readable() {
                self.accept_new(listener, stop);
            }

            // Connection reads (frame processing may queue output).
            finished.clear();
            for (i, &id) in order.iter().enumerate() {
                if fds[i + 2].readable() {
                    let done = self.read_conn(id, &mut scratch);
                    if done {
                        finished.push(id);
                    }
                }
            }
            for id in finished.drain(..) {
                self.drop_conn(id);
            }

            // Flush every connection with pending output — whether the
            // readiness came from POLLOUT or the output was queued this
            // iteration (fresh sockets are almost always writable).
            finished.clear();
            for (&id, conn) in &mut self.conns {
                if conn.wants_write() && conn.flush() {
                    finished.push(id);
                }
            }
            for id in finished.drain(..) {
                self.drop_conn(id);
            }
        }
    }

    fn drop_conn(&mut self, id: usize) {
        if self.conns.remove(&id).is_some() {
            self.sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn accept_new(&mut self, listener: &TcpListener, stop: &AtomicBool) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    // Bounded accept: refuse with a typed error frame.  The
                    // accepted socket is still blocking and its send buffer
                    // empty, so this small write cannot stall.
                    if self.conns.len() >= self.config.max_sessions {
                        let mut stream = stream;
                        let _ = proto::write_frame(
                            &mut stream,
                            &Frame::Error {
                                code: ErrorCode::Admission,
                                request: 0,
                                message: format!(
                                    "session limit {} reached",
                                    self.config.max_sessions
                                ),
                            },
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    let session = self.next_session;
                    self.next_session += 1;
                    self.conns
                        .insert(id, Conn::new(stream, session, &self.config));
                    self.sessions.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Reads everything the socket has, feeding the frame buffer and
    /// handling complete frames.  Returns `true` when the connection died.
    fn read_conn(&mut self, id: usize, scratch: &mut [u8]) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            match conn.stream.read(scratch) {
                Ok(0) => return true,
                Ok(n) => {
                    let fed = &scratch[..n];
                    conn.frames.feed(fed);
                    while let Some(read) = self.conns.get_mut(&id).and_then(|c| {
                        if c.draining {
                            None
                        } else {
                            c.frames.next_frame()
                        }
                    }) {
                        self.handle_frame(id, read);
                    }
                    if self.conns.get(&id).map_or(true, |c| c.draining) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    fn handle_frame(&mut self, id: usize, read: FrameRead) {
        let config = &self.config;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let body = match read {
            FrameRead::Body(body) => body,
            FrameRead::Oversized { declared } => {
                conn.respond(
                    &Frame::Error {
                        code: ErrorCode::Oversized,
                        request: 0,
                        message: format!("frame of {declared} bytes exceeds {MAX_FRAME_LEN}"),
                    },
                    None,
                    config,
                );
                return;
            }
        };
        let frame = match proto::decode_frame(&body) {
            Ok(frame) => frame,
            Err(e) => {
                conn.respond(
                    &Frame::Error {
                        code: ErrorCode::Malformed,
                        request: 0,
                        message: e.reason,
                    },
                    None,
                    config,
                );
                return;
            }
        };
        match frame {
            Frame::Hello { version, codec } => {
                if version < MIN_PROTOCOL_VERSION {
                    conn.respond(
                        &Frame::Error {
                            code: ErrorCode::HandshakeRejected,
                            request: 0,
                            message: format!(
                                "protocol version {version} unsupported (server speaks \
                                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                            ),
                        },
                        None,
                        config,
                    );
                    return; // the client may retry with a supported version
                }
                let negotiated = version.min(PROTOCOL_VERSION);
                conn.version = Some(negotiated);
                // The dictionary codec rides on the v2 chunk stream; accept
                // the offer only when the session actually streams results.
                conn.codec = codec && negotiated >= 2;
                let ack = if negotiated >= 2 {
                    Frame::HelloAckV2 {
                        session: conn.session,
                        program: self.greeting.program.clone(),
                        nodes: self.greeting.nodes,
                        max_inflight: config.max_inflight as u32,
                        rate: config.rate,
                        burst: config.burst,
                        version: negotiated,
                        pipeline_depth: config.pipeline_depth,
                        chunk_bytes: config.chunk_bytes as u32,
                        codec: conn.codec,
                    }
                } else {
                    Frame::HelloAck {
                        session: conn.session,
                        program: self.greeting.program.clone(),
                        nodes: self.greeting.nodes,
                        max_inflight: config.max_inflight as u32,
                        rate: config.rate,
                        burst: config.burst,
                    }
                };
                conn.respond(&ack, None, config);
            }
            Frame::Bye => {
                conn.enqueue(&Frame::Bye);
                conn.draining = true;
            }
            Frame::SubmitQuery { request, spec } => {
                if Self::gate_request(conn, request, config) {
                    let sent = self.cmds.send(Command::Submit {
                        conn: id,
                        request,
                        spec,
                    });
                    Self::track_sent(conn, request, sent.is_ok(), config);
                }
            }
            Frame::Poll { request, query } => {
                if Self::gate_request(conn, request, config) {
                    let want_result = conn.version.unwrap_or(1) >= 2;
                    let sent = self.cmds.send(Command::Poll {
                        conn: id,
                        request,
                        query,
                        want_result,
                        want_codec: conn.codec,
                    });
                    Self::track_sent(conn, request, sent.is_ok(), config);
                }
            }
            // Server-to-client frames arriving at the server are protocol
            // violations, answered in kind (connection stays open).
            other @ (Frame::HelloAck { .. }
            | Frame::HelloAckV2 { .. }
            | Frame::SubmitAck { .. }
            | Frame::QueryStatus { .. }
            | Frame::QueryStatusV2 { .. }
            | Frame::ResultChunk { .. }
            | Frame::Error { .. }) => {
                conn.respond(
                    &Frame::Error {
                        code: ErrorCode::Malformed,
                        request: 0,
                        message: format!("{} frames are server-to-client only", other.name()),
                    },
                    None,
                    config,
                );
            }
        }
    }

    /// Handshake, rate-limit and pipeline-depth gate shared by submits and
    /// polls.  `false` means a typed error was already queued.
    fn gate_request(conn: &mut Conn, request: u64, config: &ServeConfig) -> bool {
        if conn.version.is_none() {
            conn.respond(
                &Frame::Error {
                    code: ErrorCode::HandshakeRejected,
                    request,
                    message: "no Hello received on this session yet".into(),
                },
                None,
                config,
            );
            return false;
        }
        if !conn.bucket.try_take() {
            conn.respond(
                &Frame::Error {
                    code: ErrorCode::RateLimited,
                    request,
                    message: format!(
                        "session bucket empty (rate {}/s, burst {})",
                        config.rate, config.burst
                    ),
                },
                None,
                config,
            );
            return false;
        }
        if conn.inflight >= config.pipeline_depth {
            conn.respond(
                &Frame::Error {
                    code: ErrorCode::Admission,
                    request,
                    message: format!(
                        "pipeline depth {} reached on this connection",
                        config.pipeline_depth
                    ),
                },
                None,
                config,
            );
            return false;
        }
        true
    }

    /// Accounts for a command handed to the worker (or reports the worker
    /// gone, if the channel is closed).
    fn track_sent(conn: &mut Conn, request: u64, sent: bool, config: &ServeConfig) {
        if sent {
            conn.inflight += 1;
        } else {
            conn.respond(
                &Frame::Error {
                    code: ErrorCode::Shutdown,
                    request,
                    message: "worker is gone".into(),
                },
                None,
                config,
            );
            conn.draining = true;
        }
    }

    fn route_reply(&mut self, reply: Reply) {
        let config = &self.config;
        match reply {
            Reply::Submit {
                conn,
                request,
                verdict,
            } => {
                let Some(conn) = self.conns.get_mut(&conn) else {
                    return; // connection died while the submit was in flight
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                match verdict {
                    SubmitVerdict::Admitted { query } => {
                        conn.respond(&Frame::SubmitAck { request, query }, None, config);
                    }
                    SubmitVerdict::Refused { code, message } => {
                        conn.respond(
                            &Frame::Error {
                                code,
                                request,
                                message,
                            },
                            None,
                            config,
                        );
                    }
                }
            }
            Reply::Poll {
                conn,
                request,
                query,
                verdict,
            } => {
                let Some(conn) = self.conns.get_mut(&conn) else {
                    return;
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                match verdict {
                    PollVerdict::Status {
                        state,
                        latency,
                        summary,
                        result,
                        cache_maintained,
                        compressed_bytes_saved,
                    } => {
                        if conn.version.unwrap_or(1) >= 2 {
                            let body = result.filter(|b| !b.is_empty());
                            let result_total = body.as_ref().map_or(0, |b| b.len() as u64);
                            conn.respond(
                                &Frame::QueryStatusV2 {
                                    request,
                                    query,
                                    state,
                                    latency,
                                    summary,
                                    result_total,
                                    cache_maintained,
                                    compressed_bytes_saved,
                                },
                                body.map(|b| (request, b)),
                                config,
                            );
                        } else {
                            conn.respond(
                                &Frame::QueryStatus {
                                    request,
                                    query,
                                    state,
                                    latency,
                                    summary,
                                },
                                None,
                                config,
                            );
                        }
                    }
                    PollVerdict::Unknown => {
                        conn.respond(
                            &Frame::Error {
                                code: ErrorCode::UnknownQuery,
                                request,
                                message: format!("no query #{query} in this deployment"),
                            },
                            None,
                            config,
                        );
                    }
                }
            }
        }
    }
}

fn drain_wake(mut wake_rx: &TcpStream, scratch: &mut [u8]) {
    loop {
        match wake_rx.read(scratch) {
            Ok(0) => return, // worker gone; replies channel will drain dry
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return, // includes WouldBlock: fully drained
        }
    }
}
