//! # exspan-serve
//!
//! A wall-clock service front-end for ExSPAN deployments: the same
//! `Deployment` that regenerates the paper's figures, served over TCP to
//! concurrent client sessions while the deployment keeps churning.
//!
//! ## Architecture: a poll(2) reactor plus one worker thread
//!
//! The server is two threads, no async runtime:
//!
//! * the **reactor** owns the listen socket and every connection.  All
//!   sockets are nonblocking; one `poll(2)` loop (via the vendored
//!   `pollshim`) drives per-connection state machines — an incremental
//!   [`proto::FrameBuffer`] on the read side, a bounded write queue plus
//!   pending [`proto::ResultStream`]s on the write side.  A connection that
//!   requests more response bytes than [`ServeConfig::write_queue_bytes`]
//!   while not reading them is answered with a typed `Overloaded` error and
//!   closed — slow readers cannot pin server memory.
//! * the **worker** owns the [`exspan_core::Deployment`] under a
//!   [`exspan_runtime::WallClock`] and executes submits/polls it receives
//!   over a channel, waking the reactor through a loopback socket pair.
//!
//! ## Executor migration: `SimClock` vs `WallClock`
//!
//! Historically every driver raced the simulation "as fast as possible" to a
//! requested horizon.  That policy is now the
//! [`exspan_runtime::Executor`] trait with two implementations:
//!
//! * [`exspan_runtime::SimClock`] — the deterministic clock.
//!   `Deployment::run_until(t)` is literally `run_with(&mut SimClock, t)`:
//!   one pump straight to the target, byte-identical to the pre-trait code.
//!   Figures, tests and baselines all ride this path.
//! * [`exspan_runtime::WallClock`] — simulated seconds accrue at a
//!   configurable rate per wall-clock second.  `run_with(&mut wall, t)`
//!   pumps only as far as real time has paid for, sleeping a bounded
//!   quantum between pumps (no tokio, just `thread::sleep`).  This is what
//!   lets a server interleave query admission with gradual protocol churn.
//!
//! An executor only chooses the *horizon* of each pump, never the order of
//! events below it — determinism below the horizon is untouched.
//!
//! ## Wire protocol v2
//!
//! Length-prefixed frames over TCP (see [`proto`] for the byte-level
//! layout):
//!
//! ```text
//! length: u32 BE │ type: u8 │ payload
//! ```
//!
//! A session is `Hello → HelloAck`/`HelloAckV2` (the server acks
//! `min(client, server)` — v1 clients keep working unchanged), then any
//! number of **pipelined** requests: up to [`ServeConfig::pipeline_depth`]
//! `SubmitQuery`/`Poll` frames may be in flight at once, each answered by a
//! response carrying its request id — possibly **out of order**, in
//! whatever order the worker finishes them.  Completed v2 polls whose
//! rendered result exceeds one frame are streamed as `ResultChunk` frames
//! ([`proto::MAX_FRAME_LEN`] bounds *frames*, not results) and reassembled
//! transparently by [`ServeClient`].  A session ends with `Bye ↔ Bye`.
//!
//! Every violation — malformed body, oversized frame, pre-handshake
//! request, admission-control overflow, rate-limit exhaustion, pipeline
//! overrun, write-queue overflow, unknown query id — is answered with a
//! typed [`proto::ErrorCode`]; only `Overloaded` closes the connection.
//!
//! Server-side limits are consolidated in the [`ServeConfig`] builder: a
//! bounded accept queue (`max_sessions`), a global in-flight query cap
//! (`max_inflight`), a per-session token bucket ([`limiter::TokenBucket`]),
//! a per-connection pipeline depth and write-queue byte bound.
//!
//! ## Migrating from the pub-field `ServeConfig` / `Server::start`
//!
//! `ServeConfig` used to be a plain struct whose fields were set with a
//! struct literal and handed to `Server::start`.  It is now a builder (so
//! knobs can grow without breaking struct literals), entry is
//! [`Server::bind`], and both it and [`ServeClient`] are re-exported from
//! the `exspan` facade:
//!
//! | before | after |
//! |---|---|
//! | `ServeConfig { addr: a, ..Default::default() }` | `ServeConfig::default().addr(a)` |
//! | `config.max_sessions = n` | `.max_sessions(n)` |
//! | `config.max_inflight = n` | `.max_inflight(n)` |
//! | `config.rate = r; config.burst = b` | `.rate_limit(r, b)` |
//! | `config.clock_rate = c` | `.clock_rate(c)` |
//! | `config.quantum = q` | `.quantum(q)` |
//! | *(new in v2)* | `.pipeline_depth(n)`, `.write_queue_bytes(n)`, `.chunk_bytes(n)` |
//! | persistence wired by the caller | `.data_dir(path)` — shutdown checkpoints |
//! | `Server::start(deployment, config)` | `Server::bind(deployment, config)` |
//! | `use exspan_serve::ServeConfig` | `use exspan::{ServeClient, ServeConfig}` also works |
//!
//! ## Loadgen quick-start
//!
//! ```bash
//! # 64 concurrent sessions, 4 queries each, against a churning deployment:
//! cargo run --release -p exspan-serve --bin serve-loadgen -- \
//!     --sessions 64 --queries 4 --out BENCH_serve.json
//!
//! # Sweep offered load and hold a 10k-session soak:
//! cargo run --release -p exspan-serve --bin serve-loadgen -- \
//!     --sessions 10000 --queries 0 --hold 10
//! cargo run --release -p exspan-serve --bin serve-loadgen -- \
//!     --sessions 128 --queries 4 --sweep 50,100,200 --out BENCH_serve.json
//!
//! # Gate the result like the figure benches:
//! cargo run --release -p exspan-bench --bin check_bench -- \
//!     --serve BENCH_serve.json
//! ```
//!
//! Or serve interactively: `cargo run -p exspan-serve --bin exspan-serve`
//! prints the bound address and serves until stdin closes.  The in-process
//! equivalent is [`Server::bind`] + [`ServeClient::connect`].

pub mod client;
pub mod error;
pub mod limiter;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::{PollStatus, Response, ServeClient, SessionInfo};
pub use error::ServeError;
pub use limiter::TokenBucket;
pub use loadgen::{bench_report, LoadgenConfig, LoadgenSummary, PhaseStats};
pub use proto::{
    ErrorCode, Frame, FrameBuffer, QuerySpec, QueryState, ResultAssembler, ResultStream, WireError,
};
pub use server::{ServeConfig, Server, ServerHandle};
