//! # exspan-serve
//!
//! A wall-clock service front-end for ExSPAN deployments: the same
//! `Deployment` that regenerates the paper's figures, served over TCP to
//! concurrent client sessions while the deployment keeps churning.
//!
//! ## Executor migration: `SimClock` vs `WallClock`
//!
//! Historically every driver raced the simulation "as fast as possible" to a
//! requested horizon.  That policy is now the
//! [`exspan_runtime::Executor`] trait with two implementations:
//!
//! * [`exspan_runtime::SimClock`] — the deterministic clock.
//!   `Deployment::run_until(t)` is literally `run_with(&mut SimClock, t)`:
//!   one pump straight to the target, byte-identical to the pre-trait code.
//!   Figures, tests and baselines all ride this path.
//! * [`exspan_runtime::WallClock`] — simulated seconds accrue at a
//!   configurable rate per wall-clock second.  `run_with(&mut wall, t)`
//!   pumps only as far as real time has paid for, sleeping a bounded
//!   quantum between pumps (no tokio, just `thread::sleep`).  This is what
//!   lets a server interleave query admission with gradual protocol churn.
//!
//! An executor only chooses the *horizon* of each pump, never the order of
//! events below it — determinism below the horizon is untouched.
//!
//! ## Wire protocol
//!
//! Length-prefixed frames over TCP (see [`proto`] for the byte-level
//! layout):
//!
//! ```text
//! length: u32 BE │ type: u8 │ payload
//! ```
//!
//! A session is `Hello → HelloAck`, then any number of pipelined
//! `SubmitQuery → SubmitAck` / `Poll → QueryStatus` exchanges, then
//! `Bye ↔ Bye`.  Every violation — malformed body, oversized frame,
//! pre-handshake request, admission-control overflow, rate-limit
//! exhaustion, unknown query id — is answered with a typed
//! [`proto::ErrorCode`] on a connection that *stays open*.
//!
//! Server-side limits ([`ServeConfig`]): a bounded accept queue
//! (`max_sessions`), a global in-flight query cap (`max_inflight`), and a
//! per-session token bucket ([`limiter::TokenBucket`]).
//!
//! ## Loadgen quick-start
//!
//! ```bash
//! # 64 concurrent sessions, 4 queries each, against a churning deployment:
//! cargo run --release -p exspan-serve --bin serve-loadgen -- \
//!     --sessions 64 --queries 4 --out BENCH_serve.json
//!
//! # Gate the result like the figure benches:
//! cargo run --release -p exspan-bench --bin check_bench -- \
//!     --serve BENCH_serve.json
//! ```
//!
//! Or serve interactively: `cargo run -p exspan-serve --bin exspan-serve`
//! prints the bound address and serves until stdin closes.  The in-process
//! equivalent is [`Server::start`] + [`ServeClient::connect`].

pub mod client;
pub mod error;
pub mod limiter;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::{PollStatus, ServeClient, SessionInfo};
pub use error::ServeError;
pub use limiter::TokenBucket;
pub use loadgen::{bench_report, LoadgenConfig, LoadgenSummary};
pub use proto::{ErrorCode, Frame, QuerySpec, QueryState, WireError};
pub use server::{ServeConfig, Server, ServerHandle};
