//! A small blocking client for the wire protocol — the counterpart
//! `serve-loadgen` and the protocol tests drive the server with.

use crate::error::ServeError;
use crate::proto::{self, Frame, FrameRead, QuerySpec, QueryState, PROTOCOL_VERSION};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What the server advertised in its `HelloAck`.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Server-assigned session id.
    pub session: u64,
    /// Name of the NDlog program the deployment runs.
    pub program: String,
    /// Number of nodes in the topology.
    pub nodes: u32,
    /// Global in-flight query limit.
    pub max_inflight: u32,
    /// This session's token-bucket refill rate (requests per second).
    pub rate: f64,
    /// This session's token-bucket burst capacity.
    pub burst: u32,
}

/// Result of polling a query.
#[derive(Debug, Clone)]
pub struct PollStatus {
    /// Completion state.
    pub state: QueryState,
    /// Simulated seconds from issue to completion (0 while pending).
    pub latency: f64,
    /// Result summary (empty while pending).
    pub summary: String,
}

/// One connected, greeted protocol session.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: SessionInfo,
    next_request: u64,
}

impl ServeClient {
    /// Connects and performs the `Hello` / `HelloAck` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        proto::write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        let info = match read_one(&mut reader)? {
            Frame::HelloAck {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
            } => SessionInfo {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
            },
            Frame::Error {
                code,
                request,
                message,
            } => {
                return Err(ServeError::Protocol {
                    code,
                    request,
                    message,
                })
            }
            other => {
                return Err(ServeError::UnexpectedFrame {
                    got: other.name(),
                    expected: "HelloAck",
                })
            }
        };
        Ok(ServeClient {
            reader,
            writer,
            info,
            next_request: 1,
        })
    }

    /// The server's handshake metadata.
    pub fn info(&self) -> &SessionInfo {
        &self.info
    }

    fn request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Submits a query; returns the server-assigned query id.
    ///
    /// Typed error frames surface as [`ServeError::Protocol`] — check
    /// [`ServeError::is_backpressure`] to distinguish rate-limit/admission
    /// pushback (retry after a pause) from hard failures.
    pub fn submit(&mut self, spec: QuerySpec) -> Result<u64, ServeError> {
        let request = self.request_id();
        proto::write_frame(&mut self.writer, &Frame::SubmitQuery { request, spec })?;
        match read_one(&mut self.reader)? {
            Frame::SubmitAck { query, .. } => Ok(query),
            Frame::Error {
                code,
                request,
                message,
            } => Err(ServeError::Protocol {
                code,
                request,
                message,
            }),
            other => Err(ServeError::UnexpectedFrame {
                got: other.name(),
                expected: "SubmitAck",
            }),
        }
    }

    /// Polls a query once.
    pub fn poll(&mut self, query: u64) -> Result<PollStatus, ServeError> {
        let request = self.request_id();
        proto::write_frame(&mut self.writer, &Frame::Poll { request, query })?;
        match read_one(&mut self.reader)? {
            Frame::QueryStatus {
                state,
                latency,
                summary,
                ..
            } => Ok(PollStatus {
                state,
                latency,
                summary,
            }),
            Frame::Error {
                code,
                request,
                message,
            } => Err(ServeError::Protocol {
                code,
                request,
                message,
            }),
            other => Err(ServeError::UnexpectedFrame {
                got: other.name(),
                expected: "QueryStatus",
            }),
        }
    }

    /// Polls until the query completes, backing off `poll_every` between
    /// polls (absorbing rate-limit pushback), for at most `timeout` wall
    /// time.  Returns `Ok(None)` on timeout.
    pub fn wait(
        &mut self,
        query: u64,
        timeout: Duration,
        poll_every: Duration,
    ) -> Result<Option<PollStatus>, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.poll(query) {
                Ok(status) if status.state == QueryState::Complete => {
                    return Ok(Some(status));
                }
                Ok(_) => {}
                Err(e) if e.is_backpressure() => {}
                Err(e) => return Err(e),
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(poll_every);
        }
    }

    /// Sends an orderly goodbye and waits for the echo.
    pub fn bye(mut self) -> Result<(), ServeError> {
        proto::write_frame(&mut self.writer, &Frame::Bye)?;
        match read_one(&mut self.reader)? {
            Frame::Bye => Ok(()),
            other => Err(ServeError::UnexpectedFrame {
                got: other.name(),
                expected: "Bye",
            }),
        }
    }
}

/// Reads and decodes exactly one frame, treating EOF and oversized frames as
/// errors (the *server* never sends oversized frames).
fn read_one(reader: &mut BufReader<TcpStream>) -> Result<Frame, ServeError> {
    match proto::read_frame(reader)? {
        None => Err(ServeError::ConnectionClosed),
        Some(FrameRead::Oversized { .. }) => Err(ServeError::UnexpectedFrame {
            got: "oversized frame",
            expected: "a bounded frame",
        }),
        Some(FrameRead::Body(body)) => Ok(proto::decode_frame(&body)?),
    }
}
