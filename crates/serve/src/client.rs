//! A small blocking client for the wire protocol — the counterpart the
//! protocol tests (and simple tools) drive the server with.
//!
//! The client speaks protocol v2 by default ([`ServeClient::connect`]) and
//! can be pinned to an older version with
//! [`ServeClient::connect_with_version`].  Requests can be pipelined:
//! [`ServeClient::submit_pipelined`] / [`ServeClient::poll_pipelined`] send
//! without waiting, and [`ServeClient::recv_response`] returns logical
//! responses as they complete — matched by request id, possibly out of
//! order, with streamed [`Frame::ResultChunk`] bodies reassembled
//! transparently.  The plain [`ServeClient::submit`] / [`ServeClient::poll`]
//! wrappers stay strictly request-response.

use crate::error::ServeError;
use crate::proto::{
    self, ErrorCode, Frame, FrameRead, QuerySpec, QueryState, ResultAssembler, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Smallest pause between polls in [`ServeClient::wait_for`].
const BACKOFF_FLOOR: Duration = Duration::from_millis(1);

/// Largest pause between polls in [`ServeClient::wait_for`].
const BACKOFF_CEIL: Duration = Duration::from_millis(256);

/// What the server advertised in its handshake ack.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Server-assigned session id.
    pub session: u64,
    /// Name of the NDlog program the deployment runs.
    pub program: String,
    /// Number of nodes in the topology.
    pub nodes: u32,
    /// Global in-flight query limit.
    pub max_inflight: u32,
    /// This session's token-bucket refill rate (requests per second).
    pub rate: f64,
    /// This session's token-bucket burst capacity.
    pub burst: u32,
    /// Negotiated protocol version (1 when the server only acked v1).
    pub version: u16,
    /// Requests this connection may keep in flight (1 on v1 sessions).
    pub pipeline_depth: u32,
    /// Data bytes per result chunk the server streams (0 on v1 sessions).
    pub chunk_bytes: u32,
    /// Whether result bodies travel dictionary-compressed — the client
    /// offered the codec and the server accepted (v2 sessions only).
    pub codec: bool,
}

/// Result of polling a query.
#[derive(Debug, Clone)]
pub struct PollStatus {
    /// Completion state.
    pub state: QueryState,
    /// Simulated seconds from issue to completion (0 while pending).
    pub latency: f64,
    /// Result summary (empty while pending).
    pub summary: String,
    /// The full rendered result, reassembled from the v2 chunk stream (and
    /// decompressed, on codec sessions).  `None` while pending and on v1
    /// sessions (which never stream bodies).
    pub result: Option<String>,
    /// Cache entries the query's session maintained in place (0 from
    /// pre-codec servers).
    pub cache_maintained: u64,
    /// Bytes the dictionary codec saved on the session's query traffic
    /// (0 from pre-codec servers).
    pub compressed_bytes_saved: u64,
}

/// One logical server response, matched to its request id.
#[derive(Debug, Clone)]
pub enum Response {
    /// The query was admitted ([`Frame::SubmitAck`]).
    Submitted {
        /// Echo of the submit's request id.
        request: u64,
        /// Server-assigned query id.
        query: u64,
    },
    /// A poll completed — with any streamed result fully reassembled.
    Status {
        /// Echo of the poll's request id.
        request: u64,
        /// The polled query id.
        query: u64,
        /// The status (and result body, if one was streamed).
        status: PollStatus,
    },
    /// The server answered this request with a typed error frame.
    Rejected {
        /// The offending request id (0 when not attributable).
        request: u64,
        /// What kind of violation occurred.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A poll whose chunk stream is still arriving.
struct PendingStream {
    query: u64,
    state: QueryState,
    latency: f64,
    summary: String,
    cache_maintained: u64,
    compressed_bytes_saved: u64,
    assembler: ResultAssembler,
}

/// One connected, greeted protocol session.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: SessionInfo,
    next_request: u64,
    /// Polls whose `QueryStatusV2` announced a body still being streamed.
    streams: HashMap<u64, PendingStream>,
}

impl ServeClient {
    /// Connects and performs the handshake at the newest protocol version,
    /// offering the dictionary result codec.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        Self::connect_with(addr, PROTOCOL_VERSION, true)
    }

    /// Connects announcing `version` in the `Hello` (codec not offered) —
    /// useful to act as an old client against a newer server.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u16,
    ) -> Result<ServeClient, ServeError> {
        Self::connect_with(addr, version, false)
    }

    /// Connects announcing `version` and optionally offering the dictionary
    /// result codec of [`exspan_types::compress`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        version: u16,
        offer_codec: bool,
    ) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        proto::write_frame(
            &mut writer,
            &Frame::Hello {
                version,
                codec: offer_codec,
            },
        )?;
        let info = match read_one(&mut reader)? {
            Frame::HelloAck {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
            } => SessionInfo {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
                version: 1,
                pipeline_depth: 1,
                chunk_bytes: 0,
                codec: false,
            },
            Frame::HelloAckV2 {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
                version,
                pipeline_depth,
                chunk_bytes,
                codec,
            } => SessionInfo {
                session,
                program,
                nodes,
                max_inflight,
                rate,
                burst,
                version,
                pipeline_depth,
                chunk_bytes,
                codec,
            },
            Frame::Error {
                code,
                request,
                message,
            } => {
                return Err(ServeError::Protocol {
                    code,
                    request,
                    message,
                })
            }
            other => {
                return Err(ServeError::UnexpectedFrame {
                    got: other.name(),
                    expected: "HelloAck",
                })
            }
        };
        Ok(ServeClient {
            reader,
            writer,
            info,
            next_request: 1,
            streams: HashMap::new(),
        })
    }

    /// The server's handshake metadata.
    pub fn info(&self) -> &SessionInfo {
        &self.info
    }

    fn request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Sends a submit without waiting; returns its request id for matching
    /// against [`ServeClient::recv_response`].
    pub fn submit_pipelined(&mut self, spec: QuerySpec) -> Result<u64, ServeError> {
        let request = self.request_id();
        proto::write_frame(&mut self.writer, &Frame::SubmitQuery { request, spec })?;
        Ok(request)
    }

    /// Sends a poll without waiting; returns its request id.
    pub fn poll_pipelined(&mut self, query: u64) -> Result<u64, ServeError> {
        let request = self.request_id();
        proto::write_frame(&mut self.writer, &Frame::Poll { request, query })?;
        Ok(request)
    }

    /// Blocks until the next *logical* response completes.  Chunked result
    /// streams are reassembled internally: this returns only when a
    /// response (of any pipelined request — they may finish out of order)
    /// is whole.
    pub fn recv_response(&mut self) -> Result<Response, ServeError> {
        loop {
            match read_one(&mut self.reader)? {
                Frame::SubmitAck { request, query } => {
                    return Ok(Response::Submitted { request, query })
                }
                Frame::QueryStatus {
                    request,
                    query,
                    state,
                    latency,
                    summary,
                } => {
                    return Ok(Response::Status {
                        request,
                        query,
                        status: PollStatus {
                            state,
                            latency,
                            summary,
                            result: None,
                            cache_maintained: 0,
                            compressed_bytes_saved: 0,
                        },
                    })
                }
                Frame::QueryStatusV2 {
                    request,
                    query,
                    state,
                    latency,
                    summary,
                    result_total,
                    cache_maintained,
                    compressed_bytes_saved,
                } => {
                    if result_total == 0 {
                        let result = (state == QueryState::Complete).then(String::new);
                        return Ok(Response::Status {
                            request,
                            query,
                            status: PollStatus {
                                state,
                                latency,
                                summary,
                                result,
                                cache_maintained,
                                compressed_bytes_saved,
                            },
                        });
                    }
                    // Body follows as chunks; keep reading.
                    self.streams.insert(
                        request,
                        PendingStream {
                            query,
                            state,
                            latency,
                            summary,
                            cache_maintained,
                            compressed_bytes_saved,
                            assembler: ResultAssembler::new(result_total),
                        },
                    );
                }
                Frame::ResultChunk {
                    request,
                    offset,
                    total,
                    bytes,
                } => {
                    let Some(stream) = self.streams.get_mut(&request) else {
                        return Err(ServeError::UnexpectedFrame {
                            got: "ResultChunk",
                            expected: "a chunk of an announced stream",
                        });
                    };
                    if let Some(body) = stream.assembler.accept(offset, total, &bytes)? {
                        let stream = self
                            .streams
                            .remove(&request)
                            .expect("stream entry just borrowed");
                        // On codec sessions the body travels compressed.
                        let body = if self.info.codec {
                            exspan_types::compress::decompress_bytes(&body).map_err(|e| {
                                ServeError::UnexpectedFrame {
                                    got: "an undecodable compressed result body",
                                    expected: e.reason,
                                }
                            })?
                        } else {
                            body
                        };
                        return Ok(Response::Status {
                            request,
                            query: stream.query,
                            status: PollStatus {
                                state: stream.state,
                                latency: stream.latency,
                                summary: stream.summary,
                                result: Some(String::from_utf8_lossy(&body).into_owned()),
                                cache_maintained: stream.cache_maintained,
                                compressed_bytes_saved: stream.compressed_bytes_saved,
                            },
                        });
                    }
                }
                Frame::Error {
                    code,
                    request,
                    message,
                } => {
                    return Ok(Response::Rejected {
                        request,
                        code,
                        message,
                    })
                }
                other => {
                    return Err(ServeError::UnexpectedFrame {
                        got: other.name(),
                        expected: "a response frame",
                    })
                }
            }
        }
    }

    /// Submits a query; returns the server-assigned query id.
    ///
    /// Typed error frames surface as [`ServeError::Protocol`] — check
    /// [`ServeError::is_backpressure`] to distinguish rate-limit/admission
    /// pushback (retry after a pause) from hard failures.
    pub fn submit(&mut self, spec: QuerySpec) -> Result<u64, ServeError> {
        let request = self.submit_pipelined(spec)?;
        match self.recv_response()? {
            Response::Submitted { request: r, query } if r == request => Ok(query),
            Response::Rejected {
                request: r,
                code,
                message,
            } if r == request || r == 0 => Err(ServeError::Protocol {
                code,
                request: r,
                message,
            }),
            _ => Err(ServeError::UnexpectedFrame {
                got: "a response for a different request",
                expected: "SubmitAck",
            }),
        }
    }

    /// Polls a query once (reassembling any streamed result body).
    pub fn poll(&mut self, query: u64) -> Result<PollStatus, ServeError> {
        let request = self.poll_pipelined(query)?;
        match self.recv_response()? {
            Response::Status {
                request: r, status, ..
            } if r == request => Ok(status),
            Response::Rejected {
                request: r,
                code,
                message,
            } if r == request || r == 0 => Err(ServeError::Protocol {
                code,
                request: r,
                message,
            }),
            _ => Err(ServeError::UnexpectedFrame {
                got: "a response for a different request",
                expected: "QueryStatus",
            }),
        }
    }

    /// Polls until the query completes, for at most `timeout` wall time.
    /// Returns `Ok(None)` on timeout.
    ///
    /// Pauses between polls follow truncated binary exponential backoff
    /// (1 ms doubling to 256 ms) with per-session deterministic jitter, so
    /// thousands of concurrent sessions spread their polls instead of
    /// synchronizing into a storm.  Rate-limit and admission pushback are
    /// absorbed as extra backoff rather than surfaced as errors.
    pub fn wait_for(
        &mut self,
        query: u64,
        timeout: Duration,
    ) -> Result<Option<PollStatus>, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = BACKOFF_FLOOR;
        // Deterministic jitter stream, decorrelated across sessions and
        // queries by the server-assigned ids.
        let mut jitter = Jitter::new(self.info.session.wrapping_mul(0x9E37_79B9) ^ query);
        loop {
            match self.poll(query) {
                Ok(status) if status.state == QueryState::Complete => {
                    return Ok(Some(status));
                }
                Ok(_) => {}
                Err(e) if e.is_backpressure() => {}
                Err(e) => return Err(e),
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Sleep backoff/2 .. backoff, capped at the deadline.
            let pause = backoff / 2 + jitter.in_range(backoff / 2);
            std::thread::sleep(pause.min(deadline - now));
            backoff = (backoff * 2).min(BACKOFF_CEIL);
        }
    }

    /// Sends an orderly goodbye and waits for the echo (discarding any
    /// still-in-flight pipelined responses on the way).
    pub fn bye(mut self) -> Result<(), ServeError> {
        proto::write_frame(&mut self.writer, &Frame::Bye)?;
        loop {
            match read_one(&mut self.reader)? {
                Frame::Bye => return Ok(()),
                // Responses to pipelined requests may still be in flight
                // ahead of the echo; drop them.
                Frame::SubmitAck { .. }
                | Frame::QueryStatus { .. }
                | Frame::QueryStatusV2 { .. }
                | Frame::ResultChunk { .. }
                | Frame::Error { .. } => {}
                other => {
                    return Err(ServeError::UnexpectedFrame {
                        got: other.name(),
                        expected: "Bye",
                    })
                }
            }
        }
    }
}

/// xorshift64* jitter source: no external RNG, deterministic per seed.
pub(crate) struct Jitter {
    state: u64,
}

impl Jitter {
    pub(crate) fn new(seed: u64) -> Jitter {
        Jitter {
            state: seed | 1, // xorshift state must be nonzero
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform duration in `[0, bound)` (zero when `bound` is zero).
    pub(crate) fn in_range(&mut self, bound: Duration) -> Duration {
        let nanos = bound.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.next() % nanos)
    }
}

/// Reads and decodes exactly one frame, treating EOF and oversized frames as
/// errors (the *server* never sends oversized frames).
fn read_one(reader: &mut BufReader<TcpStream>) -> Result<Frame, ServeError> {
    match proto::read_frame(reader)? {
        None => Err(ServeError::ConnectionClosed),
        Some(FrameRead::Oversized { .. }) => Err(ServeError::UnexpectedFrame {
            got: "oversized frame",
            expected: "a bounded frame",
        }),
        Some(FrameRead::Body(body)) => Ok(proto::decode_frame(&body)?),
    }
}
