//! Typed errors of the service front-end.

use crate::proto::{ErrorCode, WireError};

/// Everything that can go wrong speaking the `exspan-serve` protocol, on
/// either side of the connection.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A frame failed to encode or decode locally.
    Wire(WireError),
    /// The peer answered with a typed protocol error frame.
    Protocol {
        /// The error code from the wire.
        code: ErrorCode,
        /// The request id the error is attributed to (0 if none).
        request: u64,
        /// Human-readable detail from the peer.
        message: String,
    },
    /// The peer sent a frame that is valid on the wire but wrong for the
    /// current protocol state.
    UnexpectedFrame {
        /// Name of the frame that arrived.
        got: &'static str,
        /// What the state machine was waiting for.
        expected: &'static str,
    },
    /// The connection closed before the exchange finished.
    ConnectionClosed,
}

impl ServeError {
    /// The protocol error code, if this is a peer-reported protocol error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ServeError::Protocol { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether the error is transient backpressure (admission control or
    /// rate limiting) that a client should absorb by backing off.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self.code(),
            Some(ErrorCode::Admission | ErrorCode::RateLimited)
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "{e}"),
            ServeError::Protocol {
                code,
                request,
                message,
            } => write!(f, "protocol error (request {request}): {code}: {message}"),
            ServeError::UnexpectedFrame { got, expected } => {
                write!(f, "unexpected {got} frame (expected {expected})")
            }
            ServeError::ConnectionClosed => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}
