//! End-to-end wire-protocol tests against a live in-process server:
//! malformed / oversized / truncated frames, handshake rejection,
//! admission-control overflow and rate-limit backpressure — each answered
//! with a *typed* protocol error on a connection that stays open.

use exspan_core::{Exspan, ProvenanceMode, Repr, Traversal};
use exspan_netsim::Topology;
use exspan_serve::proto::{
    self, ErrorCode, Frame, FrameRead, QuerySpec, QueryState, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use exspan_serve::{ServeClient, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn boot(config: ServeConfig) -> ServerHandle {
    let mut deployment = Exspan::builder()
        .program(exspan_ndlog::programs::mincost())
        .topology(Topology::paper_example())
        .mode(ProvenanceMode::Reference)
        .build()
        .expect("valid deployment");
    deployment.run_to_fixpoint();
    Server::start(deployment, config).expect("server boots")
}

fn raw_connect(server: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn read_decoded(stream: &mut TcpStream) -> Frame {
    match proto::read_frame(stream).expect("read").expect("not EOF") {
        FrameRead::Body(body) => proto::decode_frame(&body).expect("decodable reply"),
        FrameRead::Oversized { .. } => panic!("server never sends oversized frames"),
    }
}

fn hello(stream: &mut TcpStream) {
    proto::write_frame(
        stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    match read_decoded(stream) {
        Frame::HelloAck { nodes, .. } => assert_eq!(nodes, 4),
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    match read_decoded(stream) {
        Frame::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

fn bestpath_spec() -> QuerySpec {
    QuerySpec {
        issuer: 3,
        repr: Repr::Polynomial,
        traversal: Traversal::Bfs,
        cached: false,
        relation: "bestPathCost".into(),
        location: 0,
        values: vec![exspan_types::Value::Node(2), exspan_types::Value::Int(5)],
    }
}

#[test]
fn malformed_truncated_and_oversized_frames_get_typed_errors() {
    let server = boot(ServeConfig::default());
    let mut stream = raw_connect(&server);
    hello(&mut stream);

    // Unknown frame type.
    stream.write_all(&1u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x55]).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Well-framed but truncated SubmitAck-shaped body.
    stream.write_all(&3u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x11, 0, 0]).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Zero-length frame (no type byte).
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Oversized frame: declared bigger than the limit, body streamed out.
    let declared = (MAX_FRAME_LEN + 1) as u32;
    stream.write_all(&declared.to_be_bytes()).unwrap();
    let junk = vec![0u8; declared as usize];
    stream.write_all(&junk).unwrap();
    expect_error(&mut stream, ErrorCode::Oversized);

    // The connection survived all four violations.
    proto::write_frame(&mut stream, &Frame::Bye).unwrap();
    assert!(matches!(read_decoded(&mut stream), Frame::Bye));
    server.shutdown();
}

#[test]
fn handshake_rejection_is_typed_and_recoverable() {
    let server = boot(ServeConfig::default());
    let mut stream = raw_connect(&server);

    // Requests before any Hello are rejected but the connection stays open.
    proto::write_frame(
        &mut stream,
        &Frame::Poll {
            request: 7,
            query: 0,
        },
    )
    .unwrap();
    expect_error(&mut stream, ErrorCode::HandshakeRejected);

    // An unsupported version is rejected...
    proto::write_frame(&mut stream, &Frame::Hello { version: 999 }).unwrap();
    expect_error(&mut stream, ErrorCode::HandshakeRejected);

    // ...and a correct retry succeeds on the same connection.
    hello(&mut stream);

    // Server-to-client frames sent by the client are violations, typed too.
    proto::write_frame(
        &mut stream,
        &Frame::SubmitAck {
            request: 1,
            query: 1,
        },
    )
    .unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);
    server.shutdown();
}

#[test]
fn session_admission_overflow_is_refused_with_a_typed_error() {
    let server = boot(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    let mut a = raw_connect(&server);
    hello(&mut a);
    let mut b = raw_connect(&server);
    hello(&mut b);
    // Session slots are released asynchronously, so the cap is checked on
    // the live pair: the third connection must be refused while both are up.
    let mut c = raw_connect(&server);
    expect_error(&mut c, ErrorCode::Admission);
    server.shutdown();
}

#[test]
fn query_admission_overflow_is_refused_with_a_typed_error() {
    // clock_rate ≈ 0 freezes simulated time, so submitted queries cannot
    // complete and the in-flight cap is hit deterministically.
    let server = boot(ServeConfig {
        max_inflight: 3,
        clock_rate: 1e-9,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    for _ in 0..3 {
        client.submit(bestpath_spec()).expect("under the cap");
    }
    let err = client.submit(bestpath_spec()).expect_err("cap reached");
    assert_eq!(err.code(), Some(ErrorCode::Admission));
    assert!(err.is_backpressure());

    // The session is still usable: polls keep working.
    let status = client.poll(0).expect("poll works");
    assert_eq!(status.state, QueryState::Pending);
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn rate_limit_backpressure_is_typed_and_recoverable() {
    let server = boot(ServeConfig {
        rate: 0.001, // effectively no refill within the test
        burst: 2,
        clock_rate: 1e-9,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    client.submit(bestpath_spec()).expect("token 1");
    client.submit(bestpath_spec()).expect("token 2");
    let err = client.submit(bestpath_spec()).expect_err("bucket empty");
    assert_eq!(err.code(), Some(ErrorCode::RateLimited));
    assert!(err.is_backpressure());
    // Still connected: the goodbye handshake completes.
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn unknown_query_ids_are_typed_errors() {
    let server = boot(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    let err = client.poll(987_654).expect_err("no such query");
    assert_eq!(err.code(), Some(ErrorCode::UnknownQuery));
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn a_query_completes_end_to_end_over_the_wire() {
    let server = boot(ServeConfig {
        clock_rate: 1000.0,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    assert_eq!(client.info().program, "MINCOST");
    let query = client.submit(bestpath_spec()).expect("admitted");
    let status = client
        .wait(query, Duration::from_secs(30), Duration::from_millis(2))
        .expect("no protocol error")
        .expect("completes within the budget");
    assert_eq!(status.state, QueryState::Complete);
    assert!(status.latency > 0.0, "simulated latency is positive");
    assert_eq!(status.summary, "2 derivations");
    client.bye().expect("clean goodbye");
    let deployment = server.shutdown();
    assert_eq!(deployment.outcomes().len(), 1);
}
