//! End-to-end wire-protocol tests against a live in-process server:
//! malformed / oversized / truncated frames, handshake rejection and
//! version negotiation, admission-control overflow and rate-limit
//! backpressure — each answered with a *typed* protocol error on a
//! connection that stays open — plus the v2 features: chunked result
//! streaming past [`MAX_FRAME_LEN`], pipelined out-of-order completion,
//! slow-reader write-queue overflow, and v1-client compatibility.

use exspan_core::{Exspan, ProvenanceMode, Repr, Traversal};
use exspan_netsim::{LinkClass, LinkProps, Topology};
use exspan_serve::proto::{
    self, ErrorCode, Frame, FrameRead, QuerySpec, QueryState, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use exspan_serve::{Response, ServeClient, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn boot_on(topology: Topology, config: ServeConfig) -> ServerHandle {
    let mut deployment = Exspan::builder()
        .program(exspan_ndlog::programs::mincost())
        .topology(topology)
        .mode(ProvenanceMode::Reference)
        .build()
        .expect("valid deployment");
    deployment.run_to_fixpoint();
    Server::bind(deployment, config).expect("server boots")
}

fn boot(config: ServeConfig) -> ServerHandle {
    boot_on(Topology::paper_example(), config)
}

/// A chain of `k` diamonds: spine `0..=k`, each hop doubled through two
/// midpoints, so the min-cost route `0 → k` has cost `2k` and `2^k`
/// distinct derivations — its rendered provenance polynomial grows
/// exponentially in `k`, which is how these tests manufacture results far
/// bigger than one frame.
fn diamond_chain(k: usize) -> Topology {
    let mut topology = Topology::empty(3 * k + 1);
    let props = || LinkProps::from_class(LinkClass::StubStub);
    for i in 0..k {
        let spine = i as u32;
        let next = (i + 1) as u32;
        let mid_a = (k + 1 + 2 * i) as u32;
        let mid_b = (k + 2 + 2 * i) as u32;
        topology.add_link(spine, mid_a, props());
        topology.add_link(mid_a, next, props());
        topology.add_link(spine, mid_b, props());
        topology.add_link(mid_b, next, props());
    }
    topology
}

fn raw_connect(server: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn read_decoded(stream: &mut TcpStream) -> Frame {
    match proto::read_frame(stream).expect("read").expect("not EOF") {
        FrameRead::Body(body) => proto::decode_frame(&body).expect("decodable reply"),
        FrameRead::Oversized { .. } => panic!("server never sends oversized frames"),
    }
}

fn hello(stream: &mut TcpStream) {
    proto::write_frame(
        stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            codec: false,
        },
    )
    .unwrap();
    match read_decoded(stream) {
        Frame::HelloAckV2 { nodes, version, .. } => {
            assert_eq!(nodes, 4);
            assert_eq!(version, PROTOCOL_VERSION);
        }
        other => panic!("expected HelloAckV2, got {other:?}"),
    }
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    match read_decoded(stream) {
        Frame::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

fn bestpath_spec() -> QuerySpec {
    QuerySpec {
        issuer: 3,
        repr: Repr::Polynomial,
        traversal: Traversal::Bfs,
        cached: false,
        relation: "bestPathCost".into(),
        location: 0,
        values: vec![exspan_types::Value::Node(2), exspan_types::Value::Int(5)],
    }
}

/// The min-cost route `0 → to` on a [`diamond_chain`] topology, queried
/// from the spine end.
fn diamond_spec(to: u32, cost: i64) -> QuerySpec {
    QuerySpec {
        issuer: to,
        repr: Repr::Polynomial,
        traversal: Traversal::Bfs,
        cached: false,
        relation: "bestPathCost".into(),
        location: 0,
        values: vec![
            exspan_types::Value::Node(to),
            exspan_types::Value::Int(cost),
        ],
    }
}

#[test]
fn malformed_truncated_and_oversized_frames_get_typed_errors() {
    let server = boot(ServeConfig::default());
    let mut stream = raw_connect(&server);
    hello(&mut stream);

    // Unknown frame type.
    stream.write_all(&1u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x55]).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Well-framed but truncated SubmitAck-shaped body.
    stream.write_all(&3u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x11, 0, 0]).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Zero-length frame (no type byte).
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);

    // Oversized frame: declared bigger than the limit, body streamed out.
    let declared = (MAX_FRAME_LEN + 1) as u32;
    stream.write_all(&declared.to_be_bytes()).unwrap();
    let junk = vec![0u8; declared as usize];
    stream.write_all(&junk).unwrap();
    expect_error(&mut stream, ErrorCode::Oversized);

    // The connection survived all four violations.
    proto::write_frame(&mut stream, &Frame::Bye).unwrap();
    assert!(matches!(read_decoded(&mut stream), Frame::Bye));
    server.shutdown();
}

#[test]
fn handshake_rejection_and_version_negotiation() {
    let server = boot(ServeConfig::default());
    let mut stream = raw_connect(&server);

    // Requests before any Hello are rejected but the connection stays open.
    proto::write_frame(
        &mut stream,
        &Frame::Poll {
            request: 7,
            query: 0,
        },
    )
    .unwrap();
    expect_error(&mut stream, ErrorCode::HandshakeRejected);

    // A version below the floor is rejected...
    proto::write_frame(
        &mut stream,
        &Frame::Hello {
            version: 0,
            codec: false,
        },
    )
    .unwrap();
    expect_error(&mut stream, ErrorCode::HandshakeRejected);

    // ...a version from the future negotiates down to what the server
    // speaks...
    proto::write_frame(
        &mut stream,
        &Frame::Hello {
            version: 999,
            codec: false,
        },
    )
    .unwrap();
    match read_decoded(&mut stream) {
        Frame::HelloAckV2 { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected negotiated HelloAckV2, got {other:?}"),
    }

    // Server-to-client frames sent by the client are violations, typed too.
    proto::write_frame(
        &mut stream,
        &Frame::SubmitAck {
            request: 1,
            query: 1,
        },
    )
    .unwrap();
    expect_error(&mut stream, ErrorCode::Malformed);
    server.shutdown();
}

#[test]
fn session_admission_overflow_is_refused_with_a_typed_error() {
    let server = boot(ServeConfig::default().max_sessions(2));
    let mut a = raw_connect(&server);
    hello(&mut a);
    let mut b = raw_connect(&server);
    hello(&mut b);
    // Session slots are released asynchronously, so the cap is checked on
    // the live pair: the third connection must be refused while both are up.
    let mut c = raw_connect(&server);
    expect_error(&mut c, ErrorCode::Admission);
    server.shutdown();
}

#[test]
fn query_admission_overflow_is_refused_with_a_typed_error() {
    // clock_rate ≈ 0 freezes simulated time, so submitted queries cannot
    // complete and the in-flight cap is hit deterministically.
    let server = boot(ServeConfig::default().max_inflight(3).clock_rate(1e-9));
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    for _ in 0..3 {
        client.submit(bestpath_spec()).expect("under the cap");
    }
    let err = client.submit(bestpath_spec()).expect_err("cap reached");
    assert_eq!(err.code(), Some(ErrorCode::Admission));
    assert!(err.is_backpressure());

    // The session is still usable: polls keep working.
    let status = client.poll(0).expect("poll works");
    assert_eq!(status.state, QueryState::Pending);
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn rate_limit_backpressure_is_typed_and_recoverable() {
    let server = boot(
        ServeConfig::default()
            .rate_limit(0.001, 2) // effectively no refill within the test
            .clock_rate(1e-9),
    );
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    client.submit(bestpath_spec()).expect("token 1");
    client.submit(bestpath_spec()).expect("token 2");
    let err = client.submit(bestpath_spec()).expect_err("bucket empty");
    assert_eq!(err.code(), Some(ErrorCode::RateLimited));
    assert!(err.is_backpressure());
    // Still connected: the goodbye handshake completes.
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn unknown_query_ids_are_typed_errors() {
    let server = boot(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    let err = client.poll(987_654).expect_err("no such query");
    assert_eq!(err.code(), Some(ErrorCode::UnknownQuery));
    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn a_query_completes_end_to_end_over_the_wire() {
    let server = boot(ServeConfig::default().clock_rate(1000.0));
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    assert_eq!(client.info().program, "MINCOST");
    assert_eq!(client.info().version, PROTOCOL_VERSION);
    let query = client.submit(bestpath_spec()).expect("admitted");
    let status = client
        .wait_for(query, Duration::from_secs(30))
        .expect("no protocol error")
        .expect("completes within the budget");
    assert_eq!(status.state, QueryState::Complete);
    assert!(status.latency > 0.0, "simulated latency is positive");
    assert_eq!(status.summary, "2 derivations");
    // v2 sessions stream the rendered polynomial alongside the summary.
    let result = status.result.expect("v2 polls carry the result body");
    assert!(!result.is_empty());
    client.bye().expect("clean goodbye");
    let deployment = server.shutdown();
    assert_eq!(deployment.outcomes().len(), 1);
}

#[test]
fn large_results_stream_chunked_and_pipelined_polls_complete_out_of_order() {
    // 2^12 = 4096 derivations render to roughly half a megabyte — far past
    // MAX_FRAME_LEN, so the body must arrive as a reassembled chunk stream.
    let k = 12;
    let server = boot_on(diamond_chain(k), ServeConfig::default().clock_rate(1000.0));
    let mut client = ServeClient::connect(server.addr()).expect("handshake");

    let big = client
        .submit(diamond_spec(k as u32, 2 * k as i64))
        .expect("admitted");
    let status = client
        .wait_for(big, Duration::from_secs(120))
        .expect("no protocol error")
        .expect("completes");
    assert_eq!(status.summary, format!("{} derivations", 1u64 << k));
    let body = status.result.expect("result body streamed");
    assert!(
        body.len() > MAX_FRAME_LEN,
        "result must exceed one frame to exercise chunking, got {} bytes",
        body.len()
    );

    // A one-hop route: small result, instant to render.
    let small = client
        .submit(diamond_spec(k as u32 + 1, 1))
        .expect("admitted");
    client
        .wait_for(small, Duration::from_secs(30))
        .expect("no protocol error")
        .expect("completes");

    // Pipeline a poll of the big query then a poll of the small one and
    // hold off reading: the worker commits the small response while the
    // reactor is still flushing the big stream one quantum per tick, so
    // the small response overtakes the stream's tail — genuine
    // out-of-order completion.  Both polls are idempotent reads of cached
    // results, so on a loaded runner (where the scheduler can let the
    // reactor drain the whole stream before the worker commits the small
    // reply) the pair is simply retried; one interleaved attempt proves
    // the protocol property.
    let mut interleaved = false;
    for attempt in 0..5 {
        let r_big = client.poll_pipelined(big).expect("pipelined");
        let r_small = client.poll_pipelined(small).expect("pipelined");
        std::thread::sleep(Duration::from_millis(400));

        let mut responses = Vec::new();
        for _ in 0..2 {
            match client.recv_response().expect("pipelined response") {
                Response::Status {
                    request, status, ..
                } => responses.push((request, status)),
                other => panic!("expected a poll status, got {other:?}"),
            }
        }
        // Both responses must arrive intact regardless of order, and the
        // big one must carry the full reassembled body every time.
        let big_status = &responses
            .iter()
            .find(|(r, _)| *r == r_big)
            .expect("big poll answered")
            .1;
        assert_eq!(big_status.result.as_deref(), Some(body.as_str()));
        assert!(
            responses.iter().any(|(r, _)| *r == r_small),
            "small poll answered"
        );
        if responses[0].0 == r_small {
            interleaved = true;
            break;
        }
        eprintln!("attempt {attempt}: responses arrived in request order; retrying");
    }
    assert!(
        interleaved,
        "the small poll never completed ahead of the big stream in 5 attempts"
    );

    client.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn codec_sessions_negotiate_and_stream_identical_results() {
    // One server, two clients: one offering the dictionary codec, one
    // declining it.  Both must see byte-identical rendered results; the
    // codec session must actually negotiate (flag echoed in HelloAckV2)
    // and ship fewer bytes on the wire (result_total is the compressed
    // length, checked indirectly through the chunk assembler accepting a
    // shorter stream).
    let k = 10;
    let server = boot_on(diamond_chain(k), ServeConfig::default().clock_rate(1000.0));

    let mut plain =
        ServeClient::connect_with(server.addr(), PROTOCOL_VERSION, false).expect("handshake");
    assert!(!plain.info().codec, "codec must stay off when not offered");
    let query = plain
        .submit(diamond_spec(k as u32, 2 * k as i64))
        .expect("admitted");
    let flat = plain
        .wait_for(query, Duration::from_secs(120))
        .expect("no protocol error")
        .expect("completes")
        .result
        .expect("body streamed");

    let mut codec = ServeClient::connect(server.addr()).expect("handshake");
    assert!(codec.info().codec, "server must accept the offered codec");
    let query = codec
        .submit(diamond_spec(k as u32, 2 * k as i64))
        .expect("admitted");
    let status = codec
        .wait_for(query, Duration::from_secs(120))
        .expect("no protocol error")
        .expect("completes");
    assert_eq!(
        status.result.as_deref(),
        Some(flat.as_str()),
        "codec and plain sessions must decode to the same rendering"
    );

    codec.bye().expect("clean goodbye");
    plain.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn slow_reader_write_queue_overflow_is_typed_and_closes() {
    // 2^8 = 256 derivations render to ~30 KiB — far over this server's
    // 4 KiB write budget, so committing the result response must trip the
    // overload path: a typed Overloaded error, then a clean close.
    let k = 8;
    let server = boot_on(
        diamond_chain(k),
        ServeConfig::default()
            .clock_rate(1000.0)
            .write_queue_bytes(4096),
    );
    let mut client = ServeClient::connect(server.addr()).expect("handshake");
    let query = client
        .submit(diamond_spec(k as u32, 2 * k as i64))
        .expect("admitted");
    // Pending polls are small and fit the budget; the completion response
    // does not, so the wait surfaces the overload error.
    let err = client
        .wait_for(query, Duration::from_secs(60))
        .expect_err("overload instead of a result");
    assert_eq!(err.code(), Some(ErrorCode::Overloaded));
    assert!(
        !err.is_backpressure(),
        "overload is fatal, not a retry hint"
    );
    // The server drained the error frame and closed the connection.
    let err = client.poll(query).expect_err("connection is gone");
    assert!(err.code().is_none());
    server.shutdown();
}

#[test]
fn v1_clients_keep_working_against_a_v2_server() {
    let server = boot(ServeConfig::default().clock_rate(1000.0));
    let mut client = ServeClient::connect_with_version(server.addr(), 1).expect("v1 handshake");
    assert_eq!(client.info().version, 1);
    assert_eq!(client.info().pipeline_depth, 1);
    assert_eq!(client.info().chunk_bytes, 0);

    let query = client.submit(bestpath_spec()).expect("admitted");
    let status = client
        .wait_for(query, Duration::from_secs(30))
        .expect("no protocol error")
        .expect("completes");
    assert_eq!(status.state, QueryState::Complete);
    assert_eq!(status.summary, "2 derivations");
    // v1 sessions get the summary only — no streamed body, ever.
    assert!(status.result.is_none());
    client.bye().expect("clean goodbye");
    server.shutdown();
}
