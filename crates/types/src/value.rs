//! Dynamically-typed attribute values.
//!
//! NDlog tuples carry heterogeneous attributes: node addresses, integers,
//! costs, strings (rule labels, relation names), lists (path vectors, VID
//! lists) and raw 20-byte digests (provenance pointers).  [`Value`] is the
//! closed union of those cases.
//!
//! Two cases are engineered for cheap cloning, because values are copied on
//! every rule firing, join candidate and delta application:
//!
//! * [`Value::Str`] holds an interned [`Symbol`] — cloning is a pointer copy
//!   and equality a pointer comparison, while ordering, hashing, display and
//!   the wire/hash encodings remain functions of the string *content* (so
//!   canonical scan orders and VIDs are unchanged by interning).
//! * [`Value::List`] holds its elements behind an [`Arc`] — cloning a path
//!   vector or VID list bumps a reference count instead of deep-copying.
//!   Lists are immutable once built (construct them with [`Value::list`]).

use crate::sha1::Digest;
use crate::symbol::Symbol;
use crate::Error;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single attribute value inside a [`crate::Tuple`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A node address (location specifier).
    Node(u32),
    /// A signed integer (costs, counts, thresholds, payload sizes…).
    Int(i64),
    /// An interned string (relation names, rule labels, domain names…).
    Str(Symbol),
    /// A boolean (derivability tests).
    Bool(bool),
    /// An ordered, immutable list of values (path vectors, VID lists,
    /// buffered results), shared behind an [`Arc`].
    List(Arc<Vec<Value>>),
    /// A 20-byte digest (VIDs, RIDs, query identifiers).
    Digest([u8; 20]),
    /// An opaque payload of the given size in bytes.  Only the size is
    /// modelled; the content of data-plane packets is irrelevant to
    /// provenance, but its wire footprint matters for Figure 8.
    Payload(u32),
}

impl Value {
    /// Creates a list value (the canonical [`Value::List`] constructor).
    pub fn list(values: Vec<Value>) -> Value {
        Value::List(Arc::new(values))
    }

    /// Creates an interned string value.
    pub fn str(s: impl Into<Symbol>) -> Value {
        Value::Str(s.into())
    }

    /// Returns the node id if this value is a node address.
    pub fn as_node(&self) -> Result<u32, Error> {
        match self {
            Value::Node(n) => Ok(*n),
            other => Err(Error::TypeMismatch {
                expected: "node",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the integer if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Result<i64, Error> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(Error::TypeMismatch {
                expected: "int",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the string slice if this value is a [`Value::Str`].
    pub fn as_str(&self) -> Result<&'static str, Error> {
        match self {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(Error::TypeMismatch {
                expected: "string",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the interned symbol if this value is a [`Value::Str`].
    pub fn as_symbol(&self) -> Result<Symbol, Error> {
        match self {
            Value::Str(s) => Ok(*s),
            other => Err(Error::TypeMismatch {
                expected: "string",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the boolean if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch {
                expected: "bool",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns a reference to the list if this value is a [`Value::List`].
    pub fn as_list(&self) -> Result<&[Value], Error> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(Error::TypeMismatch {
                expected: "list",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Returns the digest if this value is a [`Value::Digest`].
    pub fn as_digest(&self) -> Result<Digest, Error> {
        match self {
            Value::Digest(d) => Ok(Digest(*d)),
            other => Err(Error::TypeMismatch {
                expected: "digest",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Creates a digest value from a [`Digest`].
    pub fn from_digest(d: Digest) -> Value {
        Value::Digest(d.0)
    }

    /// Number of bytes this value contributes to a serialized message.
    ///
    /// The model follows the paper's accounting: node addresses and integers
    /// are 4 bytes, digests 20 bytes, strings and lists their content plus a
    /// small length header, opaque payloads their declared size.  Interning
    /// and [`Arc`]-sharing are runtime representation choices — the wire
    /// footprint is a function of the content alone and is identical to the
    /// pre-interning model.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Node(_) => 4,
            Value::Int(_) => 4,
            Value::Bool(_) => 1,
            Value::Str(s) => 2 + s.len(),
            Value::List(l) => 2 + l.iter().map(Value::wire_size).sum::<usize>(),
            Value::Digest(_) => 20,
            Value::Payload(sz) => *sz as usize,
        }
    }

    /// Appends a canonical byte encoding of the value to `out`.
    ///
    /// Used to compute VIDs: the encoding is injective per variant (a type tag
    /// followed by a fixed-width or length-prefixed body) so distinct values
    /// never produce identical byte strings.
    pub fn encode_for_hash(&self, out: &mut Vec<u8>) {
        match self {
            Value::Node(n) => {
                out.push(0x01);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Value::Int(i) => {
                out.push(0x02);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Str(s) => encode_str_for_hash(s.as_str(), out),
            Value::Bool(b) => {
                out.push(0x04);
                out.push(*b as u8);
            }
            Value::List(l) => {
                out.push(0x05);
                out.extend_from_slice(&(l.len() as u32).to_be_bytes());
                for v in l.iter() {
                    v.encode_for_hash(out);
                }
            }
            Value::Digest(d) => {
                out.push(0x06);
                out.extend_from_slice(d);
            }
            Value::Payload(sz) => {
                out.push(0x07);
                out.extend_from_slice(&sz.to_be_bytes());
            }
        }
    }
}

/// Appends the canonical hash encoding of a string value — identical to
/// `Value::Str(s).encode_for_hash(..)` but usable without interning or
/// allocating (the VID computation encodes the relation name this way).
pub fn encode_str_for_hash(s: &str, out: &mut Vec<u8>) {
    out.push(0x03);
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Node(n) => write!(f, "n{n}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Digest(d) => write!(f, "#{}", Digest(*d).short()),
            Value::Payload(sz) => write!(f, "<payload:{sz}B>"),
        }
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Int(n as i64)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Symbol::intern(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Symbol::intern(&s))
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1_digest;

    #[test]
    fn accessors_succeed_on_matching_variant() {
        assert_eq!(Value::Node(7).as_node().unwrap(), 7);
        assert_eq!(Value::Int(-3).as_int().unwrap(), -3);
        assert_eq!(Value::from("x").as_str().unwrap(), "x");
        assert_eq!(Value::from("x").as_symbol().unwrap(), Symbol::intern("x"));
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(
            Value::list(vec![Value::Int(1)]).as_list().unwrap(),
            &[Value::Int(1)]
        );
        let d = sha1_digest(b"t");
        assert_eq!(Value::from_digest(d).as_digest().unwrap(), d);
    }

    #[test]
    fn accessors_fail_on_wrong_variant() {
        assert!(Value::Int(1).as_node().is_err());
        assert!(Value::Node(1).as_int().is_err());
        assert!(Value::Int(1).as_str().is_err());
        assert!(Value::Int(1).as_symbol().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Int(1).as_list().is_err());
        assert!(Value::Int(1).as_digest().is_err());
    }

    #[test]
    fn wire_sizes_follow_model() {
        assert_eq!(Value::Node(1).wire_size(), 4);
        assert_eq!(Value::Int(1).wire_size(), 4);
        assert_eq!(Value::Bool(true).wire_size(), 1);
        assert_eq!(Value::from("abcd").wire_size(), 6);
        assert_eq!(Value::Digest([0; 20]).wire_size(), 20);
        assert_eq!(Value::Payload(1024).wire_size(), 1024);
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Node(2)]).wire_size(),
            2 + 4 + 4
        );
    }

    #[test]
    fn hash_encoding_distinguishes_variants() {
        // Int(1) and Node(1) must encode differently.
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(1).encode_for_hash(&mut a);
        Value::Node(1).encode_for_hash(&mut b);
        assert_ne!(a, b);

        // Nested lists vs flat concatenation must differ.
        let mut c = Vec::new();
        let mut d = Vec::new();
        Value::list(vec![Value::Int(1), Value::Int(2)]).encode_for_hash(&mut c);
        Value::list(vec![Value::list(vec![Value::Int(1), Value::Int(2)])]).encode_for_hash(&mut d);
        assert_ne!(c, d);
    }

    #[test]
    fn interned_str_encoding_matches_raw_helper() {
        let mut via_value = Vec::new();
        Value::from("pathCost").encode_for_hash(&mut via_value);
        let mut via_helper = Vec::new();
        encode_str_for_hash("pathCost", &mut via_helper);
        assert_eq!(via_value, via_helper);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Node(3).to_string(), "n3");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(
            Value::list(vec![Value::Node(1), Value::Node(2)]).to_string(),
            "[n1,n2]"
        );
        assert!(Value::Payload(9).to_string().contains("9B"));
    }

    #[test]
    fn ordering_is_content_based() {
        // Str ordering must follow string content (canonical scan orders
        // depend on it), regardless of intern order.
        assert!(Value::from("zz") > Value::from("aa"));
        assert!(Value::from("aa") < Value::from("ab"));
        // Variant rank ordering is unchanged: Node < Int < Str < Bool < List.
        assert!(Value::Node(9) < Value::Int(0));
        assert!(Value::Int(9) < Value::from(""));
        assert!(Value::from("zzz") < Value::Bool(false));
        assert!(Value::Bool(true) < Value::list(vec![]));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::Str(Symbol::intern("a")));
        assert_eq!(Value::from(String::from("a")), Value::from("a"));
        assert_eq!(Value::from(Symbol::intern("a")), Value::from("a"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::str("a"), Value::from("a"));
    }
}
