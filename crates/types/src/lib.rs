//! # exspan-types
//!
//! Foundation types shared by every crate in the ExSPAN workspace:
//!
//! * [`Value`] — the dynamically-typed attribute values carried by network
//!   tuples (node addresses, integers, interned strings, `Arc`-shared lists,
//!   raw digests).
//! * [`Tuple`] — a located relational tuple, the unit of state and of
//!   communication in a declarative network.  Its relation is an interned
//!   [`RelId`]; resolve it with [`Tuple::relation_name`].
//! * [`Symbol`] / [`RelId`] — the workspace-wide string interner behind the
//!   hot path: `Copy` handles with pointer equality and content ordering
//!   (see [`symbol`] for why that combination keeps the figures
//!   byte-identical).
//! * [`NodeId`] — the address of a node in the simulated network.
//! * [`Vid`] / [`Rid`] — provenance vertex identifiers: SHA-1 digests of tuple
//!   contents and of rule-execution instances respectively (paper §4.1).
//! * [`sha1`] — a from-scratch SHA-1 implementation (no external dependency),
//!   used solely to derive collision-resistant vertex identifiers.
//! * [`wire`] — the byte-size model used for all bandwidth accounting in the
//!   evaluation harness.  Interning does not change any wire size: the model
//!   always charged a fixed-width relation id per tuple and content-length
//!   bytes per string value.
//! * [`compress`] — the dictionary wire codec behind the opt-in compressed
//!   accounting mode and the serve protocol's compressed result bodies:
//!   first occurrence of a string/VID in a message is sent inline and
//!   assigned a varint id, repeats cost the id alone.

pub mod compress;
pub mod sha1;
pub mod symbol;
pub mod tuple;
pub mod value;
pub mod wire;

pub use sha1::{sha1_digest, Digest};
pub use symbol::{RelId, Symbol};
pub use tuple::{NodeId, Rid, Schema, Tuple, TupleKey, Vid};
pub use value::Value;

/// Convenience result alias used across the workspace for fallible operations
/// that report a human-readable error message.
pub type Result<T> = std::result::Result<T, Error>;

/// Error type shared by the foundation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value had a different runtime type than the operation required.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it actually got, rendered for display.
        found: String,
    },
    /// A tuple did not match the arity or shape its schema requires.
    SchemaViolation(String),
    /// A generic error with a message.
    Other(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            Error::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_readable() {
        let e = Error::TypeMismatch {
            expected: "int",
            found: "string(\"x\")".into(),
        };
        assert!(e.to_string().contains("expected int"));
        let e = Error::SchemaViolation("arity 3 != 2".into());
        assert!(e.to_string().contains("schema violation"));
        let e = Error::Other("boom".into());
        assert_eq!(e.to_string(), "boom");
    }
}
