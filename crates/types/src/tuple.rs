//! Relational tuples, schemas and provenance vertex identifiers.
//!
//! Since the interned hot path landed, a tuple's relation is a [`RelId`] — a
//! `Copy` interned symbol — rather than an owned `String`.  Construction
//! sites are unchanged (`Tuple::new("link", …)` interns transparently), and
//! [`Tuple::relation_name`] resolves the id back to its `&'static str`.
//! Identity is unaffected: VIDs hash the relation's *content*, the wire-size
//! model already charged a fixed-width relation id, and tuples order exactly
//! as they did when the relation was a string.

use crate::sha1::{Digest, Sha1};
use crate::symbol::RelId;
use crate::value::{encode_str_for_hash, Value};
use crate::Error;
use serde::{Deserialize, Serialize};

/// The address of a node in the network.  Location specifiers (`@X`) resolve
/// to `NodeId`s at runtime.
pub type NodeId = u32;

/// Vertex identifier of a *tuple vertex* in the provenance graph: the SHA-1
/// digest of the tuple's relation name, location and attribute values
/// (paper §4.1).
pub type Vid = Digest;

/// Vertex identifier of a *rule-execution vertex*: the SHA-1 digest of the
/// rule label, the executing location and the VIDs of the input tuples.
pub type Rid = Digest;

/// A relation schema: name, arity, and which attribute positions form the
/// primary key (used for update/overwrite semantics of materialized tables,
/// e.g. `bestPathCost` keyed on `(src, dst)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Interned relation name, e.g. `"pathCost"`.
    pub name: RelId,
    /// Number of attributes, including the location attribute.
    pub arity: usize,
    /// Indices of the primary-key attributes.  Empty means "all attributes".
    pub key: Vec<usize>,
}

impl Schema {
    /// Creates a schema whose key is the full set of attributes (set
    /// semantics).
    pub fn new(name: impl Into<RelId>, arity: usize) -> Self {
        Schema {
            name: name.into(),
            arity,
            key: Vec::new(),
        }
    }

    /// Creates a schema with an explicit primary key.
    pub fn with_key(name: impl Into<RelId>, arity: usize, key: Vec<usize>) -> Self {
        Schema {
            name: name.into(),
            arity,
            key,
        }
    }

    /// Checks that `tuple` conforms to this schema.
    pub fn check(&self, tuple: &Tuple) -> Result<(), Error> {
        if tuple.relation != self.name {
            return Err(Error::SchemaViolation(format!(
                "tuple relation {} does not match schema {}",
                tuple.relation, self.name
            )));
        }
        if tuple.arity() != self.arity {
            return Err(Error::SchemaViolation(format!(
                "relation {}: arity {} != expected {}",
                self.name,
                tuple.arity(),
                self.arity
            )));
        }
        Ok(())
    }

    /// Extracts the primary-key projection of a tuple under this schema.
    pub fn key_of(&self, tuple: &Tuple) -> TupleKey {
        if self.key.is_empty() {
            TupleKey {
                relation: tuple.relation,
                location: tuple.location,
                values: tuple.values.clone(),
            }
        } else {
            TupleKey {
                relation: tuple.relation,
                location: tuple.location,
                values: self.key.iter().map(|&i| tuple.values[i].clone()).collect(),
            }
        }
    }
}

/// The primary-key projection of a tuple; used for keyed table maintenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey {
    /// Interned relation name.
    pub relation: RelId,
    /// Location of the tuple.
    pub location: NodeId,
    /// Key attribute values.
    pub values: Vec<Value>,
}

/// A located relational tuple — the unit of state and of communication.
///
/// The first conceptual attribute of every NDlog predicate is its location
/// specifier; we store it separately in [`Tuple::location`] and keep the
/// remaining attributes in [`Tuple::values`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    /// Interned relation (predicate) identifier.  Compare it against string
    /// literals directly (`t.relation == "prov"`) or resolve it with
    /// [`Tuple::relation_name`].
    pub relation: RelId,
    /// The node at which this tuple resides (the `@` attribute).
    pub location: NodeId,
    /// The non-location attribute values, in declaration order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple.  Accepts anything convertible to a [`RelId`]: string
    /// literals intern transparently, and an existing `RelId` is free.
    pub fn new(relation: impl Into<RelId>, location: NodeId, values: Vec<Value>) -> Self {
        Tuple {
            relation: relation.into(),
            location,
            values,
        }
    }

    /// Resolves the interned relation id to its name.
    pub fn relation_name(&self) -> &'static str {
        self.relation.as_str()
    }

    /// Total number of attributes including the location specifier.
    pub fn arity(&self) -> usize {
        self.values.len() + 1
    }

    /// Computes the provenance vertex identifier of this tuple:
    /// `VID = SHA1(relation + location + attributes)` (paper §4.1).
    ///
    /// The digest is computed over the canonical [`Value`] encoding of
    /// `[Str(relation), Node(location), values...]`, which makes it identical
    /// to what the NDlog built-in `f_sha1("relation", Loc, attrs...)` used by
    /// the rewritten provenance-maintenance rules produces — a requirement
    /// for distributed provenance queries to be able to follow VID pointers
    /// generated by either path.
    pub fn vid(&self) -> Vid {
        let mut h = Sha1::new();
        let mut buf = Vec::with_capacity(16 * (self.values.len() + 2));
        encode_str_for_hash(self.relation.as_str(), &mut buf);
        Value::Node(self.location).encode_for_hash(&mut buf);
        for v in &self.values {
            v.encode_for_hash(&mut buf);
        }
        h.update(&buf);
        h.finalize()
    }

    /// Number of bytes this tuple occupies when sent in a network message:
    /// a small header (relation id + location) plus each attribute's wire
    /// size.  The model always charged a fixed 2-byte relation id — the
    /// in-memory interning matches the wire format it already assumed.
    pub fn wire_size(&self) -> usize {
        // 2 bytes relation id, 4 bytes location, 1 byte attribute count.
        7 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Number of bytes this tuple occupies under the dictionary wire codec
    /// ([`crate::compress`]) with a fresh per-message dictionary.  Strings
    /// and digests are emitted inline on first occurrence (repeats within
    /// the tuple cost a varint id), integers shrink to varints, and opaque
    /// payloads stay charged at their declared size.  This is the opt-in
    /// compressed accounting model; [`Tuple::wire_size`] remains the flat
    /// model every existing figure is built on.
    pub fn compressed_wire_size(&self) -> usize {
        let mut enc = crate::compress::Encoder::new();
        enc.encode_tuple(self);
        enc.charged_len()
    }

    /// Convenience accessor: the `i`-th non-location attribute.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(@n{}", self.relation, self.location)?;
        for v in &self.values {
            write!(f, ",{v}")?;
        }
        write!(f, ")")
    }
}

/// Computes the rule-execution vertex identifier
/// `RID = SHA1(rule_label + location + VID_1 + ... + VID_n)` (paper §4.1).
///
/// As with [`Tuple::vid`], the digest is computed over the canonical value
/// encoding of `[Str(rule_label), Node(location), List(vids)]`, matching the
/// `RID = f_sha1(R, RLoc, List)` computation in the rewritten rules.
pub fn rule_exec_id(rule_label: &str, location: NodeId, input_vids: &[Vid]) -> Rid {
    let mut h = Sha1::new();
    let mut buf = Vec::with_capacity(32 + 24 * input_vids.len());
    encode_str_for_hash(rule_label, &mut buf);
    Value::Node(location).encode_for_hash(&mut buf);
    Value::list(input_vids.iter().map(|v| Value::Digest(v.0)).collect()).encode_for_hash(&mut buf);
    h.update(&buf);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(src: NodeId, dst: NodeId, cost: i64) -> Tuple {
        Tuple::new("link", src, vec![Value::Node(dst), Value::Int(cost)])
    }

    #[test]
    fn vid_is_deterministic_and_content_addressed() {
        let a = link(1, 2, 3);
        let b = link(1, 2, 3);
        assert_eq!(a.vid(), b.vid());
        assert_ne!(a.vid(), link(1, 2, 4).vid());
        assert_ne!(a.vid(), link(2, 2, 3).vid());
        // Different relation name, same contents.
        let c = Tuple::new("pathCost", 1, vec![Value::Node(2), Value::Int(3)]);
        assert_ne!(a.vid(), c.vid());
    }

    #[test]
    fn vid_matches_value_level_encoding() {
        // The interned fast path must produce the exact digest the
        // Value-by-Value encoding (and hence f_sha1) produces.
        let t = link(1, 2, 3);
        let mut buf = Vec::new();
        Value::from("link").encode_for_hash(&mut buf);
        Value::Node(1).encode_for_hash(&mut buf);
        Value::Node(2).encode_for_hash(&mut buf);
        Value::Int(3).encode_for_hash(&mut buf);
        let mut h = Sha1::new();
        h.update(&buf);
        assert_eq!(t.vid(), h.finalize());
    }

    #[test]
    fn rid_depends_on_rule_location_and_inputs() {
        let v1 = link(1, 2, 3).vid();
        let v2 = link(2, 3, 1).vid();
        let r = rule_exec_id("sp2", 2, &[v1, v2]);
        assert_ne!(r, rule_exec_id("sp1", 2, &[v1, v2]));
        assert_ne!(r, rule_exec_id("sp2", 3, &[v1, v2]));
        assert_ne!(r, rule_exec_id("sp2", 2, &[v2, v1]));
        assert_eq!(r, rule_exec_id("sp2", 2, &[v1, v2]));
    }

    #[test]
    fn schema_check_catches_arity_and_name() {
        let s = Schema::new("link", 3);
        assert!(s.check(&link(1, 2, 3)).is_ok());
        assert!(s
            .check(&Tuple::new("link", 1, vec![Value::Node(2)]))
            .is_err());
        assert!(s
            .check(&Tuple::new("path", 1, vec![Value::Node(2), Value::Int(1)]))
            .is_err());
    }

    #[test]
    fn keyed_schema_projects_key() {
        // bestPathCost(@S, D, C) keyed on (S=location, D) -> key index 0 of values.
        let s = Schema::with_key("bestPathCost", 3, vec![0]);
        let t = Tuple::new("bestPathCost", 1, vec![Value::Node(2), Value::Int(9)]);
        let k = s.key_of(&t);
        assert_eq!(k.values, vec![Value::Node(2)]);
        assert_eq!(k.location, 1);

        let unkeyed = Schema::new("link", 3);
        let k2 = unkeyed.key_of(&link(1, 2, 3));
        assert_eq!(k2.values.len(), 2);
    }

    #[test]
    fn wire_size_counts_header_and_values() {
        let t = link(1, 2, 3);
        assert_eq!(t.wire_size(), 7 + 4 + 4);
    }

    #[test]
    fn display_shows_location_and_values() {
        assert_eq!(link(1, 2, 3).to_string(), "link(@n1,n2,3)");
    }

    #[test]
    fn arity_counts_location() {
        assert_eq!(link(1, 2, 3).arity(), 3);
    }

    #[test]
    fn relation_is_interned_and_resolvable() {
        let t = link(1, 2, 3);
        assert_eq!(t.relation_name(), "link");
        assert_eq!(t.relation, "link");
        // Construction from an existing RelId is free and equal.
        let t2 = Tuple::new(t.relation, 1, t.values.clone());
        assert_eq!(t, t2);
    }
}
