//! Dictionary wire codec: the compressed byte model for provenance traffic.
//!
//! Value-based provenance ships highly repetitive content — recurring rule
//! labels, relation names, VIDs and polynomial structure that the flat model
//! in [`crate::wire`] charges byte-for-byte.  This module implements the
//! compressed counterpart: a **deterministic per-message dictionary codec**.
//! Within one message, the first occurrence of a string or digest is emitted
//! inline and assigned the next varint id; every repeat costs the id alone.
//! The dictionary resets at message boundaries, so both sides can decode
//! without any shared session state and the encoded size of a message is a
//! pure function of its content — the property every figure relies on for
//! bit-identical results at any shard count.
//!
//! # Wire grammar
//!
//! Integers are LEB128 varints (7 data bits per byte, little-endian groups);
//! signed integers are zigzag-folded first.  Strings and digests go through
//! the dictionary:
//!
//! ```text
//! message := varint(ntuples) tuple*
//! tuple   := str(relation) varint(location) varint(nvalues) value*
//! value   := 0x01 varint(node)      | 0x02 zigzag-varint(int)
//!          | 0x03 str               | 0x04 bool-byte
//!          | 0x05 varint(len) value*| 0x06 digest
//!          | 0x07 varint(payload-size)
//! str     := 0x00 varint(len) utf8-bytes   ; define: assigns the next id
//!          | 0x01 varint(id)               ; back-reference
//! digest  := 0x00 raw-20-bytes             ; define: assigns the next id
//!          | 0x01 varint(id)               ; back-reference
//! ```
//!
//! Strings and digests share one id space, assigned in definition order.
//! [`Value::Payload`] stays opaque: only its size varint is materialized, and
//! the accounting ([`Encoder::charged_len`]) still charges the declared bytes
//! — packet payloads are treated as incompressible.
//!
//! The compressed *message* model ([`compressed_message_size`]) keeps the
//! UDP/IP overhead ([`crate::wire::UDP_IP_HEADER_BYTES`]) — the network does
//! not shrink — but replaces the fixed 12-byte message header with the
//! codec's own varint tuple-count framing.
//!
//! A second, byte-oriented entry point ([`compress_bytes`] /
//! [`decompress_bytes`]) applies the same define-or-reference scheme to
//! opaque rendered payloads (the serve protocol's `ResultChunk` bodies):
//! alphanumeric word tokens of a text are dictionarized, everything else is
//! copied raw, and decoding reproduces the input exactly.

use crate::tuple::Tuple;
use crate::value::Value;
use crate::wire::UDP_IP_HEADER_BYTES;
use std::collections::HashMap;

/// Value variant tags (distinct from the hash-encoding tags on purpose: the
/// codec is a wire format, not an identity function).
const TAG_NODE: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_STR: u8 = 0x03;
const TAG_BOOL: u8 = 0x04;
const TAG_LIST: u8 = 0x05;
const TAG_DIGEST: u8 = 0x06;
const TAG_PAYLOAD: u8 = 0x07;

/// Dictionary ops for strings and digests.
const DICT_DEFINE: u8 = 0x00;
const DICT_REF: u8 = 0x01;

/// Number of bytes the varint encoding of `x` takes (1..=10).
pub fn varint_len(x: u64) -> usize {
    let mut x = x;
    let mut n = 1;
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// A decode failure: the offset it occurred at plus a static reason.
/// Torn, truncated or hostile input surfaces as this error — decoding never
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the input at which decoding failed.
    pub at: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// Per-message encoder: owns the output buffer and the dictionary state.
/// Encode any number of tuples (or raw primitives) through one encoder to
/// share its dictionary; drop or [`Encoder::finish`] it at the message
/// boundary.
#[derive(Debug, Default)]
pub struct Encoder {
    out: Vec<u8>,
    strings: HashMap<String, u64>,
    digests: HashMap<[u8; 20], u64>,
    next_id: u64,
    /// Opaque payload bytes charged but not materialized (see module docs).
    opaque: usize,
}

impl Encoder {
    /// A fresh encoder with an empty dictionary.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Appends a LEB128 varint.
    pub fn write_varint(&mut self, mut x: u64) {
        while x >= 0x80 {
            self.out.push((x as u8) | 0x80);
            x >>= 7;
        }
        self.out.push(x as u8);
    }

    /// Appends a string through the dictionary: inline on first occurrence,
    /// a varint back-reference afterwards.
    pub fn encode_str(&mut self, s: &str) {
        if let Some(&id) = self.strings.get(s) {
            self.out.push(DICT_REF);
            self.write_varint(id);
        } else {
            self.strings.insert(s.to_string(), self.next_id);
            self.next_id += 1;
            self.out.push(DICT_DEFINE);
            self.write_varint(s.len() as u64);
            self.out.extend_from_slice(s.as_bytes());
        }
    }

    /// Appends a 20-byte digest through the dictionary.
    pub fn encode_digest(&mut self, d: &[u8; 20]) {
        if let Some(&id) = self.digests.get(d) {
            self.out.push(DICT_REF);
            self.write_varint(id);
        } else {
            self.digests.insert(*d, self.next_id);
            self.next_id += 1;
            self.out.push(DICT_DEFINE);
            self.out.extend_from_slice(d);
        }
    }

    /// Appends one value.
    pub fn encode_value(&mut self, v: &Value) {
        match v {
            Value::Node(n) => {
                self.out.push(TAG_NODE);
                self.write_varint(u64::from(*n));
            }
            Value::Int(i) => {
                self.out.push(TAG_INT);
                self.write_varint(zigzag(*i));
            }
            Value::Str(s) => {
                self.out.push(TAG_STR);
                self.encode_str(s.as_str());
            }
            Value::Bool(b) => {
                self.out.push(TAG_BOOL);
                self.out.push(u8::from(*b));
            }
            Value::List(l) => {
                self.out.push(TAG_LIST);
                self.write_varint(l.len() as u64);
                for v in l.iter() {
                    self.encode_value(v);
                }
            }
            Value::Digest(d) => {
                self.out.push(TAG_DIGEST);
                self.encode_digest(d);
            }
            Value::Payload(sz) => {
                self.out.push(TAG_PAYLOAD);
                self.write_varint(u64::from(*sz));
                self.opaque += *sz as usize;
            }
        }
    }

    /// Appends one tuple: relation (dictionary string), location, values.
    pub fn encode_tuple(&mut self, t: &Tuple) {
        self.encode_str(t.relation.as_str());
        self.write_varint(u64::from(t.location));
        self.write_varint(t.values.len() as u64);
        for v in &t.values {
            self.encode_value(v);
        }
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.out
    }

    /// Bytes this encoding is *charged* on the modelled wire: the encoded
    /// buffer plus the declared sizes of opaque payloads (whose content is
    /// never materialized but must still cross the network uncompressed).
    pub fn charged_len(&self) -> usize {
        self.out.len() + self.opaque
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Per-message decoder over a byte slice.  Mirrors [`Encoder`]; every read is
/// bounds-checked and reports [`DecodeError`] instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
    /// Definition-order dictionary; strings and digests share the id space.
    entries: Vec<DictEntry>,
}

#[derive(Debug, Clone)]
enum DictEntry {
    Str(String),
    Digest([u8; 20]),
}

/// Nesting bound for decoded lists, matching the depth any honest encoder in
/// this workspace produces; guards against stack exhaustion on hostile input.
const MAX_LIST_DEPTH: usize = 8;

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `input` with an empty dictionary.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder {
            input,
            pos: 0,
            entries: Vec::new(),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn err(&self, reason: &'static str) -> DecodeError {
        DecodeError {
            at: self.pos,
            reason,
        }
    }

    fn read_byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .input
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err("unexpected end of input"));
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint (at most 10 bytes).
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.read_byte()?;
            if shift >= 63 && b > 1 {
                return Err(self.err("varint overflows 64 bits"));
            }
            x |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    fn read_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.read_varint()?;
        // A declared length can never exceed what is physically present.
        if n > self.remaining() as u64 {
            return Err(self.err("declared length exceeds input"));
        }
        Ok(n as usize)
    }

    /// Reads a dictionary string (define or back-reference).
    pub fn decode_str(&mut self) -> Result<String, DecodeError> {
        match self.read_byte()? {
            DICT_DEFINE => {
                let len = self.read_len()?;
                let bytes = self.read_bytes(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| self.err("string is not valid UTF-8"))?
                    .to_string();
                self.entries.push(DictEntry::Str(s.clone()));
                Ok(s)
            }
            DICT_REF => {
                let id = self.read_varint()?;
                match self.entries.get(id as usize) {
                    Some(DictEntry::Str(s)) => Ok(s.clone()),
                    Some(DictEntry::Digest(_)) => {
                        Err(self.err("reference to a digest where a string was expected"))
                    }
                    None => Err(self.err("dictionary reference out of range")),
                }
            }
            _ => Err(self.err("invalid dictionary op")),
        }
    }

    /// Reads a dictionary digest (define or back-reference).
    pub fn decode_digest(&mut self) -> Result<[u8; 20], DecodeError> {
        match self.read_byte()? {
            DICT_DEFINE => {
                let bytes = self.read_bytes(20)?;
                let mut d = [0u8; 20];
                d.copy_from_slice(bytes);
                self.entries.push(DictEntry::Digest(d));
                Ok(d)
            }
            DICT_REF => {
                let id = self.read_varint()?;
                match self.entries.get(id as usize) {
                    Some(DictEntry::Digest(d)) => Ok(*d),
                    Some(DictEntry::Str(_)) => {
                        Err(self.err("reference to a string where a digest was expected"))
                    }
                    None => Err(self.err("dictionary reference out of range")),
                }
            }
            _ => Err(self.err("invalid dictionary op")),
        }
    }

    fn decode_value_at(&mut self, depth: usize) -> Result<Value, DecodeError> {
        match self.read_byte()? {
            TAG_NODE => {
                let n = self.read_varint()?;
                u32::try_from(n)
                    .map(Value::Node)
                    .map_err(|_| self.err("node id overflows u32"))
            }
            TAG_INT => Ok(Value::Int(unzigzag(self.read_varint()?))),
            TAG_STR => Ok(Value::from(self.decode_str()?)),
            TAG_BOOL => match self.read_byte()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(self.err("invalid bool byte")),
            },
            TAG_LIST => {
                if depth >= MAX_LIST_DEPTH {
                    return Err(self.err("list nesting too deep"));
                }
                let len = self.read_len()?;
                let mut items = Vec::with_capacity(len.min(64));
                for _ in 0..len {
                    items.push(self.decode_value_at(depth + 1)?);
                }
                Ok(Value::list(items))
            }
            TAG_DIGEST => Ok(Value::Digest(self.decode_digest()?)),
            TAG_PAYLOAD => {
                let sz = self.read_varint()?;
                u32::try_from(sz)
                    .map(Value::Payload)
                    .map_err(|_| self.err("payload size overflows u32"))
            }
            _ => Err(self.err("invalid value tag")),
        }
    }

    /// Reads one value.
    pub fn decode_value(&mut self) -> Result<Value, DecodeError> {
        self.decode_value_at(0)
    }

    /// Reads one tuple.
    pub fn decode_tuple(&mut self) -> Result<Tuple, DecodeError> {
        let relation = self.decode_str()?;
        let location = self.read_varint()?;
        let location = u32::try_from(location).map_err(|_| self.err("location overflows u32"))?;
        let nvalues = self.read_len()?;
        let mut values = Vec::with_capacity(nvalues.min(64));
        for _ in 0..nvalues {
            values.push(self.decode_value()?);
        }
        Ok(Tuple::new(relation, location, values))
    }
}

/// Encodes a whole message — `varint(count)` followed by the tuples sharing
/// one dictionary.
pub fn encode_message(tuples: &[Tuple]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.write_varint(tuples.len() as u64);
    for t in tuples {
        enc.encode_tuple(t);
    }
    enc.finish()
}

/// Decodes a message produced by [`encode_message`].  Trailing bytes are an
/// error: a message is a complete, self-delimiting unit.
pub fn decode_message(bytes: &[u8]) -> Result<Vec<Tuple>, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let count = dec.read_len()?;
    let mut tuples = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        tuples.push(dec.decode_tuple()?);
    }
    if dec.remaining() != 0 {
        return Err(DecodeError {
            at: bytes.len() - dec.remaining(),
            reason: "trailing bytes after message",
        });
    }
    Ok(tuples)
}

/// Compressed counterpart of [`crate::wire::message_size`]: UDP/IP overhead
/// plus the codec's own framing (varint tuple count, dictionary-encoded
/// tuples) plus an already-compressed annotation of `annotation_bytes`.
pub fn compressed_message_size(tuples: &[Tuple], annotation_bytes: usize) -> usize {
    let mut enc = Encoder::new();
    enc.write_varint(tuples.len() as u64);
    for t in tuples {
        enc.encode_tuple(t);
    }
    UDP_IP_HEADER_BYTES + enc.charged_len() + annotation_bytes
}

// ---------------------------------------------------------------------------
// Byte-payload codec (serve `ResultChunk` bodies)
// ---------------------------------------------------------------------------

/// Ops of the byte-payload stream.  `OP_RAW` copies bytes verbatim, `OP_DEF`
/// copies them *and* assigns the next dictionary id, and any op ≥ `OP_REF0`
/// references entry `op - OP_REF0`.
const OP_RAW: u64 = 0;
const OP_DEF: u64 = 1;
const OP_REF0: u64 = 2;

/// Shortest alphanumeric token worth dictionarizing: a define costs two
/// bytes of framing, so one-byte tokens always travel raw.
const MIN_TOKEN: usize = 2;

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Compresses an opaque byte payload with the define-or-reference scheme
/// over its alphanumeric word tokens.  Deterministic, self-contained, and
/// exactly invertible by [`decompress_bytes`]; repetitive rendered text
/// (polynomials full of recurring VIDs) shrinks substantially, while
/// incompressible input grows by at most the raw-chunk framing.
pub fn compress_bytes(input: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    let mut dict: HashMap<&[u8], u64> = HashMap::new();
    let mut raw_start = 0usize;
    let mut i = 0usize;
    // Flushes input[raw_start..end] as one raw chunk.
    fn flush_raw(enc: &mut Encoder, input: &[u8], raw_start: usize, end: usize) {
        if end > raw_start {
            enc.write_varint(OP_RAW);
            enc.write_varint((end - raw_start) as u64);
            enc.out.extend_from_slice(&input[raw_start..end]);
        }
    }
    while i < input.len() {
        if is_word(input[i]) {
            let start = i;
            while i < input.len() && is_word(input[i]) {
                i += 1;
            }
            let token = &input[start..i];
            if token.len() < MIN_TOKEN {
                continue; // stays inside the pending raw run
            }
            flush_raw(&mut enc, input, raw_start, start);
            raw_start = i;
            if let Some(&id) = dict.get(token) {
                enc.write_varint(OP_REF0 + id);
            } else {
                let id = dict.len() as u64;
                dict.insert(token, id);
                enc.write_varint(OP_DEF);
                enc.write_varint(token.len() as u64);
                enc.out.extend_from_slice(token);
            }
        } else {
            i += 1;
        }
    }
    flush_raw(&mut enc, input, raw_start, input.len());
    enc.finish()
}

/// Decompresses a payload produced by [`compress_bytes`].  Never panics:
/// torn or hostile input yields a [`DecodeError`].
pub fn decompress_bytes(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut dec = Decoder::new(input);
    let mut out = Vec::with_capacity(input.len());
    let mut dict: Vec<(usize, usize)> = Vec::new(); // (offset, len) into `out`
    while dec.remaining() > 0 {
        match dec.read_varint()? {
            OP_RAW => {
                let len = dec.read_len()?;
                out.extend_from_slice(dec.read_bytes(len)?);
            }
            OP_DEF => {
                let len = dec.read_len()?;
                let bytes = dec.read_bytes(len)?;
                dict.push((out.len(), len));
                out.extend_from_slice(bytes);
            }
            op => {
                let id = (op - OP_REF0) as usize;
                let &(offset, len) = dict.get(id).ok_or(DecodeError {
                    at: input.len() - dec.remaining(),
                    reason: "dictionary reference out of range",
                })?;
                // The referenced token already lives in `out`.
                let token: Vec<u8> = out[offset..offset + len].to_vec();
                out.extend_from_slice(&token);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    fn roundtrip_tuple(t: &Tuple) {
        let bytes = encode_message(std::slice::from_ref(t));
        let back = decode_message(&bytes).expect("roundtrip decodes");
        assert_eq!(back, vec![t.clone()]);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for x in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.write_varint(x);
            assert_eq!(enc.bytes().len(), varint_len(x));
            let mut dec = Decoder::new(enc.bytes());
            assert_eq!(dec.read_varint().unwrap(), x);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn zigzag_roundtrips_signed_extremes() {
        for i in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn tuples_roundtrip_across_variants() {
        roundtrip_tuple(&Tuple::new("link", 1, vec![Value::Node(2), Value::Int(-7)]));
        roundtrip_tuple(&Tuple::new(
            "mixed",
            9,
            vec![
                Value::from("héllo ✓ unicode"),
                Value::Bool(true),
                Value::Digest([0xAB; 20]),
                Value::Payload(1024),
                Value::list(vec![
                    Value::Int(i64::MIN),
                    Value::list(vec![Value::from("nested")]),
                ]),
            ],
        ));
    }

    #[test]
    fn dictionary_makes_repeats_cheap() {
        let vid = [0x5A; 20];
        let one = Tuple::new("prov", 3, vec![Value::Digest(vid)]);
        let mut enc_once = Encoder::new();
        enc_once.encode_tuple(&one);
        let first = enc_once.bytes().len();
        enc_once.encode_tuple(&one);
        let second = enc_once.bytes().len() - first;
        // The repeat references both the relation and the digest by id.
        assert!(second < first / 2, "repeat cost {second} vs first {first}");
    }

    #[test]
    fn compressed_message_beats_flat_model_on_repetitive_content() {
        let vid = [0x11; 20];
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| {
                Tuple::new(
                    "ruleExec",
                    i,
                    vec![
                        Value::Digest(vid),
                        Value::from("sp2"),
                        Value::list(vec![Value::Digest(vid), Value::Digest([i as u8; 20])]),
                    ],
                )
            })
            .collect();
        let flat = wire::message_size(&tuples, 0);
        let compressed = compressed_message_size(&tuples, 0);
        assert!(
            compressed < flat * 3 / 4,
            "compressed {compressed} vs flat {flat}"
        );
    }

    #[test]
    fn payloads_are_charged_but_not_materialized() {
        let t = Tuple::new("packet", 0, vec![Value::Payload(1024)]);
        let mut enc = Encoder::new();
        enc.encode_tuple(&t);
        assert!(enc.bytes().len() < 32);
        assert!(enc.charged_len() >= 1024);
        roundtrip_tuple(&t);
    }

    #[test]
    fn torn_input_never_panics() {
        let tuples = vec![
            Tuple::new(
                "mixed",
                7,
                vec![
                    Value::from("répeat"),
                    Value::from("répeat"),
                    Value::Digest([3; 20]),
                    Value::list(vec![Value::Int(-1), Value::Bool(false)]),
                ],
            ),
            Tuple::new("mixed", 8, vec![Value::Digest([3; 20])]),
        ];
        let bytes = encode_message(&tuples);
        for cut in 0..bytes.len() {
            // Every strict prefix must produce a typed error, not a panic.
            assert!(decode_message(&bytes[..cut]).is_err());
        }
        assert!(decode_message(&bytes).is_ok());
    }

    #[test]
    fn hostile_lengths_and_references_are_rejected() {
        // Declared string length far beyond the physical input.
        let mut enc = Encoder::new();
        enc.write_varint(1); // one tuple
        enc.out.push(DICT_DEFINE);
        enc.write_varint(1 << 30);
        assert!(decode_message(enc.bytes()).is_err());
        // Reference to an id never defined.
        let mut enc = Encoder::new();
        enc.write_varint(1);
        enc.out.push(DICT_REF);
        enc.write_varint(99);
        assert!(decode_message(enc.bytes()).is_err());
    }

    #[test]
    fn byte_codec_roundtrips_and_compresses_repetitive_text() {
        let rendered = "(#ab12cd34 * #ef56ab78 + #ab12cd34 * #ef56ab78 + #ab12cd34)".repeat(16);
        let compressed = compress_bytes(rendered.as_bytes());
        assert!(
            compressed.len() < rendered.len() * 2 / 3,
            "{} vs {}",
            compressed.len(),
            rendered.len()
        );
        assert_eq!(decompress_bytes(&compressed).unwrap(), rendered.as_bytes());
    }

    #[test]
    fn byte_codec_roundtrips_arbitrary_bytes() {
        let cases: [&[u8]; 5] = [
            b"",
            b"x",
            b"no repeats here at all, every word distinct",
            &[0u8, 255, 128, 7, 7, 7],
            "héllo wörld héllo wörld".as_bytes(),
        ];
        for input in cases {
            let compressed = compress_bytes(input);
            assert_eq!(decompress_bytes(&compressed).unwrap(), input);
        }
    }

    #[test]
    fn byte_codec_decode_never_panics_on_torn_input() {
        let compressed = compress_bytes(b"token token token, more tokens and #digests");
        for cut in 0..compressed.len() {
            let _ = decompress_bytes(&compressed[..cut]); // Err or short Ok, never a panic
        }
    }
}
