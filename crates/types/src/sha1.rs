//! A from-scratch SHA-1 implementation.
//!
//! ExSPAN identifies every vertex of the distributed provenance graph with a
//! 20-byte SHA-1 digest of its contents (paper §4.1): tuple vertices hash the
//! relation name, location and attribute values; rule-execution vertices hash
//! the rule label, location and the VIDs of their input tuples.  Only
//! collision resistance for identification purposes is required, so a compact
//! local implementation avoids an external cryptography dependency.

/// A 20-byte SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// The all-zero digest, used as a sentinel (e.g. the `null` RID that marks
    /// base tuples in the `prov` table).
    pub const ZERO: Digest = Digest([0u8; 20]);

    /// Returns the digest as a hexadecimal string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Returns a short (8 hex character) prefix, convenient for display.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Number of bytes a digest occupies on the wire.
    pub const WIRE_SIZE: usize = 20;
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}..)", self.short())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Streaming SHA-1 hasher.
///
/// ```
/// use exspan_types::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher initialized with the standard SHA-1 IV.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-full buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        // Process whole blocks directly from the input.
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.process_block(&block);
            input = &input[64..];
        }
        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append the 0x80 terminator then zero-pad to 56 mod 64.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // The length update above must not count toward the message length;
        // total_len is no longer read, so this is fine.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot convenience wrapper: hashes `data` and returns the digest.
pub fn sha1_digest(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Standard FIPS-180 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha1_digest(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha1_digest(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1_digest(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha1_digest(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 130] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn digest_display_and_short() {
        let d = sha1_digest(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert_eq!(d.short().len(), 8);
        assert!(format!("{d:?}").contains(&d.short()));
    }

    #[test]
    fn zero_digest_is_zero() {
        assert_eq!(Digest::ZERO.0, [0u8; 20]);
        assert_ne!(sha1_digest(b""), Digest::ZERO);
    }
}
