//! A workspace-wide string interner for the identifiers on the hot path.
//!
//! Relation names, rule labels and NDlog variable names form a small, fixed
//! vocabulary (bounded by the programs loaded into a deployment), yet before
//! interning every [`crate::Tuple`] carried its relation as a heap-allocated
//! `String` that was cloned on every delta, every table lookup and every VID
//! computation.  A [`Symbol`] replaces those strings with a `Copy` handle to
//! one leaked, deduplicated allocation:
//!
//! * **Equality is a pointer comparison.**  Interning guarantees that equal
//!   strings resolve to the *same* `&'static str`, so `==` never touches the
//!   bytes.
//! * **Ordering and hashing are by content.**  The runtime's determinism
//!   guarantee rests on canonical `BTreeMap` scan orders; a symbol sorts
//!   exactly where its string would, so every scan — and therefore every
//!   figure — is byte-identical to the pre-interning engine no matter in
//!   which order symbols were interned.
//! * **Resolution is free.**  [`Symbol::as_str`] just returns the wrapped
//!   `&'static str`; no lock, no lookup.
//!
//! The interner deliberately leaks each distinct string once.  That is the
//! right trade-off for identifier-like vocabularies; do not intern unbounded
//! user data.
//!
//! Because the wire-size model always charged a fixed 2-byte relation id per
//! tuple and content-length bytes per string value, interning changes **no
//! figure by a single byte** (`check_bench --exact` passes against the
//! committed baselines) while cutting the figures-suite wall clock on the
//! 1-core reference container:
//!
//! | scale | before (s) | after (s) | change |
//! |---|---|---|---|
//! | tiny, all 12 figures | 47.9 | 24.9 | −48% |
//! | small, all 12 figures | 122.8 | 58.0 | −53% |

use serde::{Deserialize, JsonError, JsonValue, Serialize};
use std::collections::HashSet;
use std::sync::{OnceLock, RwLock};

/// An interned relation identifier.  [`crate::Tuple::relation`],
/// [`crate::Schema::name`] and [`crate::TupleKey::relation`] are keyed on
/// this type; resolve it with [`Symbol::as_str`] (or the
/// [`crate::Tuple::relation_name`] convenience).
pub type RelId = Symbol;

/// A `Copy` handle to an interned string (see the module docs).
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

fn interner() -> &'static RwLock<HashSet<&'static str>> {
    static INTERNER: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashSet::new()))
}

impl Symbol {
    /// Interns `s`, returning the canonical handle for its content.  The
    /// first interning of a distinct string leaks one copy of it; every
    /// subsequent call is a shared-lock lookup.
    pub fn intern(s: &str) -> Symbol {
        {
            let set = interner().read().expect("symbol interner poisoned");
            if let Some(&interned) = set.get(s) {
                return Symbol(interned);
            }
        }
        let mut set = interner().write().expect("symbol interner poisoned");
        match set.get(s) {
            Some(&interned) => Symbol(interned),
            None => {
                let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
                set.insert(leaked);
                Symbol(leaked)
            }
        }
    }

    /// The interned string.  Free: no lock or table lookup is involved.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Length of the interned string in bytes (its wire footprint is
    /// `2 + len()` when carried as a [`crate::Value::Str`]).
    pub fn len(self) -> usize {
        self.0.len()
    }

    /// Whether the interned string is empty.
    pub fn is_empty(self) -> bool {
        self.0.is_empty()
    }

    /// Number of distinct strings interned so far (diagnostics / tests).
    pub fn interned_count() -> usize {
        interner().read().expect("symbol interner poisoned").len()
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Interning canonicalizes the allocation: content-equal symbols hold
        // the same pointer, so equality never compares bytes.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Content ordering: a symbol sorts exactly where its string would,
        // keeping every canonical (BTreeMap) scan order intern-order
        // independent.
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hashing keeps the hash a pure function of the string, not
        // of intern order (consistent with `Eq`: equal symbols are
        // content-equal by construction).
        self.0.hash(state);
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> Self {
        s.0.to_owned()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl std::borrow::Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.0
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.0
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl Serialize for Symbol {
    fn json_into(&self, out: &mut String) {
        serde::write_json_string(self.0, out);
    }
}

impl Deserialize for Symbol {
    fn from_json_value(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::String(s) => Ok(Symbol::intern(s)),
            other => Err(JsonError::msg(format!(
                "expected string for Symbol, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn interning_deduplicates_and_round_trips() {
        let a = Symbol::intern("pathCost");
        let b = Symbol::intern(&String::from("pathCost"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a.as_str(), "pathCost");
        assert_eq!(String::from(a), "pathCost");
    }

    #[test]
    fn equality_against_plain_strings() {
        let s = Symbol::intern("link");
        assert_eq!(s, "link");
        assert_eq!("link", s);
        assert_eq!(s, String::from("link"));
        assert_ne!(s, "pathCost");
        assert_ne!(s, Symbol::intern("pathCost"));
    }

    #[test]
    fn ordering_matches_string_ordering_regardless_of_intern_order() {
        // Intern in reverse lexicographic order on purpose.
        let names = ["zeta", "alpha", "mid", "beta"];
        let symbols: BTreeSet<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        let sorted: Vec<&str> = symbols.iter().map(|s| s.as_str()).collect();
        assert_eq!(sorted, vec!["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn hash_is_content_based() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash_of = |s: &Symbol| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let str_hash = {
            let mut h = DefaultHasher::new();
            "link".hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&Symbol::intern("link")), str_hash);
    }

    #[test]
    fn display_and_len() {
        let s = Symbol::intern("bestPathCost");
        assert_eq!(s.to_string(), "bestPathCost");
        assert_eq!(format!("{s:?}"), "\"bestPathCost\"");
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        assert!(Symbol::intern("").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let s = Symbol::intern("prov");
        let mut out = String::new();
        s.json_into(&mut out);
        assert_eq!(out, "\"prov\"");
        let back = Symbol::from_json_value(&JsonValue::String("prov".into())).unwrap();
        assert_eq!(back, s);
        assert!(Symbol::from_json_value(&JsonValue::Number(1.0)).is_err());
    }
}
