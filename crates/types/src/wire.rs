//! Wire-size accounting.
//!
//! Every bandwidth number in the evaluation (Figures 6–11, 13, 15, 16) is the
//! count of bytes handed to the network layer.  This module centralizes the
//! byte model so that the runtime, the provenance layer and the query engine
//! all account identically.

use crate::tuple::Tuple;
use crate::value::Value;

/// Fixed per-message header: source, destination, message type and length.
pub const MESSAGE_HEADER_BYTES: usize = 12;

/// UDP/IP overhead added to every message sent between distinct nodes
/// (the paper's deployment communicates via UDP packets).
pub const UDP_IP_HEADER_BYTES: usize = 28;

/// The reference-based provenance annotation shipped with every derived
/// tuple: the 20-byte `RID` plus the 4-byte `RLoc` (paper §4.1.2 quotes
/// "only the 20-byte RLoc and RID attributes").
pub const REFERENCE_ANNOTATION_BYTES: usize = 20 + 4;

/// Returns the number of bytes of a message that carries `tuples` plus an
/// opaque provenance annotation of `annotation_bytes` bytes.
pub fn message_size(tuples: &[Tuple], annotation_bytes: usize) -> usize {
    MESSAGE_HEADER_BYTES
        + UDP_IP_HEADER_BYTES
        + tuples.iter().map(Tuple::wire_size).sum::<usize>()
        + annotation_bytes
}

/// Returns the serialized size of a list of values (used for provenance
/// annotations such as polynomials or VID lists).
pub fn values_size(values: &[Value]) -> usize {
    values.iter().map(Value::wire_size).sum()
}

/// A running bandwidth accumulator that buckets bytes into fixed-width time
/// windows, producing the "average bandwidth over time" series used by
/// Figures 8–11, 13, 15 and 16.
#[derive(Debug, Clone)]
pub struct BandwidthSeries {
    bucket_width: f64,
    buckets: Vec<u64>,
}

impl BandwidthSeries {
    /// Creates a series with buckets of `bucket_width` (simulated seconds).
    pub fn new(bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        BandwidthSeries {
            bucket_width,
            buckets: Vec::new(),
        }
    }

    /// Records `bytes` transmitted at simulated time `time`.
    pub fn record(&mut self, time: f64, bytes: usize) {
        let idx = (time / self.bucket_width).floor() as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes as u64;
    }

    /// Returns `(bucket_start_time, bytes_per_second)` samples.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * self.bucket_width, b as f64 / self.bucket_width))
            .collect()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another series into this one, bucket by bucket.  Buckets hold
    /// integral byte counts, so the merge is exact regardless of merge order
    /// — the property the sharded runtime relies on for bit-identical
    /// bandwidth figures.
    pub fn merge_from(&mut self, other: &BandwidthSeries) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Width of each bucket in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn message_size_includes_headers_and_annotation() {
        let t = Tuple::new("link", 1, vec![Value::Node(2), Value::Int(3)]);
        let sz = message_size(std::slice::from_ref(&t), 24);
        assert_eq!(
            sz,
            MESSAGE_HEADER_BYTES + UDP_IP_HEADER_BYTES + t.wire_size() + 24
        );
    }

    #[test]
    fn values_size_sums_components() {
        assert_eq!(
            values_size(&[Value::Int(1), Value::Digest([0; 20])]),
            4 + 20
        );
    }

    #[test]
    fn bandwidth_series_buckets_by_time() {
        let mut s = BandwidthSeries::new(0.5);
        s.record(0.1, 100);
        s.record(0.4, 100);
        s.record(0.6, 50);
        s.record(2.2, 10);
        let samples = s.samples();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (0.0, 400.0)); // 200 bytes / 0.5 s
        assert_eq!(samples[1], (0.5, 100.0));
        assert_eq!(samples[2].1, 0.0);
        assert_eq!(samples[4].1, 20.0);
        assert_eq!(s.total_bytes(), 260);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_rejected() {
        BandwidthSeries::new(0.0);
    }

    #[test]
    fn series_merge_is_bucketwise_and_exact() {
        let mut a = BandwidthSeries::new(0.5);
        a.record(0.1, 100);
        let mut b = BandwidthSeries::new(0.5);
        b.record(0.2, 50);
        b.record(1.7, 25);
        a.merge_from(&b);
        assert_eq!(a.total_bytes(), 175);
        let samples = a.samples();
        assert_eq!(samples[0].1, 300.0); // 150 B / 0.5 s
        assert_eq!(samples[3].1, 50.0); // 25 B / 0.5 s
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn series_merge_rejects_mismatched_widths() {
        let mut a = BandwidthSeries::new(0.5);
        a.merge_from(&BandwidthSeries::new(1.0));
    }
}
