//! Property tests for the dictionary wire codec (`exspan_types::compress`):
//! arbitrary tuples — unicode relation names, nested lists, digests — must
//! round-trip bit-exactly through the message codec, VIDs must survive the
//! trip, the byte-payload codec must be lossless, and *no* input, however
//! torn, may ever panic a decoder.

use exspan_types::compress::{
    compress_bytes, compressed_message_size, decode_message, decompress_bytes, encode_message,
};
use exspan_types::{Symbol, Tuple, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary unicode strings, surrogate code points skipped by
/// `char::from_u32` (strings of every plane, including the empty string).
fn arb_string() -> impl Strategy<Value = String> {
    vec((0u32..0x11_0000).boxed(), 0..12)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

fn arb_digest() -> impl Strategy<Value = [u8; 20]> {
    vec(any::<u8>().boxed(), 20..21).prop_map(|bytes| {
        let mut d = [0u8; 20];
        d.copy_from_slice(&bytes);
        d
    })
}

/// Arbitrary values over the full `Value` enum, lists nested up to depth 3.
fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(Value::Node),
        any::<i64>().prop_map(Value::Int),
        arb_string().prop_map(|s| Value::Str(Symbol::intern(&s))),
        any::<bool>().prop_map(Value::Bool),
        arb_digest().prop_map(Value::Digest),
        any::<u32>().prop_map(Value::Payload),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| vec(inner, 0..4).prop_map(Value::list))
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (arb_string(), any::<u32>(), vec(arb_value(), 0..5))
        .prop_map(|(name, location, values)| Tuple::new(name.as_str(), location, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn messages_round_trip(tuples in vec(arb_tuple().boxed(), 0..6)) {
        let bytes = encode_message(&tuples);
        let decoded = decode_message(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(&decoded, &tuples);
        // VIDs are functions of tuple content, so equality should already
        // imply this — asserting it separately pins the provenance identity
        // the cache and the BDD policy key on.
        for (d, t) in decoded.iter().zip(&tuples) {
            prop_assert_eq!(d.vid(), t.vid());
        }
    }

    #[test]
    fn byte_payloads_round_trip(payload in vec(any::<u8>().boxed(), 0..512)) {
        let packed = compress_bytes(&payload);
        prop_assert_eq!(decompress_bytes(&packed).expect("lossless"), payload);
    }

    #[test]
    fn compressed_size_accounts_annotation(
        tuples in vec(arb_tuple().boxed(), 0..4),
        annotation in 0usize..4096,
    ) {
        // The charged model is annotation-additive: the annotation rides
        // uncompressed on top of the dictionary-coded tuple bytes.
        let base = compressed_message_size(&tuples, 0);
        prop_assert_eq!(compressed_message_size(&tuples, annotation), base + annotation);
    }

    #[test]
    fn torn_message_never_panics(
        tuples in vec(arb_tuple().boxed(), 0..4),
        cut in any::<usize>(),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        // Truncate a valid encoding anywhere, then flip one bit of the
        // remainder: decoding may fail, but must fail with a DecodeError.
        let mut bytes = encode_message(&tuples);
        bytes.truncate(cut % (bytes.len() + 1));
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= 1 << bit;
        }
        let _ = decode_message(&bytes);
    }

    #[test]
    fn torn_payload_never_panics(
        payload in vec(any::<u8>().boxed(), 0..256),
        cut in any::<usize>(),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut packed = compress_bytes(&payload);
        packed.truncate(cut % (packed.len() + 1));
        if !packed.is_empty() {
            let idx = flip % packed.len();
            packed[idx] ^= 1 << bit;
        }
        let _ = decompress_bytes(&packed);
    }

    #[test]
    fn garbage_never_panics(junk in vec(any::<u8>().boxed(), 0..128)) {
        let _ = decode_message(&junk);
        let _ = decompress_bytes(&junk);
    }
}
