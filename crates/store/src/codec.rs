//! Binary codec for [`Value`]s and [`Tuple`]s.
//!
//! The *encoder* is the pre-existing canonical hash encoding
//! ([`Value::encode_for_hash`]): a one-byte type tag followed by a
//! fixed-width or length-prefixed big-endian body.  That encoding was
//! designed to be injective (distinct values never collide) which makes it
//! decodable, so the WAL and snapshot formats reuse it byte-for-byte — the
//! bytes that identify a tuple in a provenance VID are the bytes that
//! persist it.  This module adds only the decoder, re-interning `Str`
//! symbols on the way in.
//!
//! A tuple is encoded as its relation name (string encoding), its location
//! (`u32` big-endian, no tag — the position is fixed) and its non-location
//! values (count-prefixed).

use exspan_types::tuple::Tuple;
use exspan_types::value::{encode_str_for_hash, Value};

/// A decoding failure.  During WAL replay any of these marks the torn tail
/// of a crashed write; in a snapshot they mark corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended mid-record.
    Truncated,
    /// An unknown type/record tag.
    BadTag(u8),
    /// A string body was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            CodecError::BadUtf8 => write!(f, "string body is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an encoded buffer.  All multi-byte integers
/// are big-endian, matching the hash encoding.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a length-prefixed string body (the bytes after the `0x03` tag).
    fn str_body(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.bytes(len)?).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a full string encoding (tag + length + bytes).
    pub fn string(&mut self) -> Result<&'a str, CodecError> {
        match self.u8()? {
            0x03 => self.str_body(),
            tag => Err(CodecError::BadTag(tag)),
        }
    }
}

/// Appends the canonical encoding of `v` (delegates to the hash encoding).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    v.encode_for_hash(out);
}

/// Decodes one [`Value`], re-interning string symbols.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    match r.u8()? {
        0x01 => Ok(Value::Node(r.u32()?)),
        0x02 => Ok(Value::Int(r.i64()?)),
        0x03 => Ok(Value::from(r.str_body()?)),
        0x04 => Ok(Value::Bool(r.u8()? != 0)),
        0x05 => {
            let count = r.u32()? as usize;
            // Guard against a corrupt count reserving absurd capacity: each
            // element costs at least one tag byte, so `remaining` bounds it.
            if count > r.remaining() {
                return Err(CodecError::Truncated);
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(r)?);
            }
            Ok(Value::list(items))
        }
        0x06 => {
            let mut digest = [0u8; 20];
            digest.copy_from_slice(r.bytes(20)?);
            Ok(Value::Digest(digest))
        }
        0x07 => Ok(Value::Payload(r.u32()?)),
        tag => Err(CodecError::BadTag(tag)),
    }
}

/// Appends the canonical encoding of a tuple: relation name, location,
/// value count, values.
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    encode_str_for_hash(t.relation.as_str(), out);
    out.extend_from_slice(&t.location.to_be_bytes());
    out.extend_from_slice(&(t.values.len() as u32).to_be_bytes());
    for v in &t.values {
        encode_value(v, out);
    }
}

/// Decodes one [`Tuple`], re-interning its relation.
pub fn decode_tuple(r: &mut Reader<'_>) -> Result<Tuple, CodecError> {
    let relation = r.string()?.to_string();
    let location = r.u32()?;
    let count = r.u32()? as usize;
    if count > r.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(r)?);
    }
    Ok(Tuple::new(relation.as_str(), location, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip_value(v: &Value) {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_value(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert!(r.is_empty(), "trailing bytes after {v:?}");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(&Value::Node(7));
        roundtrip_value(&Value::Int(-42));
        roundtrip_value(&Value::Int(i64::MIN));
        roundtrip_value(&Value::from("bestPathCost"));
        roundtrip_value(&Value::from(""));
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Digest([9u8; 20]));
        roundtrip_value(&Value::Payload(1500));
        roundtrip_value(&Value::list(vec![
            Value::Int(1),
            Value::list(vec![Value::Node(2), Value::Bool(false)]),
            Value::from("nested"),
        ]));
        roundtrip_value(&Value::list(Vec::new()));
    }

    #[test]
    fn tuple_roundtrips() {
        let t = Tuple::new(
            "link",
            3,
            vec![Value::Node(4), Value::Int(10), Value::from("x")],
        );
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_tuple(&mut r).expect("decode");
        assert_eq!(back, t);
        assert!(r.is_empty());
        // The decoded tuple hashes to the same VID: persistence preserves
        // provenance identity.
        assert_eq!(back.vid(), t.vid());
        let arc = Arc::new(back);
        assert_eq!(arc.relation, "link");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let t = Tuple::new("prov", 1, vec![Value::Digest([1; 20]), Value::Node(2)]);
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_tuple(&mut r).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_is_reported() {
        let mut r = Reader::new(&[0x99]);
        assert_eq!(decode_value(&mut r), Err(CodecError::BadTag(0x99)));
    }

    #[test]
    fn corrupt_list_count_does_not_overallocate() {
        // Tag 0x05 + count u32::MAX, then nothing.
        let mut buf = vec![0x05];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r), Err(CodecError::Truncated));
    }
}
