//! The storage seam: [`StorageBackend`] with an in-memory no-op
//! implementation (the default — zero overhead, nothing touches disk) and
//! the log-structured [`DiskBackend`].

use crate::snapshot::{self, SnapshotData};
use crate::wal::{self, Durability, WalBatch, WalOp, WalWriter};
use crate::StoreError;
use std::path::{Path, PathBuf};

/// Configuration of a persistent store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// When the WAL is fsynced (see [`Durability`]).
    pub durability: Durability,
    /// A snapshot is taken (and the log truncated) once at least this many
    /// bytes of WAL have accumulated since the last one.
    pub snapshot_wal_bytes: u64,
    /// In-memory row budget across all tables; when exceeded, the largest
    /// tables are spilled to disk until the budget holds.  `None` disables
    /// spill.
    pub spill_budget_rows: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            durability: Durability::Barrier,
            snapshot_wal_bytes: 256 * 1024,
            spill_budget_rows: None,
        }
    }
}

/// Counters surfaced through `Deployment::storage_stats()`.  The backend
/// fills the log/snapshot counters; the engine merges in the spill
/// counters, which live with the tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Committed barrier batches appended to the WAL.
    pub committed_batches: u64,
    /// Logical operations inside those batches.
    pub committed_ops: u64,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// Snapshots written (each truncates the log).
    pub snapshots_written: u64,
    /// Batches replayed during recovery.
    pub recovered_batches: u64,
    /// Tables evicted to spill files.
    pub tables_spilled: u64,
    /// Tables faulted back into memory on access.
    pub tables_faulted: u64,
    /// Reads served directly from spill files without faulting the table
    /// back in (inspection APIs only — evaluation always faults in).
    pub cold_reads: u64,
}

/// State reconstructed from disk by [`DiskBackend::open`]: the latest valid
/// snapshot (if any) plus every committed WAL batch past its watermark.
#[derive(Debug)]
pub struct RecoveredState {
    pub snapshot: Option<SnapshotData>,
    pub batches: Vec<WalBatch>,
}

impl RecoveredState {
    /// The commit watermark `(seq, time bits)` the engine resumes from.
    pub fn watermark(&self) -> (u64, u64) {
        let mut seq = 0;
        let mut time_bits = 0;
        if let Some(snap) = &self.snapshot {
            seq = snap.seq;
            time_bits = snap.time_bits;
        }
        if let Some(last) = self.batches.last() {
            seq = seq.max(last.seq);
            time_bits = last.time_bits;
        }
        (seq, time_bits)
    }
}

/// The persistence seam the engine writes through.  All methods are no-ops
/// on the in-memory default, so the non-persistent path costs one virtual
/// call per barrier window and nothing else.
pub trait StorageBackend: Send {
    /// Whether commits actually persist (false for [`MemoryBackend`]; the
    /// engine skips journaling entirely when this is false).
    fn is_persistent(&self) -> bool {
        false
    }

    /// Appends one barrier window's operations as a committed batch.
    fn commit_batch(
        &mut self,
        _ops: &[WalOp],
        _seq: u64,
        _time_bits: u64,
    ) -> Result<(), StoreError> {
        Ok(())
    }

    /// Whether enough WAL has accumulated that the engine should hand over
    /// a snapshot.
    fn snapshot_due(&self) -> bool {
        false
    }

    /// Writes a canonical snapshot and truncates the log to its watermark.
    fn write_snapshot(&mut self, _snap: &SnapshotData) -> Result<(), StoreError> {
        Ok(())
    }

    /// Directory for spill files, when this backend supports spill.
    fn spill_dir(&self) -> Option<&Path> {
        None
    }

    /// Log/snapshot counters (spill counters are merged in by the engine).
    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

/// The default backend: everything stays in memory, nothing is written.
#[derive(Debug, Default)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {}

/// Log-structured persistence in a data directory:
///
/// ```text
/// <dir>/wal.log       append-only delta log (committed batches)
/// <dir>/snapshot.bin  latest canonical snapshot
/// <dir>/spill/        evicted cold tables (transient; cleared on open)
/// ```
pub struct DiskBackend {
    dir: PathBuf,
    spill_dir: PathBuf,
    wal: WalWriter,
    config: StoreConfig,
    wal_bytes_since_snapshot: u64,
    stats: StorageStats,
}

impl DiskBackend {
    /// Opens (creating if needed) the store at `dir` and recovers whatever
    /// committed state it holds.
    ///
    /// Recovery loads the latest valid snapshot, then replays the WAL's
    /// committed batches *newer than the snapshot watermark* (a crash
    /// between snapshot rename and log truncation can leave already-
    /// snapshotted batches in the log; the `seq` filter makes replay
    /// idempotent), stopping cleanly at the first torn or invalid record.
    /// The log is physically truncated back to its valid committed prefix.
    ///
    /// Returns `None` for the recovered state when the directory holds no
    /// committed state at all (a fresh deployment).
    ///
    /// Stale spill files are deleted: they are an in-process eviction
    /// cache, and the snapshot + WAL are always the authoritative copy.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> Result<(Self, Option<RecoveredState>), StoreError> {
        std::fs::create_dir_all(dir)?;
        let spill_dir = dir.join("spill");
        if spill_dir.exists() {
            std::fs::remove_dir_all(&spill_dir)?;
        }
        std::fs::create_dir_all(&spill_dir)?;

        let snapshot_path = dir.join("snapshot.bin");
        let snapshot = if snapshot_path.exists() {
            Some(snapshot::load_snapshot(&snapshot_path)?)
        } else {
            None
        };
        let wal_path = dir.join("wal.log");
        let (mut batches, valid) = wal::read_wal(&wal_path)?;
        if let Some(snap) = &snapshot {
            let watermark = snap.seq;
            batches.retain(|b| b.seq > watermark);
        }
        let wal = WalWriter::open(&wal_path, valid, config.durability)?;

        let recovered = if snapshot.is_some() || !batches.is_empty() {
            Some(RecoveredState { snapshot, batches })
        } else {
            None
        };
        let mut stats = StorageStats {
            wal_bytes: valid,
            ..StorageStats::default()
        };
        if let Some(rec) = &recovered {
            stats.recovered_batches = rec.batches.len() as u64;
        }
        Ok((
            DiskBackend {
                dir: dir.to_path_buf(),
                spill_dir,
                wal,
                // Start the snapshot clock at the recovered log length so a
                // long surviving log still triggers a snapshot promptly.
                wal_bytes_since_snapshot: valid,
                config,
                stats,
            },
            recovered,
        ))
    }

    /// The data directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured spill row budget, if spill is enabled.
    pub fn spill_budget_rows(&self) -> Option<usize> {
        self.config.spill_budget_rows
    }
}

impl StorageBackend for DiskBackend {
    fn is_persistent(&self) -> bool {
        true
    }

    fn commit_batch(&mut self, ops: &[WalOp], seq: u64, time_bits: u64) -> Result<(), StoreError> {
        let before = self.wal.len;
        let after = self.wal.append_batch(ops, seq, time_bits)?;
        self.wal_bytes_since_snapshot += after - before;
        self.stats.committed_batches += 1;
        self.stats.committed_ops += ops.len() as u64;
        self.stats.wal_bytes = after;
        Ok(())
    }

    fn snapshot_due(&self) -> bool {
        self.wal_bytes_since_snapshot >= self.config.snapshot_wal_bytes
    }

    fn write_snapshot(&mut self, snap: &SnapshotData) -> Result<(), StoreError> {
        snapshot::write_snapshot(&self.dir.join("snapshot.bin"), snap)?;
        self.wal.truncate()?;
        self.wal_bytes_since_snapshot = 0;
        self.stats.snapshots_written += 1;
        self.stats.wal_bytes = 0;
        Ok(())
    }

    fn spill_dir(&self) -> Option<&Path> {
        Some(&self.spill_dir)
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::tuple::Tuple;
    use exspan_types::value::Value;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "exspan-store-backend-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn op(node: u32, cost: i64) -> WalOp {
        WalOp::Tuple {
            node,
            insert: true,
            tuple: Arc::new(Tuple::new(
                "pathCost",
                node,
                vec![Value::Node(node + 1), Value::Int(cost)],
            )),
        }
    }

    #[test]
    fn fresh_open_recovers_nothing() {
        let dir = tmp("fresh");
        let (backend, recovered) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        assert!(recovered.is_none());
        assert!(backend.is_persistent());
        assert_eq!(backend.stats(), StorageStats::default());
    }

    #[test]
    fn commits_recover_across_reopen() {
        let dir = tmp("reopen");
        {
            let (mut b, rec) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
            assert!(rec.is_none());
            b.commit_batch(&[op(1, 5), op(2, 6)], 1, 1.0f64.to_bits())
                .unwrap();
            b.commit_batch(&[op(3, 7)], 2, 2.0f64.to_bits()).unwrap();
        }
        let (_, rec) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        let rec = rec.expect("state recovered");
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.watermark(), (2, 2.0f64.to_bits()));
    }

    #[test]
    fn snapshot_truncates_log_and_filters_stale_batches() {
        let dir = tmp("snapshot");
        let (mut b, _) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        b.commit_batch(&[op(1, 5)], 1, 1.0f64.to_bits()).unwrap();
        let snap = SnapshotData {
            seq: 1,
            time_bits: 1.0f64.to_bits(),
            node_count: 4,
            links: vec![],
            tables: vec![],
            agg: vec![],
        };
        b.write_snapshot(&snap).unwrap();
        assert_eq!(b.stats().wal_bytes, 0);
        b.commit_batch(&[op(2, 6)], 2, 2.0f64.to_bits()).unwrap();
        drop(b);

        let (_, rec) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        let rec = rec.unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().seq, 1);
        // Only the post-snapshot batch replays.
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].seq, 2);
        assert_eq!(rec.watermark(), (2, 2.0f64.to_bits()));

        // Simulate a crash between snapshot rename and log truncation: put
        // batch 1 back in front of the log — recovery must filter it out.
        drop(rec);
        let (mut b, _) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        b.commit_batch(&[op(9, 1)], 1, 0.5f64.to_bits()).unwrap();
        drop(b);
        let (_, rec) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        let rec = rec.unwrap();
        assert!(rec.batches.iter().all(|bt| bt.seq > 1));
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_open() {
        let dir = tmp("torn");
        {
            let (mut b, _) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
            b.commit_batch(&[op(1, 5)], 1, 1.0f64.to_bits()).unwrap();
        }
        let wal = dir.join("wal.log");
        let committed = std::fs::metadata(&wal).unwrap().len();
        let mut data = std::fs::read(&wal).unwrap();
        data.extend_from_slice(&[0xAB; 23]);
        std::fs::write(&wal, &data).unwrap();
        let (b, rec) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.unwrap().batches.len(), 1);
        drop(b);
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), committed);
    }

    #[test]
    fn snapshot_due_follows_the_byte_threshold() {
        let dir = tmp("due");
        let config = StoreConfig {
            snapshot_wal_bytes: 1,
            ..StoreConfig::default()
        };
        let (mut b, _) = DiskBackend::open(&dir, config).unwrap();
        assert!(!b.snapshot_due());
        b.commit_batch(&[op(1, 5)], 1, 1.0f64.to_bits()).unwrap();
        assert!(b.snapshot_due());
    }

    #[test]
    fn stale_spill_files_are_cleared_on_open() {
        let dir = tmp("spill-clear");
        std::fs::create_dir_all(dir.join("spill")).unwrap();
        std::fs::write(dir.join("spill/n0_x.tbl"), b"stale").unwrap();
        let (b, _) = DiskBackend::open(&dir, StoreConfig::default()).unwrap();
        let spill = b.spill_dir().unwrap();
        assert!(std::fs::read_dir(spill).unwrap().next().is_none());
    }
}
